//! `apex` — command-line driver for the APEX design-space-exploration
//! toolchain.
//!
//! ```text
//! apex list                         applications in the benchmark suite
//! apex dot <app>                    application dataflow graph as Graphviz DOT
//! apex mine <app> [min_support]     frequent subgraphs with MIS statistics
//! apex dse <app> [--jobs N] [--resume]
//!                                   specialize a PE for one application
//! apex verilog <variant> [file]     PE RTL (variant: base | ip | ml | spec:<app>)
//! apex array <variant> [file]       full 32x16 CGRA RTL for a variant
//! apex report [--jobs N] [--resume] [ids...]
//!                                   regenerate the paper's tables/figures
//! apex save <app> [file]            dump an application in the text graph format
//! apex verify <app> | --suite       static invariant verifier over every stage artifact
//! apex dse-file <file>              run the DSE flow on a text-format graph
//! apex describe <variant>           PE datasheet (units, configs, costs)
//! apex serve [--addr A] [--resume]  multi-tenant DSE daemon (newline-JSON/TCP)
//! apex submit <file> [--addr A]     submit a graph to a daemon and wait
//! apex chaos [--schedules N] [--seed S]
//!                                   deterministic fault-injection campaign
//! ```
//!
//! Sweeps (`dse`, `report`) checkpoint every completed job to a
//! write-ahead journal; `--resume` (or `APEX_RESUME=1`) replays it and
//! runs only the remainder, byte-identical to an uninterrupted run.
//! Ctrl-C drains in-flight jobs and exits with code 3; a second Ctrl-C
//! hard-exits.

use apex::core::{JobReport, SweepJob, SweepJournal};
use apex::fault::{ApexError, Provenance};
use std::fmt::Write as _;

/// Exit code for a sweep stopped by SIGINT/SIGTERM after flushing its
/// journal and printing a partial report (codes 1 = pipeline error,
/// 2 = invalid usage; see `usage()`).
const EXIT_INTERRUPTED: i32 = 3;

fn usage() {
    eprintln!("usage: apex <list|dot|mine|dse|verilog|array|report|save|dse-file|describe|verify|serve|submit|chaos> [...]");
    eprintln!("  verify <app>   run the cross-stage invariant verifier on one application");
    eprintln!("  verify --suite ... on the full benchmark suite (exit 1 on any violation)");
    eprintln!("  serve          run the DSE daemon (see DESIGN.md §7 for the wire protocol):");
    eprintln!("                 --addr A (default 127.0.0.1:7341), --queue-limit N,");
    eprintln!("                 --idle-timeout-secs S, --resume (re-run journaled jobs)");
    eprintln!("  submit <file>  submit a text-format graph to a daemon and wait for the result:");
    eprintln!("                 --addr A, --tenant T, --deadline-ms N, --timeout-secs S");
    eprintln!("  chaos          run a deterministic fault-injection campaign over the");
    eprintln!("                 failpoint catalog (needs a fault-injection build):");
    eprintln!("                 --schedules N (default 24), --seed S (default 7),");
    eprintln!("                 --report FILE (JSONL), --scratch DIR, --list (print the");
    eprintln!("                 schedule plan without running); exit 1 on any violation");
    eprintln!("flags:");
    eprintln!("  --jobs N    worker threads for pooled stages (1 = serial; output is identical)");
    eprintln!("  --resume    dse/report/serve: replay the sweep journal and run only the remainder");
    eprintln!("              (also APEX_RESUME=1; config changes start clean automatically)");
    eprintln!("  --cache-max-bytes B   LRU byte cap on the variant cache (suffixes k/m/g;");
    eprintln!("              also APEX_CACHE_MAX_BYTES; corrupt entries are evicted first)");
    eprintln!("exit codes:");
    eprintln!("  0  success");
    eprintln!("  1  pipeline error (an `error: <stage>: ...` chain was printed)");
    eprintln!("  2  invalid usage or flags");
    eprintln!("  3  interrupted: partial output printed, journal flushed; rerun with --resume");
    eprintln!("see `apex` source docs for details");
}

/// How a sweep-capable command finished.
enum Status {
    Done,
    Interrupted,
}

/// Strips a `--jobs N` flag anywhere in the argument list and installs
/// the worker-count override every pooled stage (mining, rule synthesis,
/// the evaluation sweep) consults. `--jobs 1` forces the serial path;
/// results are bit-identical at any value.
fn take_jobs_flag(args: &mut Vec<String>) {
    let Some(pos) = args.iter().position(|a| a == "--jobs") else {
        return;
    };
    let n = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok());
    match n {
        Some(n) if n >= 1 => {
            apex::par::set_jobs(n);
            args.drain(pos..pos + 2);
        }
        _ => {
            eprintln!("--jobs expects a positive integer");
            std::process::exit(2);
        }
    }
}

/// Strips a `--cache-max-bytes B` flag and installs it as
/// `APEX_CACHE_MAX_BYTES` before anything touches the shared variant
/// cache (its configuration is read lazily on first use), so the LRU
/// byte cap applies to offline CLI runs exactly like daemon runs.
fn take_cache_cap_flag(args: &mut Vec<String>) {
    let Some(pos) = args.iter().position(|a| a == "--cache-max-bytes") else {
        return;
    };
    match args.get(pos + 1).and_then(|v| apex::core::parse_byte_size(v)) {
        Some(_) => {
            let value = args[pos + 1].clone();
            std::env::set_var("APEX_CACHE_MAX_BYTES", value);
            args.drain(pos..pos + 2);
        }
        None => {
            eprintln!("--cache-max-bytes expects a byte count (suffixes k/m/g)");
            std::process::exit(2);
        }
    }
}

/// Strips `--resume` from the argument list; `APEX_RESUME=1` is the
/// environment equivalent (for wrappers that cannot edit the command
/// line).
fn take_resume_flag(args: &mut Vec<String>) -> bool {
    let mut resume = false;
    while let Some(pos) = args.iter().position(|a| a == "--resume") {
        args.remove(pos);
        resume = true;
    }
    if !resume {
        if let Ok(v) = std::env::var("APEX_RESUME") {
            let v = v.trim();
            resume = v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("yes");
        }
    }
    resume
}

/// Arms fail points named in `APEX_FAILPOINTS` (comma-separated) so CI
/// can inject faults into a release binary; a `site@N` entry arms the
/// site on its Nth hit instead of the first. Compiled only with the
/// `fault-injection` feature.
fn arm_failpoints_from_env() {
    #[cfg(feature = "fault-injection")]
    if let Ok(sites) = std::env::var("APEX_FAILPOINTS") {
        for site in sites.split(',') {
            let site = site.trim();
            if site.is_empty() {
                continue;
            }
            match site.split_once('@') {
                Some((name, nth)) => match nth.trim().parse::<u64>() {
                    Ok(n) if n >= 1 => apex::fault::failpoints::arm_after(name.trim(), n),
                    _ => {
                        eprintln!(
                            "APEX_FAILPOINTS: '{site}' — the part after '@' must be a \
                             positive hit count"
                        );
                        std::process::exit(2);
                    }
                },
                None => apex::fault::failpoints::arm(site),
            }
        }
    }
}

fn main() {
    apex::fault::interrupt::install();
    arm_failpoints_from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    take_jobs_flag(&mut args);
    take_cache_cap_flag(&mut args);
    let resume = take_resume_flag(&mut args);
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let result = match cmd {
        "list" => {
            list();
            Ok(Status::Done)
        }
        "dot" => {
            dot(&args[1..]);
            Ok(Status::Done)
        }
        "mine" => mine(&args[1..]).map(|()| Status::Done),
        "dse" => dse(&args[1..], resume),
        "verilog" => verilog(&args[1..], false).map(|()| Status::Done),
        "array" => verilog(&args[1..], true).map(|()| Status::Done),
        "report" => report(&args[1..], resume),
        "save" => {
            save(&args[1..]);
            Ok(Status::Done)
        }
        "dse-file" => dse_file(&args[1..]).map(|()| Status::Done),
        "verify" => verify(&args[1..]).map(|()| Status::Done),
        "describe" => describe(&args[1..]).map(|()| Status::Done),
        "serve" => serve(&args[1..], resume),
        "submit" => submit(&args[1..]).map(|()| Status::Done),
        "chaos" => chaos(&args[1..]).map(|()| Status::Done),
        "help" | "--help" | "-h" => {
            usage();
            Ok(Status::Done)
        }
        other => {
            eprintln!("unknown command '{other}'");
            usage();
            std::process::exit(2);
        }
    };
    match result {
        Err(e) => {
            eprintln!("{}", e.render_chain());
            std::process::exit(1);
        }
        Ok(Status::Interrupted) => std::process::exit(EXIT_INTERRUPTED),
        Ok(Status::Done) => {}
    }
}

/// Prints the sweep bookkeeping footer (cache effectiveness and
/// quarantined-entry count) on stderr, keeping stdout byte-diffable.
fn sweep_footer() {
    let cache = apex::core::VariantCache::shared();
    if cache.is_enabled() {
        eprintln!(
            "cache: {} hit(s), {} miss(es), {} quarantined",
            cache.hits(),
            cache.misses(),
            cache.quarantined()
        );
    }
}

fn app_or_exit(name: Option<&String>) -> apex::apps::Application {
    let Some(name) = name else {
        eprintln!("expected an application name; try `apex list`");
        std::process::exit(2);
    };
    match apex::apps::by_name(name) {
        Some(a) => a,
        None => {
            eprintln!("unknown application '{name}'; try `apex list`");
            std::process::exit(2);
        }
    }
}

fn list() {
    println!("{:<11} {:<7} {:>6} {:>8}  description", "name", "domain", "ops", "unroll");
    for a in apex::apps::analyzed_apps()
        .into_iter()
        .chain(apex::apps::unseen_apps())
    {
        println!(
            "{:<11} {:<7} {:>6} {:>8}  {}",
            a.info.name,
            a.info.domain.to_string(),
            a.graph.compute_op_count(),
            a.info.unroll,
            a.info.description
        );
    }
}

fn dot(args: &[String]) {
    let app = app_or_exit(args.first());
    print!("{}", app.graph.to_dot());
}

fn mine(args: &[String]) -> Result<(), ApexError> {
    let app = app_or_exit(args.first());
    let min_support = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4usize);
    let mined = apex::mining::mine(
        &app.graph,
        &apex::mining::MinerConfig {
            min_support,
            ..apex::mining::MinerConfig::default()
        },
    )?;
    println!(
        "{} frequent subgraphs in '{}' (min support {min_support}):",
        mined.subgraphs.len(),
        app.info.name
    );
    if mined.provenance.is_partial() {
        println!("note: mining stopped early ({})", mined.provenance.marker());
    }
    println!("{:>4} {:>5} {:>5} {:>6}  pattern", "#", "occ", "MIS", "uMIS");
    for (i, m) in mined.subgraphs.iter().take(25).enumerate() {
        println!(
            "{:>4} {:>5} {:>5} {:>6}  {}",
            i + 1,
            m.occurrences.len(),
            m.mis_size,
            m.utilizable_mis(&app.graph),
            m.pattern
        );
    }
    if mined.subgraphs.len() > 25 {
        println!("... ({} more)", mined.subgraphs.len() - 25);
    }
    Ok(())
}

fn dse(args: &[String], resume: bool) -> Result<Status, ApexError> {
    let app = app_or_exit(args.first());
    let tech = apex::tech::TechModel::default();
    // the sweep key is the same content hash the variant cache uses, so a
    // config change changes the journal file and forces a clean start
    let sweep_key = apex::core::variant_cache_key(
        "dse-sweep",
        &format!("pe_spec_{}", app.info.name),
        &[&app],
        &[&app],
        Some(&apex::mining::MinerConfig::default()),
        Some(&apex::core::SubgraphSelection::default()),
        Some(&apex::merge::MergeOptions::default()),
        Some(&tech),
        &std::collections::BTreeSet::new(),
    );
    let journal = SweepJournal::for_sweep(sweep_key);
    let jobs = [SweepJob {
        key: sweep_key,
        label: format!("dse {}", app.info.name),
    }];
    let flag = apex::fault::interrupt::flag();
    eprintln!("specializing a PE for '{}'...", app.info.name);
    let run = apex::core::run_checkpointed(&journal, &jobs, resume, Some(&flag), |_| {
        dse_job(&app, &tech)
    })?;
    for r in &run.results {
        if let apex::core::SweepJobResult::Done { report, .. } = r {
            print!("{}", report.payload);
        }
    }
    sweep_footer();
    if run.interrupted {
        println!(
            "# partial dse ({}): 0/1 job(s); resume with `apex dse {} --resume`",
            Provenance::Partial.marker(),
            app.info.name
        );
        return Ok(Status::Interrupted);
    }
    Ok(Status::Done)
}

/// Builds the `apex dse` report payload for one application (the single
/// journaled job of the `dse` sweep).
fn dse_job(app: &apex::apps::Application, tech: &apex::tech::TechModel) -> Result<JobReport, ApexError> {
    let base = apex::core::baseline_variant(&[app])?;
    let spec = apex::core::specialized_variant(
        &format!("pe_spec_{}", app.info.name),
        &[app],
        &[app],
        &apex::mining::MinerConfig::default(),
        &apex::core::SubgraphSelection::default(),
        &apex::merge::MergeOptions::default(),
        tech,
        &std::collections::BTreeSet::new(),
    )?;
    let opts = apex::core::DseOptions::default();
    let b_outcome = apex::core::dse_evaluate_app(&base, app, tech, &opts);
    let s_outcome = apex::core::dse_evaluate_app(&spec, app, tech, &opts);
    let mut out = String::new();
    for (label, o) in [("baseline", &b_outcome), ("specialized", &s_outcome)] {
        for d in &o.degradations {
            let _ = writeln!(out, "degraded [{label}]: {d}");
        }
    }
    let degradations = match (b_outcome.is_degraded(), s_outcome.is_degraded()) {
        (false, false) => "-".to_owned(),
        _ => format!(
            "{},{}",
            b_outcome.degradation_summary(),
            s_outcome.degradation_summary()
        ),
    };
    let (b_degs, s_degs) = (b_outcome.degradations.len(), s_outcome.degradations.len());
    let b = b_outcome.result?;
    let s = s_outcome.result?;
    let _ = writeln!(out, "{:<24} {:>12} {:>12}", "", "baseline", "specialized");
    let _ = writeln!(out, "{:<24} {:>12} {:>12}", "PEs", b.pnr.pe_tiles, s.pnr.pe_tiles);
    let _ = writeln!(out, "{:<24} {:>12.0} {:>12.0}", "PE area (um2)", b.pe_core_area, s.pe_core_area);
    let _ = writeln!(
        out,
        "{:<24} {:>12.1} {:>12.1}",
        "CGRA energy (pJ/cycle)",
        b.energy_per_cycle.total(),
        s.energy_per_cycle.total()
    );
    let _ = writeln!(
        out,
        "{:<24} {:>12.2} {:>12.2}",
        "CGRA area (mm2)",
        b.area.total() * 1e-6,
        s.area.total() * 1e-6
    );
    let _ = writeln!(out, "{:<24} {:>12} {:>12}", "degradations", b_degs, s_degs);
    let _ = writeln!(
        out,
        "\nsubgraphs merged: {} | rewrite rules: {} | savings: {:.0}% PE area, {:.0}% energy",
        spec.sources.len(),
        spec.rules.len(),
        100.0 * (1.0 - s.pe_core_area / b.pe_core_area),
        100.0 * (1.0 - s.energy_per_cycle.total() / b.energy_per_cycle.total())
    );
    Ok(JobReport {
        payload: out,
        provenance: Provenance::Completed,
        degradations,
    })
}

fn variant_or_exit(name: Option<&String>) -> Result<apex::core::PeVariant, ApexError> {
    let Some(name) = name else {
        eprintln!("expected a variant: base | ip | ml | spec:<app>");
        std::process::exit(2);
    };
    let tech = apex::tech::TechModel::default();
    let all = apex::apps::analyzed_apps();
    let refs: Vec<&apex::apps::Application> = all.iter().collect();
    match name.as_str() {
        "base" => apex::core::baseline_variant(&refs),
        "ip" => {
            let ip = apex::apps::ip_apps();
            let iprefs: Vec<&apex::apps::Application> = ip.iter().collect();
            apex::core::specialized_variant(
                "pe_ip",
                &iprefs,
                &iprefs,
                &apex::mining::MinerConfig::default(),
                &apex::core::SubgraphSelection::default(),
                &apex::merge::MergeOptions::default(),
                &tech,
                &std::collections::BTreeSet::new(),
            )
        }
        "ml" => {
            let ml = apex::apps::ml_apps();
            let mlrefs: Vec<&apex::apps::Application> = ml.iter().collect();
            apex::core::specialized_variant(
                "pe_ml",
                &mlrefs,
                &mlrefs,
                &apex::mining::MinerConfig::default(),
                &apex::core::SubgraphSelection::default(),
                &apex::merge::MergeOptions::default(),
                &tech,
                &std::collections::BTreeSet::new(),
            )
        }
        other => match other.strip_prefix("spec:") {
            Some(app_name) => {
                let app = apex::apps::by_name(app_name).unwrap_or_else(|| {
                    eprintln!("unknown application '{app_name}'");
                    std::process::exit(2);
                });
                apex::core::specialized_variant(
                    &format!("pe_spec_{app_name}"),
                    &[&app],
                    &[&app],
                    &apex::mining::MinerConfig::default(),
                    &apex::core::SubgraphSelection::default(),
                    &apex::merge::MergeOptions::default(),
                    &tech,
                    &std::collections::BTreeSet::new(),
                )
            }
            None => {
                eprintln!("unknown variant '{other}': base | ip | ml | spec:<app>");
                std::process::exit(2);
            }
        },
    }
}

fn verilog(args: &[String], full_array: bool) -> Result<(), ApexError> {
    let variant = variant_or_exit(args.first())?;
    let rtl = if full_array {
        let fabric = apex::cgra::Fabric::new(apex::cgra::FabricConfig::default());
        apex::cgra::emit_cgra_verilog(&fabric, &variant.spec)
    } else {
        apex::pe::emit_verilog(&variant.spec)
    };
    match args.get(1) {
        Some(path) => {
            std::fs::write(path, &rtl).map_err(|e| {
                ApexError::new(apex::fault::Stage::Report, format!("cannot write {path}: {e}"))
            })?;
            eprintln!("wrote {} lines to {path}", rtl.lines().count());
        }
        None => print!("{rtl}"),
    }
    Ok(())
}

fn save(args: &[String]) {
    let app = app_or_exit(args.first());
    let text = apex::ir::to_text(&app.graph);
    match args.get(1) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {} to {path}", app.info.name);
        }
        None => print!("{text}"),
    }
}

fn dse_file(args: &[String]) -> Result<(), ApexError> {
    let Some(path) = args.first() else {
        eprintln!("expected a graph file; write one with `apex save <app> <file>`");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let graph = apex::ir::from_text(&text).map_err(|e| {
        ApexError::new(apex::fault::Stage::Parse, format!("{path}: {e}"))
    })?;
    graph.try_validate().map_err(|e| {
        ApexError::new(apex::fault::Stage::Parse, format!("{path}: {e}"))
    })?;
    let app = apex::apps::Application::new(
        apex::apps::AppInfo {
            name: graph.name().to_owned(),
            domain: apex::apps::Domain::ImageProcessing,
            description: format!("custom graph from {path}"),
            mem_tiles: 8,
            io_tiles: 4,
            unroll: 1,
            output_pixels: 1 << 20,
        },
        graph,
    );
    let tech = apex::tech::TechModel::default();
    let spec = apex::core::most_specialized_variant(
        &app,
        &apex::mining::MinerConfig::default(),
        &apex::merge::MergeOptions::default(),
        &tech,
        4,
    )?;
    let base = apex::core::baseline_variant(&[&app])?;
    let (bn, ba, be) = apex::core::post_mapping_estimate(&base, &app, &tech)?;
    let (sn, sa, se) = apex::core::post_mapping_estimate(&spec, &app, &tech)?;
    println!("custom app '{}': {} compute ops", app.info.name, app.graph.compute_op_count());
    println!("baseline   : {bn} PEs, {ba:.0} um2, {be:.1} pJ/cycle");
    println!("specialized: {sn} PEs, {sa:.0} um2, {se:.1} pJ/cycle ({} subgraphs merged)", spec.sources.len());
    Ok(())
}

/// `apex verify <app>` / `apex verify --suite`: runs every static
/// verifier pass (`apex::verify`) over the artifacts of the full
/// pipeline for one application or the whole benchmark suite. Prints a
/// per-pass report; exits 1 if any pass reports a violation, 2 on usage
/// errors. Pipeline errors (a stage refusing to produce an artifact at
/// all) surface as the usual `error:` chain, also with exit 1.
fn verify(args: &[String]) -> Result<(), ApexError> {
    let apps: Vec<apex::apps::Application> = if args.iter().any(|a| a == "--suite") {
        apex::apps::analyzed_apps()
            .into_iter()
            .chain(apex::apps::unseen_apps())
            .collect()
    } else {
        vec![app_or_exit(args.first())]
    };
    let tech = apex::tech::TechModel::default();
    let mut total = 0usize;
    let mut failed_apps = 0usize;
    for app in &apps {
        let n = verify_app(app, &tech)?;
        if n > 0 {
            failed_apps += 1;
        }
        total += n;
    }
    println!(
        "verify: {} application(s), {} violation(s){}",
        apps.len(),
        total,
        if total == 0 { " — all passes clean" } else { "" }
    );
    if total > 0 {
        eprintln!("verify: {failed_apps} application(s) with violations");
        std::process::exit(1);
    }
    Ok(())
}

/// Runs all verifier passes for one application end-to-end and prints a
/// per-pass line (`ok` or the rendered violations). Returns the number
/// of violations found.
fn verify_app(
    app: &apex::apps::Application,
    tech: &apex::tech::TechModel,
) -> Result<usize, ApexError> {
    use apex::verify as v;
    println!("== {} ==", app.info.name);
    let mut total = 0usize;
    let mut report = |pass: &str, note: &str, vs: Vec<v::Violation>| {
        if vs.is_empty() {
            println!("{pass:<10} ok{}{note}", if note.is_empty() { "" } else { "  " });
        } else {
            println!("{pass:<10} {} violation(s)", vs.len());
            print!("{}", v::render(&vs));
            total += vs.len();
        }
    };

    // ir: the application dataflow graph itself
    report("ir", "", v::verify_graph(&app.graph));

    // mine: frequent subgraphs + MIS statistics
    let mined = apex::mining::mine(&app.graph, &apex::mining::MinerConfig::default())?;
    report(
        "mine",
        &format!("({} subgraphs)", mined.subgraphs.len()),
        v::verify_mined(&app.graph, &mined.subgraphs),
    );

    // merge / rewrite / pe: the specialized variant's own artifacts
    let variant = apex::core::specialized_variant(
        &format!("pe_spec_{}", app.info.name),
        &[app],
        &[app],
        &apex::mining::MinerConfig::default(),
        &apex::core::SubgraphSelection::default(),
        &apex::merge::MergeOptions::default(),
        tech,
        &std::collections::BTreeSet::new(),
    )?;
    report(
        "merge",
        &format!("({} configs)", variant.spec.datapath.configs.len()),
        v::verify_datapath_with(&variant.spec.datapath, &variant.sources, 16),
    );
    report(
        "rewrite",
        &format!("({} rules)", variant.rules.rules.len()),
        v::verify_ruleset(&variant.spec.datapath, &variant.rules.rules, 8),
    );
    let mut spec = variant.spec.clone();
    apex::pipeline::auto_pipeline(&mut spec, tech, &apex::pipeline::PePipelineOptions::default())?;
    report(
        "pe",
        &format!("({} stages)", spec.pipeline.as_ref().map_or(1, |p| p.stages)),
        v::verify_pe(&spec),
    );

    // map / place / route / bitstream: the backend artifacts
    let design = apex::map::map_application(&app.graph, &variant.spec.datapath, &variant.rules)?;
    report(
        "map",
        &format!("({} nodes)", design.netlist.nodes.len()),
        v::verify_netlist(&design.netlist, &variant.rules),
    );
    let fabric = apex::cgra::Fabric::new(apex::cgra::FabricConfig::default());
    let placement = apex::cgra::place(&design.netlist, &fabric, &apex::cgra::PlaceOptions::default())?;
    report(
        "place",
        "",
        v::verify_placement(&design.netlist, &fabric, &placement),
    );
    let routing = apex::cgra::route(
        &design.netlist,
        &variant.rules,
        &fabric,
        &placement,
        &apex::cgra::RouteOptions::default(),
    )?;
    report(
        "route",
        &format!("({} routes)", routing.routes.len()),
        v::verify_routing(&design.netlist, &variant.rules, &fabric, &placement, &routing),
    );
    let bs = apex::cgra::generate_bitstream(
        &design.netlist,
        &variant.rules,
        &variant.spec.datapath,
        &fabric,
        &placement,
        &routing,
    );
    report(
        "bitstream",
        &format!("({} bits)", bs.total_bits),
        v::verify_bitstream(
            &design.netlist,
            &variant.rules,
            &variant.spec.datapath,
            &fabric,
            &placement,
            &routing,
            &bs,
        ),
    );
    Ok(total)
}

fn describe(args: &[String]) -> Result<(), ApexError> {
    let variant = variant_or_exit(args.first())?;
    let tech = apex::tech::TechModel::default();
    print!("{}", apex::pe::datasheet(&variant.spec, &tech));
    Ok(())
}

/// Pops `--flag <value>` from `args`, parsed with `parse`; exits 2 on a
/// present-but-unparseable value.
fn take_value_flag<T>(
    args: &mut Vec<String>,
    flag: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    match args.get(pos + 1).and_then(|v| parse(v)) {
        Some(v) => {
            args.drain(pos..pos + 2);
            Some(v)
        }
        None => {
            eprintln!("{flag} expects a value");
            std::process::exit(2);
        }
    }
}

/// `apex serve`: run the hardened DSE daemon until SIGINT/SIGTERM or a
/// client `drain` op. Exit code 0 when every admitted job concluded,
/// 3 when unfinished (journaled) jobs remain — restart with `--resume`
/// to run exactly those.
fn serve(args: &[String], resume: bool) -> Result<Status, ApexError> {
    let mut args = args.to_vec();
    let mut config = apex::serve::ServeConfig {
        resume,
        ..apex::serve::ServeConfig::default()
    };
    if let Some(addr) = take_value_flag(&mut args, "--addr", |v| Some(v.to_owned())) {
        config.addr = addr;
    }
    if let Some(n) = take_value_flag(&mut args, "--workers", |v| v.parse::<usize>().ok()) {
        config.workers = n;
    }
    if let Some(n) = take_value_flag(&mut args, "--queue-limit", |v| {
        v.parse::<usize>().ok().filter(|n| *n >= 1)
    }) {
        config.queue_limit = n;
    }
    if let Some(s) = take_value_flag(&mut args, "--idle-timeout-secs", |v| {
        v.parse::<u64>().ok().filter(|s| *s >= 1)
    }) {
        config.idle_timeout = std::time::Duration::from_secs(s);
    }
    if let Some(s) = take_value_flag(&mut args, "--default-deadline-secs", |v| {
        v.parse::<u64>().ok().filter(|s| *s >= 1)
    }) {
        config.default_deadline = std::time::Duration::from_secs(s);
    }
    if let Some(unknown) = args.first() {
        eprintln!("serve: unknown argument '{unknown}'");
        std::process::exit(2);
    }
    let journal = apex::serve::default_journal();
    let server = apex::serve::Server::bind(config, journal, apex::serve::DseRunner)?;
    let summary = server.run();
    sweep_footer();
    if summary.unfinished > 0 {
        return Ok(Status::Interrupted);
    }
    Ok(Status::Done)
}

/// `apex submit <file>`: client side — submit one text-format graph to a
/// running daemon, ride out backpressure, poll to conclusion, print the
/// result payload.
fn submit(args: &[String]) -> Result<(), ApexError> {
    let mut args = args.to_vec();
    let addr = take_value_flag(&mut args, "--addr", |v| Some(v.to_owned()))
        .unwrap_or_else(|| "127.0.0.1:7341".to_owned());
    let tenant = take_value_flag(&mut args, "--tenant", |v| Some(v.to_owned())).unwrap_or_default();
    let deadline_ms = take_value_flag(&mut args, "--deadline-ms", |v| {
        v.parse::<u64>().ok().filter(|ms| *ms >= 1)
    });
    let timeout = std::time::Duration::from_secs(
        take_value_flag(&mut args, "--timeout-secs", |v| {
            v.parse::<u64>().ok().filter(|s| *s >= 1)
        })
        .unwrap_or(600),
    );
    let Some(path) = args.first() else {
        eprintln!("expected a graph file; write one with `apex save <app> <file>`");
        std::process::exit(2);
    };
    let graph = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let result =
        apex::serve::client::submit_and_wait(&addr, &tenant, &graph, deadline_ms, timeout)?;
    if let Some(detail) = result.get("detail") {
        // a concluded-but-failed job: surface the server's error chain
        return Err(ApexError::new(
            apex::fault::Stage::Cli,
            format!("job failed on the server: {detail}"),
        ));
    }
    if let Some(payload) = result.get("payload") {
        print!("{payload}");
    }
    if let Some(p) = result.get("provenance") {
        if p != apex::fault::Provenance::Completed.marker() {
            eprintln!("note: job concluded early ({p})");
        }
    }
    Ok(())
}

/// `apex chaos`: enumerate deterministic fault schedules from the
/// failpoint catalog and run the campaign (see `apex::chaos`). Prints a
/// per-schedule verdict; `--report FILE` additionally writes the full
/// JSONL report. Exit 1 if any schedule violated an invariant (or the
/// binary lacks the `fault-injection` feature), 2 on usage errors.
fn chaos(args: &[String]) -> Result<(), ApexError> {
    let mut args = args.to_vec();
    let schedules = take_value_flag(&mut args, "--schedules", |v| {
        v.parse::<usize>().ok().filter(|n| *n >= 1)
    })
    .unwrap_or(24);
    let seed = take_value_flag(&mut args, "--seed", |v| v.parse::<u64>().ok()).unwrap_or(7);
    let report = take_value_flag(&mut args, "--report", |v| {
        Some(std::path::PathBuf::from(v))
    });
    let scratch = take_value_flag(&mut args, "--scratch", |v| {
        Some(std::path::PathBuf::from(v))
    });
    let list_only = if let Some(pos) = args.iter().position(|a| a == "--list") {
        args.remove(pos);
        true
    } else {
        false
    };
    if let Some(extra) = args.first() {
        eprintln!("chaos: unexpected argument '{extra}'");
        std::process::exit(2);
    }
    if list_only {
        for schedule in apex::chaos::enumerate_schedules(schedules, seed) {
            println!("{}", schedule.to_json());
        }
        return Ok(());
    }
    let config = apex::chaos::ChaosConfig {
        schedules,
        seed,
        scratch,
    };
    let campaign = apex::chaos::run_campaign(&config)?;
    for run in &campaign.runs {
        let faults: Vec<String> = run
            .schedule
            .faults
            .iter()
            .map(|f| format!("{}@{}", f.site, f.nth))
            .collect();
        let verdict = if run.violations.is_empty() { "ok" } else { "VIOLATION" };
        println!(
            "schedule {:>3} [{}] {:<55} {}",
            run.schedule.id,
            run.schedule.mode.name(),
            faults.join(","),
            verdict
        );
        for v in &run.violations {
            println!("    - {v}");
        }
    }
    if let Some(path) = report {
        std::fs::write(&path, campaign.to_jsonl()).map_err(|e| {
            ApexError::new(
                apex::fault::Stage::Cli,
                format!("cannot write report {}: {e}", path.display()),
            )
        })?;
        eprintln!("chaos: JSONL report written to {}", path.display());
    }
    println!(
        "chaos: {} schedule(s), seed {}, {} violation(s) in {} schedule(s)",
        campaign.runs.len(),
        campaign.seed,
        campaign.total_violations(),
        campaign.violated_schedules()
    );
    if campaign.total_violations() > 0 {
        std::process::exit(1);
    }
    Ok(())
}

fn report(filter: &[String], resume: bool) -> Result<Status, ApexError> {
    let experiments = apex::eval::all_experiments();
    for id in filter {
        if !experiments.iter().any(|(name, _)| name == id) {
            let known: Vec<&str> = experiments.iter().map(|(name, _)| *name).collect();
            return Err(ApexError::new(
                apex::fault::Stage::Cli,
                format!("unknown experiment '{id}' (known: {})", known.join(", ")),
            ));
        }
    }
    let selected: Vec<_> = experiments
        .into_iter()
        .filter(|(name, _)| filter.is_empty() || filter.iter().any(|f| f == name))
        .collect();
    // the sweep key covers the selected experiment set so that e.g.
    // `apex report table1` and `apex report` journal independently
    let mut key_parts: Vec<&str> = vec![apex::core::JOURNAL_FORMAT, "report"];
    key_parts.extend(selected.iter().map(|(name, _)| *name));
    let sweep_key = apex::core::fnv1a(&key_parts);
    let journal = SweepJournal::for_sweep(sweep_key);
    let jobs: Vec<SweepJob> = selected
        .iter()
        .map(|(name, _)| SweepJob {
            key: apex::core::fnv1a(&[apex::core::JOURNAL_FORMAT, "report-job", name]),
            label: (*name).to_owned(),
        })
        .collect();
    let flag = apex::fault::interrupt::flag();
    let run = apex::core::run_checkpointed(&journal, &jobs, resume, Some(&flag), |i| {
        let table = (selected[i].1)()?;
        Ok(JobReport {
            payload: format!("{table}\n"),
            provenance: Provenance::Completed,
            degradations: "-".to_owned(),
        })
    })?;
    for r in &run.results {
        if let apex::core::SweepJobResult::Done { report, .. } = r {
            print!("{}", report.payload);
        }
    }
    sweep_footer();
    if run.interrupted {
        println!(
            "# partial report ({}): {}/{} job(s); resume with `apex report --resume`",
            Provenance::Partial.marker(),
            run.done(),
            jobs.len()
        );
        return Ok(Status::Interrupted);
    }
    Ok(Status::Done)
}
