//! # apex — automated CGRA processing-element design-space exploration
//!
//! A from-scratch Rust reproduction of **"APEX: A Framework for Automated
//! Processing Element Design Space Exploration using Frequent Subgraph
//! Analysis"** (Melchert et al., ASPLOS 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | paper stage |
//! |---|---|
//! | [`ir`] | CoreIR-style dataflow-graph IR + golden interpreter |
//! | [`apps`] | the benchmark applications of Table 1 (+ unseen apps) |
//! | [`mining`] | frequent subgraph mining + MIS analysis (§3.1–3.2) |
//! | [`merge`] | datapath-graph merging via max-weight clique (§3.3) |
//! | [`tech`] | technology model (area/energy/delay + interconnect) |
//! | [`pe`] | PE specification, cost models, Verilog generation (§4.1) |
//! | [`rewrite`] | rewrite-rule synthesis (§4.1.1) |
//! | [`map`] | instruction selection onto PEs (§4.1.2) |
//! | [`pipeline`] | PE + application pipelining (§4.2–4.3) |
//! | [`cgra`] | fabric generation, place-and-route, bitstreams (§2, §5.3) |
//! | [`par`] | bounded work-stealing job pool for parallel sweeps |
//! | [`verify`] | cross-stage static invariant verifier (`apex verify`) |
//! | [`core`] | the DSE driver: variants + full-flow evaluation (§4) |
//! | [`eval`] | the experiment harness regenerating every table/figure (§5) |
//!
//! # Quickstart
//!
//! ```no_run
//! use apex::core::{baseline_variant, evaluate_app, EvalOptions};
//! use apex::tech::TechModel;
//!
//! let app = apex::apps::gaussian();
//! let tech = TechModel::default();
//! let variant = baseline_variant(&[&app])?;
//! let result = evaluate_app(&variant, &app, &tech, &EvalOptions::default())
//!     .map_err(apex::fault::ApexError::from)?;
//! println!("{} PEs, {:.2} mm², {:.1} pJ/cycle",
//!     result.pnr.pe_tiles,
//!     result.area.total() * 1e-6,
//!     result.energy_per_cycle.total());
//! # Ok::<(), apex::fault::ApexError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use apex_apps as apps;
pub use apex_cgra as cgra;
pub use apex_chaos as chaos;
pub use apex_core as core;
pub use apex_eval as eval;
pub use apex_fault as fault;
pub use apex_ir as ir;
pub use apex_map as map;
pub use apex_merge as merge;
pub use apex_mining as mining;
pub use apex_par as par;
pub use apex_pe as pe;
pub use apex_pipeline as pipeline;
pub use apex_rewrite as rewrite;
pub use apex_serve as serve;
pub use apex_tech as tech;
pub use apex_verify as verify;
