//! Content-addressed PE-variant cache.
//!
//! Building a [`PeVariant`] (mining → merging → rule synthesis) is by far
//! the most expensive part of a cold experiment run, yet it is a pure
//! function of its inputs. This module caches finished variants on disk,
//! keyed by a 64-bit FNV-1a hash over a *canonical text serialization* of
//! everything the construction depends on:
//!
//! * the application dataflow graphs ([`apex_ir::to_text`], which
//!   round-trips exactly — two structurally identical graphs hash equal),
//! * the [`MinerConfig`], [`SubgraphSelection`], [`MergeOptions`] and
//!   [`TechModel`] (via their `Debug` form — any field change changes the
//!   key), and
//! * a codec format version, so stale entries from older builds can never
//!   be misread (they simply miss).
//!
//! Values are stored as a line-oriented text encoding of the full variant
//! (spec + sources + rules + synthesis report + degradations) under
//! `target/apex-cache/` — overridable with `APEX_CACHE_DIR`, disabled
//! entirely with `APEX_CACHE=off`. Writes are atomic (temp file + rename)
//! so concurrent sweeps can share one cache directory. Every entry opens
//! with a `sum <fnv1a>` checksum line over its payload, verified on read;
//! an entry that is present but fails the checksum or the decoder is
//! **quarantined** — renamed to `<key>.corrupt` and counted — rather than
//! silently deleted, so disk corruption leaves evidence while the sweep
//! transparently rebuilds the value.
//!
//! The in-tree `serde` shim is marker-only, so the codec here is written
//! by hand; [`encode_variant`] / [`decode_variant`] round-trip exactly,
//! which the warm-path determinism suite (`tests/determinism.rs`) pins
//! down to the [`datapath_hash`].

use crate::variant::{PeVariant, SubgraphSelection};
use apex_apps::Application;
use apex_fault::{ApexError, Degradation, DegradationKind, Stage};
use apex_ir::{from_text, op_from_token, op_to_token, to_text, Graph, NodeId, OpKind};
use apex_merge::{DatapathConfig, DpNode, DpSource, MergeOptions, MergedDatapath, NodeConfig};
use apex_mining::MinerConfig;
use apex_pe::{PePipeline, PeSpec};
use apex_rewrite::{RewriteRule, RuleSet, SynthesisReport};
use apex_tech::TechModel;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Bump when the value encoding or anything upstream of variant
/// construction changes semantically; old entries then miss instead of
/// resurrecting stale designs. (v2: entries gained a `sum` checksum line;
/// the version is hashed into every cache key, so v1 entries are simply
/// never addressed again rather than misread or falsely quarantined.)
const FORMAT: &str = "apex-variant v2";

// ---------------------------------------------------------------------------
// key hashing
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a sequence of byte strings (each terminated with a
/// separator byte so `["ab","c"]` and `["a","bc"]` hash differently).
pub fn fnv1a(parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= 0x1F; // unit separator
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The content-addressed cache key for one variant-construction request.
///
/// `kind` names the constructor (`"baseline"`, `"pe1"`, `"specialized"`);
/// the optional parts are hashed only when the constructor consumes them.
#[allow(clippy::too_many_arguments)]
pub fn variant_cache_key(
    kind: &str,
    name: &str,
    analysis_apps: &[&Application],
    eval_apps: &[&Application],
    miner: Option<&MinerConfig>,
    selection: Option<&SubgraphSelection>,
    merge_opts: Option<&MergeOptions>,
    tech: Option<&TechModel>,
    extra_kinds: &BTreeSet<OpKind>,
) -> u64 {
    let mut parts: Vec<String> = vec![FORMAT.to_owned(), kind.to_owned(), name.to_owned()];
    parts.push(format!("analysis:{}", analysis_apps.len()));
    for app in analysis_apps {
        parts.push(to_text(&app.graph));
    }
    parts.push(format!("eval:{}", eval_apps.len()));
    for app in eval_apps {
        parts.push(to_text(&app.graph));
    }
    parts.push(format!("miner:{miner:?}"));
    parts.push(format!("selection:{selection:?}"));
    parts.push(format!("merge:{merge_opts:?}"));
    parts.push(format!("tech:{tech:?}"));
    parts.push(format!("extra:{extra_kinds:?}"));
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    fnv1a(&refs)
}

/// A short fingerprint of a variant's architectural datapath — what the
/// determinism suite compares to assert a cache hit reproduces the *same
/// hardware*, not merely something equivalent.
pub fn datapath_hash(variant: &PeVariant) -> u64 {
    let mut s = String::new();
    write_datapath(&mut s, &variant.spec.datapath);
    fnv1a(&[&s])
}

// ---------------------------------------------------------------------------
// the cache itself
// ---------------------------------------------------------------------------

/// On-disk, content-addressed store of finished [`PeVariant`]s.
///
/// A cache may be **namespaced** per tenant ([`VariantCache::namespaced`]):
/// entries then live under `<root>/tenants/<tenant>/`, so one multi-tenant
/// daemon shares a single store without tenants being able to address (or
/// poison) each other's entries. The optional **byte cap**
/// ([`VariantCache::with_max_bytes`], `APEX_CACHE_MAX_BYTES`) is enforced
/// over the whole root — all namespaces together — by LRU eviction on
/// every store; see [`VariantCache::evict_to_cap`].
#[derive(Debug)]
pub struct VariantCache {
    /// Where this handle's entries live (a namespace subdir, or the root).
    dir: Option<PathBuf>,
    /// The eviction root shared by every namespace of this store.
    root: Option<PathBuf>,
    /// Byte cap over `root`; `None` = unbounded (the pre-cap behaviour).
    max_bytes: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
}

impl VariantCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        VariantCache {
            dir: Some(dir.clone()),
            root: Some(dir),
            max_bytes: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// A disabled cache: every load misses, stores are dropped.
    pub fn disabled() -> Self {
        VariantCache {
            dir: None,
            root: None,
            max_bytes: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Sets the LRU byte cap enforced over the cache root on every store.
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// A view of this store scoped to one tenant: entries live under
    /// `<root>/tenants/<tenant>/` (the tenant name is sanitized to a safe
    /// path component — it came off the wire). Counters are fresh per
    /// view; the byte cap is shared with the root store.
    pub fn namespaced(&self, tenant: &str) -> VariantCache {
        let Some(root) = &self.root else {
            return VariantCache::disabled();
        };
        VariantCache {
            dir: Some(root.join("tenants").join(sanitize_tenant(tenant))),
            root: Some(root.clone()),
            max_bytes: self.max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Cache configured from the environment: `APEX_CACHE=off|0|no`
    /// disables it, `APEX_CACHE_DIR` overrides the location, and
    /// `APEX_CACHE_MAX_BYTES` (plain bytes, or with a `k`/`m`/`g`
    /// suffix) caps the store with LRU eviction. Default location is
    /// `target/apex-cache` under the enclosing cargo workspace (falling
    /// back to the current directory).
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var("APEX_CACHE") {
            let v = v.trim().to_ascii_lowercase();
            if v == "off" || v == "0" || v == "no" || v == "false" {
                return VariantCache::disabled();
            }
        }
        let max_bytes = std::env::var("APEX_CACHE_MAX_BYTES")
            .ok()
            .and_then(|v| parse_byte_size(&v));
        if let Ok(dir) = std::env::var("APEX_CACHE_DIR") {
            if !dir.trim().is_empty() {
                return VariantCache::at(dir).with_max_bytes(max_bytes);
            }
        }
        VariantCache::at(default_cache_dir()).with_max_bytes(max_bytes)
    }

    /// The process-wide cache used by the experiment harness and the CLI.
    pub fn shared() -> &'static VariantCache {
        static SHARED: OnceLock<VariantCache> = OnceLock::new();
        SHARED.get_or_init(VariantCache::from_env)
    }

    /// Whether this cache can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Number of successful loads since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of failed loads since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of corrupt entries renamed to `<key>.corrupt` since
    /// construction (surfaced in the report summary).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Number of entries deleted by the byte-cap LRU policy since
    /// construction.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// The configured byte cap, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The eviction root (the whole store, across namespaces), if enabled.
    pub fn root_dir(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    fn entry_path(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key:016x}.var")))
    }

    /// Loads, checksum-verifies, and decodes the entry for `key`. A
    /// missing file is a plain miss; a file that is *present* but fails
    /// the checksum or decoder is quarantined (renamed to `<key>.corrupt`)
    /// so corruption is preserved as evidence, then reported as a miss and
    /// rebuilt.
    pub fn load(&self, key: u64) -> Option<PeVariant> {
        let path = self.entry_path(key)?;
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match decode_entry(&text) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // refresh the entry's mtime so the byte-cap eviction pass
                // (LRU by mtime) sees it as recently used, not merely
                // recently written; best-effort like every cache I/O
                if let Ok(f) = std::fs::File::options().write(true).open(&path) {
                    let _ = f.set_modified(std::time::SystemTime::now());
                }
                Some(v)
            }
            None => {
                let quarantine = path.with_extension("corrupt");
                if std::fs::rename(&path, &quarantine).is_ok() {
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Atomically stores a variant under `key`, prefixed with a checksum
    /// line over the payload. Best-effort: an unwritable cache directory
    /// silently degrades to pass-through (the sweep must not fail because
    /// a cache could not be written).
    pub fn store(&self, key: u64, variant: &PeVariant) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let text = encode_entry(variant);
        let tmp = dir.join(format!(".{key:016x}.{}.tmp", std::process::id()));
        // write the tmp file through the I/O fault adapter so injected
        // ENOSPC / short writes degrade exactly like real ones: the
        // partial tmp file is removed and the variant is simply not
        // cached (the caller already holds the computed value)
        let wrote = std::fs::File::create(&tmp).and_then(|mut f| {
            apex_fault::iofault::write_all(
                &mut f,
                text.as_bytes(),
                "io::cache_enospc",
                "io::cache_short_write",
            )
        });
        match wrote {
            Ok(()) => {
                if std::fs::rename(&tmp, &path).is_err() {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
            }
        }
        if let Some(cap) = self.max_bytes {
            self.evict_to_cap(cap);
        }
    }

    /// Deletes least-recently-used entries until the store (the whole
    /// root, every tenant namespace included) fits in `cap` bytes.
    ///
    /// Eviction order: quarantined `.corrupt` files first (they are dead
    /// weight kept only as evidence, so they count toward the cap and go
    /// before any live entry), then live entries by ascending mtime (LRU —
    /// [`VariantCache::load`] refreshes mtime on every hit), path as the
    /// deterministic tie-break. Deletes are single `remove_file` calls
    /// (atomic) and a concurrently vanished file — another process
    /// evicting the same store — is treated as already freed, never an
    /// error; the `serve::cache_evict_race` fail point simulates exactly
    /// that race. Returns the number of files this call deleted.
    pub fn evict_to_cap(&self, cap: u64) -> u64 {
        let Some(root) = &self.root else { return 0 };
        let mut entries: Vec<(bool, std::time::SystemTime, PathBuf, u64)> = Vec::new();
        collect_cache_files(root, &mut entries);
        let mut total: u64 = entries.iter().map(|e| e.3).sum();
        if total <= cap {
            return 0;
        }
        // corrupt-first, then oldest-first; path breaks mtime ties so two
        // processes scanning the same store agree on the victim order
        entries.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let mut deleted = 0u64;
        for (_corrupt, _mtime, path, len) in entries {
            if total <= cap {
                break;
            }
            #[cfg(feature = "fault-injection")]
            if apex_fault::failpoints::should_fire("serve::cache_evict_race") {
                // simulate a concurrent evictor winning the race: the file
                // is gone before our own delete lands
                let _ = std::fs::remove_file(&path);
            }
            match std::fs::remove_file(&path) {
                Ok(()) => {
                    total = total.saturating_sub(len);
                    deleted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    // lost the race to another evictor: the bytes are
                    // freed either way
                    total = total.saturating_sub(len);
                }
                Err(_) => {
                    // an undeletable file (permissions, live handle on
                    // some platforms) is skipped; eviction is best-effort
                }
            }
        }
        self.evicted.fetch_add(deleted, Ordering::Relaxed);
        deleted
    }

    /// Total bytes of cache files (live + quarantined) under the root.
    pub fn total_bytes(&self) -> u64 {
        let Some(root) = &self.root else { return 0 };
        let mut entries = Vec::new();
        collect_cache_files(root, &mut entries);
        entries.iter().map(|e| e.3).sum()
    }

    /// The memoizing entry point: returns the cached variant for `key`, or
    /// builds, stores, and returns it. Build errors are never cached.
    ///
    /// # Errors
    /// Propagates the builder's error on a miss.
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<PeVariant, ApexError>,
    ) -> Result<PeVariant, ApexError> {
        if let Some(v) = self.load(key) {
            return Ok(v);
        }
        let v = build()?;
        self.store(key, &v);
        Ok(v)
    }

    /// [`VariantCache::get_or_build`] scoped to an optional tenant
    /// namespace. The tenant view's counter activity is folded back into
    /// this store's counters, so a daemon's footer stats stay accurate
    /// across namespaces.
    ///
    /// # Errors
    /// Propagates the builder's error on a miss.
    pub fn get_or_build_in(
        &self,
        tenant: Option<&str>,
        key: u64,
        build: impl FnOnce() -> Result<PeVariant, ApexError>,
    ) -> Result<PeVariant, ApexError> {
        let Some(tenant) = tenant else {
            return self.get_or_build(key, build);
        };
        let ns = self.namespaced(tenant);
        let out = ns.get_or_build(key, build);
        self.hits.fetch_add(ns.hits(), Ordering::Relaxed);
        self.misses.fetch_add(ns.misses(), Ordering::Relaxed);
        self.quarantined.fetch_add(ns.quarantined(), Ordering::Relaxed);
        self.evicted.fetch_add(ns.evicted(), Ordering::Relaxed);
        out
    }
}

// ---------------------------------------------------------------------------
// per-thread tenant scope
// ---------------------------------------------------------------------------

thread_local! {
    /// The tenant namespace variant builds on this thread should cache
    /// under (`None` = the root namespace, i.e. the offline CLI).
    static THREAD_TENANT: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with every variant-cache access on this thread scoped to
/// `tenant`'s namespace. Used by the serve daemon: a job thread enters the
/// submitting tenant's scope, and the deep `cached()` call sites inside
/// variant builds pick it up without threading a handle through every
/// stage. Restores the previous scope on exit, including across panics.
pub fn with_thread_tenant<R>(tenant: &str, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<String>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            THREAD_TENANT.with(|t| *t.borrow_mut() = prev);
        }
    }
    let prev = THREAD_TENANT.with(|t| t.borrow_mut().replace(tenant.to_owned()));
    let _restore = Restore(prev);
    f()
}

/// The tenant scope installed on this thread, if any.
pub fn thread_tenant() -> Option<String> {
    THREAD_TENANT.with(|t| t.borrow().clone())
}

/// `<workspace>/target/<name>`, where `<workspace>` is the nearest
/// ancestor of the current directory holding a `Cargo.lock` (so tests run
/// from member-crate directories share one location); falls back to the
/// current directory. Shared by the variant cache and the sweep journal.
pub(crate) fn workspace_target_subdir(name: &str) -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe: &Path = &cwd;
    loop {
        if probe.join("Cargo.lock").exists() {
            return probe.join("target").join(name);
        }
        match probe.parent() {
            Some(p) => probe = p,
            None => return cwd.join("target").join(name),
        }
    }
}

fn default_cache_dir() -> PathBuf {
    workspace_target_subdir("apex-cache")
}

/// Reduces an untrusted tenant name (it arrived over a socket) to a safe
/// single path component: alphanumerics, `-`, `_` and `.` pass through,
/// everything else becomes `_`, and the result is capped at 64 chars and
/// never empty or dot-only (no `..` traversal, no hidden-file surprises).
pub(crate) fn sanitize_tenant(tenant: &str) -> String {
    let mut out: String = tenant
        .chars()
        .take(64)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.chars().all(|c| c == '.') {
        out = "default".to_owned();
    }
    out
}

/// Parses "12345", "512k", "64m", "2g" (case-insensitive, 1024-based)
/// into bytes; `None` on anything else (the cap is then left unset).
pub fn parse_byte_size(s: &str) -> Option<u64> {
    let s = s.trim().to_ascii_lowercase();
    let (digits, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(d) => {
            let mult = match s.as_bytes().last() {
                Some(b'k') => 1u64 << 10,
                Some(b'm') => 1 << 20,
                _ => 1 << 30,
            };
            (d, mult)
        }
        None => (s.as_str(), 1),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_mul(mult)
}

/// Recursively collects `(is_corrupt, mtime, path, len)` for every cache
/// file (`.var` entry or `.corrupt` quarantine) under `dir`. Unreadable
/// directories or metadata are skipped — eviction must never fail a sweep.
fn collect_cache_files(dir: &Path, out: &mut Vec<(bool, std::time::SystemTime, PathBuf, u64)>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.flatten() {
        let path = entry.path();
        let Ok(meta) = entry.metadata() else { continue };
        if meta.is_dir() {
            collect_cache_files(&path, out);
            continue;
        }
        let is_corrupt = path.extension().is_some_and(|e| e == "corrupt");
        let is_var = path.extension().is_some_and(|e| e == "var");
        if !is_corrupt && !is_var {
            continue; // leave tmp files and foreign files alone
        }
        let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        out.push((is_corrupt, mtime, path, meta.len()));
    }
}

// ---------------------------------------------------------------------------
// entry envelope: checksum line + payload
// ---------------------------------------------------------------------------

/// Wraps the variant encoding in the on-disk entry envelope: a
/// `sum <fnv1a-hex>` line over the exact payload that follows.
fn encode_entry(variant: &PeVariant) -> String {
    let body = encode_variant(variant);
    format!("sum {:016x}\n{body}", fnv1a(&[&body]))
}

/// Verifies the checksum line and decodes the payload; `None` on any
/// mismatch or malformation (the caller quarantines the file).
fn decode_entry(text: &str) -> Option<PeVariant> {
    let (first, body) = text.split_once('\n')?;
    let sum = u64::from_str_radix(first.strip_prefix("sum ")?, 16).ok()?;
    if fnv1a(&[body]) != sum {
        return None;
    }
    decode_variant(body)
}

// ---------------------------------------------------------------------------
// value codec: encode
// ---------------------------------------------------------------------------

/// Escapes a string onto the rest of a line (newlines and backslashes).
fn esc_line(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unesc_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Escapes a string into a single whitespace-free token.
fn esc_tok(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    if out.is_empty() {
        "\\e".to_owned()
    } else {
        out
    }
}

fn unesc_tok(s: &str) -> String {
    if s == "\\e" {
        return String::new();
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn src_tok(src: DpSource) -> String {
    match src {
        DpSource::WordInput(k) => format!("w{k}"),
        DpSource::BitInput(k) => format!("b{k}"),
        DpSource::Node(k) => format!("n{k}"),
    }
}

fn src_from_tok(tok: &str) -> Option<DpSource> {
    let (head, rest) = tok.split_at(1);
    match head {
        "w" => rest.parse().ok().map(DpSource::WordInput),
        "b" => rest.parse().ok().map(DpSource::BitInput),
        "n" => rest.parse().ok().map(DpSource::Node),
        _ => None,
    }
}

fn write_config(out: &mut String, cfg: &DatapathConfig) {
    let _ = write!(out, "C {} {}", esc_tok(&cfg.name), cfg.node_cfg.len());
    for nc in &cfg.node_cfg {
        match nc {
            None => out.push_str(" -"),
            Some(nc) => {
                let _ = write!(out, " {} {}", op_to_token(nc.op), nc.port_sel.len());
                for s in &nc.port_sel {
                    let _ = write!(out, " {s}");
                }
            }
        }
    }
    for sel in [&cfg.word_out_sel, &cfg.bit_out_sel] {
        let _ = write!(out, " {}", sel.len());
        for s in sel {
            let _ = write!(out, " {}", src_tok(*s));
        }
    }
    for map in [&cfg.word_input_map, &cfg.bit_input_map] {
        let _ = write!(out, " {}", map.len());
        for m in map {
            let _ = write!(out, " {m}");
        }
    }
    let _ = write!(out, " {}", cfg.node_map.len());
    for (a, b) in &cfg.node_map {
        let _ = write!(out, " {a}:{b}");
    }
    out.push('\n');
}

fn write_datapath(out: &mut String, dp: &MergedDatapath) {
    let _ = writeln!(out, "dpname {}", esc_line(&dp.name));
    let _ = writeln!(
        out,
        "io {} {} {} {}",
        dp.word_inputs, dp.bit_inputs, dp.word_outputs, dp.bit_outputs
    );
    let _ = writeln!(out, "nodes {}", dp.nodes.len());
    for node in &dp.nodes {
        let _ = write!(out, "N {}", node.ops.len());
        for op in &node.ops {
            let _ = write!(out, " {}", op_to_token(*op));
        }
        let _ = write!(out, " {}", node.port_candidates.len());
        for port in &node.port_candidates {
            let _ = write!(out, " {}", port.len());
            for s in port {
                let _ = write!(out, " {}", src_tok(*s));
            }
        }
        out.push('\n');
    }
    let _ = writeln!(out, "configs {}", dp.configs.len());
    for cfg in &dp.configs {
        write_config(out, cfg);
    }
}

fn write_graph(out: &mut String, g: &Graph) {
    let text = to_text(g);
    let _ = writeln!(out, "g {}", text.lines().count());
    out.push_str(&text);
}

/// Serializes a variant to the cache's line-oriented text format.
pub fn encode_variant(v: &PeVariant) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{FORMAT}");
    let _ = writeln!(out, "name {}", esc_line(&v.spec.name));
    let _ = writeln!(out, "legacy {}", u8::from(v.spec.legacy_control));
    match &v.spec.pipeline {
        None => {
            let _ = writeln!(out, "pipeline -");
        }
        Some(p) => {
            let _ = write!(out, "pipeline {} {}", p.stages, p.stage_of_node.len());
            for s in &p.stage_of_node {
                let _ = write!(out, " {s}");
            }
            out.push('\n');
        }
    }
    write_datapath(&mut out, &v.spec.datapath);
    let _ = writeln!(out, "sources {}", v.sources.len());
    for g in &v.sources {
        write_graph(&mut out, g);
    }
    let _ = writeln!(out, "rules {}", v.rules.rules.len());
    for r in &v.rules.rules {
        let _ = write!(
            out,
            "rule {} {} {}",
            esc_tok(&r.name),
            r.ops_covered,
            r.payload_bindings.len()
        );
        for (nid, dp_node) in &r.payload_bindings {
            let _ = write!(out, " {}:{dp_node}", nid.0);
        }
        out.push('\n');
        write_graph(&mut out, &r.pattern);
        write_config(&mut out, &r.config);
    }
    let _ = write!(out, "missing {}", v.synthesis.missing.len());
    for m in &v.synthesis.missing {
        let _ = write!(out, " {}", esc_tok(m));
    }
    out.push('\n');
    let _ = writeln!(out, "rejected {}", v.synthesis.rejected);
    let _ = writeln!(out, "degradations {}", v.degradations.len());
    for d in &v.degradations {
        let _ = writeln!(
            out,
            "deg {} {} {}",
            d.stage.name(),
            d.kind.name(),
            esc_line(&d.detail)
        );
    }
    out
}

// ---------------------------------------------------------------------------
// value codec: decode (any malformation ⇒ None ⇒ cache miss)
// ---------------------------------------------------------------------------

struct Reader<'a> {
    lines: Vec<&'a str>,
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            lines: text.lines().collect(),
            at: 0,
        }
    }

    fn line(&mut self) -> Option<&'a str> {
        let l = self.lines.get(self.at).copied()?;
        self.at += 1;
        Some(l)
    }

    /// Reads a line of the form `<tag> <rest>` and returns `<rest>`.
    fn tagged(&mut self, tag: &str) -> Option<&'a str> {
        self.line()?.strip_prefix(tag)?.strip_prefix(' ')
    }

    /// Reads `<tag> <count>` followed by `count` raw lines, rejoined.
    fn block(&mut self, tag: &str) -> Option<String> {
        let n: usize = self.tagged(tag)?.trim().parse().ok()?;
        let mut s = String::new();
        for _ in 0..n {
            s.push_str(self.line()?);
            s.push('\n');
        }
        Some(s)
    }
}

fn read_config(line: &str) -> Option<DatapathConfig> {
    let mut toks = line.strip_prefix("C ")?.split_whitespace();
    let name = unesc_tok(toks.next()?);
    let n_nodes: usize = toks.next()?.parse().ok()?;
    let mut node_cfg = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let head = toks.next()?;
        if head == "-" {
            node_cfg.push(None);
            continue;
        }
        let op = op_from_token(head)?;
        let k: usize = toks.next()?.parse().ok()?;
        let mut port_sel = Vec::with_capacity(k);
        for _ in 0..k {
            port_sel.push(toks.next()?.parse().ok()?);
        }
        node_cfg.push(Some(NodeConfig { op, port_sel }));
    }
    let mut read_srcs = || -> Option<Vec<DpSource>> {
        let k: usize = toks.next()?.parse().ok()?;
        (0..k).map(|_| src_from_tok(toks.next()?)).collect()
    };
    let word_out_sel = read_srcs()?;
    let bit_out_sel = read_srcs()?;
    let mut read_u16s = || -> Option<Vec<u16>> {
        let k: usize = toks.next()?.parse().ok()?;
        (0..k).map(|_| toks.next()?.parse().ok()).collect()
    };
    let word_input_map = read_u16s()?;
    let bit_input_map = read_u16s()?;
    let k: usize = toks.next()?.parse().ok()?;
    let mut node_map = Vec::with_capacity(k);
    for _ in 0..k {
        let (a, b) = toks.next()?.split_once(':')?;
        node_map.push((a.parse().ok()?, b.parse().ok()?));
    }
    if toks.next().is_some() {
        return None;
    }
    Some(DatapathConfig {
        name,
        node_cfg,
        word_out_sel,
        bit_out_sel,
        word_input_map,
        bit_input_map,
        node_map,
    })
}

fn read_datapath(r: &mut Reader) -> Option<MergedDatapath> {
    let name = unesc_line(r.tagged("dpname")?);
    let mut io = r.tagged("io")?.split_whitespace();
    let word_inputs = io.next()?.parse().ok()?;
    let bit_inputs = io.next()?.parse().ok()?;
    let word_outputs = io.next()?.parse().ok()?;
    let bit_outputs = io.next()?.parse().ok()?;
    let n_nodes: usize = r.tagged("nodes")?.trim().parse().ok()?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let line = r.line()?;
        let mut toks = line.strip_prefix("N ")?.split_whitespace();
        let n_ops: usize = toks.next()?.parse().ok()?;
        let ops: Vec<_> = (0..n_ops)
            .map(|_| toks.next().and_then(op_from_token))
            .collect::<Option<_>>()?;
        let n_ports: usize = toks.next()?.parse().ok()?;
        let mut port_candidates = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            let k: usize = toks.next()?.parse().ok()?;
            let port: Vec<_> = (0..k)
                .map(|_| toks.next().and_then(src_from_tok))
                .collect::<Option<_>>()?;
            port_candidates.push(port);
        }
        if toks.next().is_some() {
            return None;
        }
        nodes.push(DpNode {
            ops,
            port_candidates,
        });
    }
    let n_cfg: usize = r.tagged("configs")?.trim().parse().ok()?;
    let mut configs = Vec::with_capacity(n_cfg);
    for _ in 0..n_cfg {
        configs.push(read_config(r.line()?)?);
    }
    Some(MergedDatapath {
        name,
        nodes,
        word_inputs,
        bit_inputs,
        word_outputs,
        bit_outputs,
        configs,
    })
}

fn read_graph(r: &mut Reader) -> Option<Graph> {
    let text = r.block("g")?;
    from_text(&text).ok()
}

/// Parses a variant from the cache text format; `None` on any
/// malformation (the caller treats it as a miss).
pub fn decode_variant(text: &str) -> Option<PeVariant> {
    let mut r = Reader::new(text);
    if r.line()? != FORMAT {
        return None;
    }
    let name = unesc_line(r.tagged("name")?);
    let legacy_control = match r.tagged("legacy")? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let pipe_line = r.tagged("pipeline")?;
    let pipeline = if pipe_line == "-" {
        None
    } else {
        let mut toks = pipe_line.split_whitespace();
        let stages: u32 = toks.next()?.parse().ok()?;
        let n: usize = toks.next()?.parse().ok()?;
        let stage_of_node: Vec<u32> = (0..n)
            .map(|_| toks.next().and_then(|t| t.parse().ok()))
            .collect::<Option<_>>()?;
        Some(PePipeline {
            stage_of_node,
            stages,
        })
    };
    let datapath = read_datapath(&mut r)?;
    let n_sources: usize = r.tagged("sources")?.trim().parse().ok()?;
    let sources: Vec<Graph> = (0..n_sources)
        .map(|_| read_graph(&mut r))
        .collect::<Option<_>>()?;
    let n_rules: usize = r.tagged("rules")?.trim().parse().ok()?;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let mut toks = r.line()?.strip_prefix("rule ")?.split_whitespace();
        let rule_name = unesc_tok(toks.next()?);
        let ops_covered: usize = toks.next()?.parse().ok()?;
        let n_bind: usize = toks.next()?.parse().ok()?;
        let mut payload_bindings = Vec::with_capacity(n_bind);
        for _ in 0..n_bind {
            let (a, b) = toks.next()?.split_once(':')?;
            payload_bindings.push((NodeId(a.parse().ok()?), b.parse().ok()?));
        }
        let pattern = read_graph(&mut r)?;
        let config = read_config(r.line()?)?;
        rules.push(RewriteRule {
            name: rule_name,
            pattern,
            config,
            payload_bindings,
            ops_covered,
        });
    }
    let mut miss_toks = r.tagged("missing")?.split_whitespace();
    let n_missing: usize = miss_toks.next()?.parse().ok()?;
    let missing: Vec<String> = (0..n_missing)
        .map(|_| miss_toks.next().map(unesc_tok))
        .collect::<Option<_>>()?;
    let rejected: usize = r.tagged("rejected")?.trim().parse().ok()?;
    let n_deg: usize = r.tagged("degradations")?.trim().parse().ok()?;
    let mut degradations = Vec::with_capacity(n_deg);
    for _ in 0..n_deg {
        let rest = r.tagged("deg")?;
        let (stage_s, rest) = rest.split_once(' ')?;
        let (kind_s, detail) = rest.split_once(' ')?;
        degradations.push(Degradation::new(
            Stage::from_name(stage_s)?,
            DegradationKind::from_name(kind_s)?,
            unesc_line(detail),
        ));
    }
    if r.line().is_some() {
        return None;
    }
    // reject spec-level inconsistencies a bit-flip could smuggle in
    datapath.validate().ok()?;
    Some(PeVariant {
        spec: PeSpec {
            name,
            datapath,
            legacy_control,
            pipeline,
        },
        sources,
        rules: RuleSet { rules },
        synthesis: SynthesisReport { missing, rejected },
        degradations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::{baseline_variant, specialized_variant};
    use apex_apps::gaussian;
    use std::time::Duration;

    fn spec_variant() -> PeVariant {
        let app = gaussian();
        specialized_variant(
            "pe_cache_test",
            &[&app],
            &[&app],
            &MinerConfig::default(),
            &SubgraphSelection::default(),
            &MergeOptions::default(),
            &TechModel::default(),
            &BTreeSet::new(),
        )
        .unwrap()
    }

    fn assert_variants_equal(a: &PeVariant, b: &PeVariant) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.synthesis, b.synthesis);
        assert_eq!(a.degradations, b.degradations);
    }

    #[test]
    fn codec_round_trips_a_specialized_variant() {
        let v = spec_variant();
        let decoded = decode_variant(&encode_variant(&v)).expect("decodes");
        assert_variants_equal(&v, &decoded);
        assert_eq!(datapath_hash(&v), datapath_hash(&decoded));
    }

    #[test]
    fn codec_round_trips_the_baseline() {
        let app = gaussian();
        let v = baseline_variant(&[&app]).unwrap();
        let decoded = decode_variant(&encode_variant(&v)).expect("decodes");
        assert_variants_equal(&v, &decoded);
    }

    #[test]
    fn corrupt_entries_decode_as_none() {
        let v = spec_variant();
        let good = encode_variant(&v);
        assert!(decode_variant("").is_none());
        assert!(decode_variant("apex-variant v999\n").is_none());
        // truncation at every tenth line must never panic, only miss
        let lines: Vec<&str> = good.lines().collect();
        for cut in (0..lines.len()).step_by(10) {
            let partial = lines[..cut].join("\n");
            assert!(decode_variant(&partial).is_none(), "cut at {cut}");
        }
        // flip a count field
        let bad = good.replacen("rules ", "rules 9", 1);
        assert!(decode_variant(&bad).is_none());

        // the entry envelope catches corruption the decoder might accept:
        // a flipped payload byte fails the checksum line
        let entry = encode_entry(&v);
        assert!(decode_entry(&entry).is_some());
        let flipped = entry.replacen("name ", "nbme ", 1);
        assert!(decode_entry(&flipped).is_none());
        assert!(decode_entry("no checksum line").is_none());

        // a corrupt on-disk entry is quarantined to <key>.corrupt, counted,
        // and reported as a miss — never silently rebuilt over
        let dir = std::env::temp_dir().join(format!("apex-cache-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = VariantCache::at(&dir);
        let key = 0x1234_5678_9ABC_DEF0u64;
        cache.store(key, &v);
        let path = dir.join(format!("{key:016x}.var"));
        std::fs::write(&path, flipped).unwrap();
        assert!(cache.load(key).is_none());
        assert_eq!(cache.quarantined(), 1);
        assert!(!path.exists(), "corrupt entry left in place");
        assert!(
            dir.join(format!("{key:016x}.corrupt")).exists(),
            "quarantine file missing"
        );
        // the quarantined key rebuilds: a store+load round trip works again
        cache.store(key, &v);
        assert!(cache.load(key).is_some());
        assert_eq!(cache.quarantined(), 1, "clean reload must not re-quarantine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_store_load_hit_counters() {
        let dir = std::env::temp_dir().join(format!("apex-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = VariantCache::at(&dir);
        let v = spec_variant();
        let key = 0xABCD_EF01_2345_6789u64;
        assert!(cache.load(key).is_none());
        assert_eq!(cache.misses(), 1);
        cache.store(key, &v);
        let loaded = cache.load(key).expect("hit after store");
        assert_eq!(cache.hits(), 1);
        assert_variants_equal(&v, &loaded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_or_build_builds_once() {
        let dir = std::env::temp_dir().join(format!("apex-cache-gob-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = VariantCache::at(&dir);
        let app = gaussian();
        let key = variant_cache_key(
            "baseline",
            "pe_base",
            &[],
            &[&app],
            None,
            None,
            None,
            None,
            &BTreeSet::new(),
        );
        let mut builds = 0;
        for _ in 0..3 {
            let v = cache
                .get_or_build(key, || {
                    builds += 1;
                    baseline_variant(&[&app])
                })
                .unwrap();
            assert_eq!(v.spec.name, "pe_base");
        }
        assert_eq!(builds, 1, "two warm runs must not rebuild");
        assert_eq!(cache.hits(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_is_pass_through() {
        let cache = VariantCache::disabled();
        let v = spec_variant();
        cache.store(7, &v);
        assert!(cache.load(7).is_none());
        assert!(!cache.is_enabled());
    }

    #[test]
    fn key_separates_apps_and_configs() {
        let g = gaussian();
        let h = apex_apps::harris();
        let base = variant_cache_key(
            "specialized",
            "pe",
            &[&g],
            &[&g],
            Some(&MinerConfig::default()),
            Some(&SubgraphSelection::default()),
            Some(&MergeOptions::default()),
            Some(&TechModel::default()),
            &BTreeSet::new(),
        );
        let other_app = variant_cache_key(
            "specialized",
            "pe",
            &[&h],
            &[&h],
            Some(&MinerConfig::default()),
            Some(&SubgraphSelection::default()),
            Some(&MergeOptions::default()),
            Some(&TechModel::default()),
            &BTreeSet::new(),
        );
        let other_sel = variant_cache_key(
            "specialized",
            "pe",
            &[&g],
            &[&g],
            Some(&MinerConfig::default()),
            Some(&SubgraphSelection {
                per_app: 3,
                ..SubgraphSelection::default()
            }),
            Some(&MergeOptions::default()),
            Some(&TechModel::default()),
            &BTreeSet::new(),
        );
        assert_ne!(base, other_app);
        assert_ne!(base, other_sel);
    }

    #[test]
    fn namespaced_caches_do_not_share_entries() {
        let dir = std::env::temp_dir().join(format!("apex-cache-ns-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let root = VariantCache::at(&dir);
        let v = spec_variant();
        let key = 0x5555_0000_1111_2222u64;
        let acme = root.namespaced("acme");
        let globex = root.namespaced("globex");
        acme.store(key, &v);
        assert!(acme.load(key).is_some(), "same-tenant load hits");
        assert!(globex.load(key).is_none(), "tenants must not share entries");
        assert!(root.load(key).is_none(), "root must not see tenant entries");
        // a second view of the same tenant shares the store
        assert!(root.namespaced("acme").load(key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenant_names_are_sanitized_to_safe_path_components() {
        assert_eq!(sanitize_tenant("acme-1"), "acme-1");
        assert_eq!(sanitize_tenant("../../etc/passwd"), ".._.._etc_passwd");
        assert_eq!(sanitize_tenant(""), "default");
        assert_eq!(sanitize_tenant(".."), "default");
        assert_eq!(sanitize_tenant("a/b\\c d"), "a_b_c_d");
        assert!(sanitize_tenant(&"x".repeat(200)).len() <= 64);
        // traversal can never survive sanitization
        assert!(!sanitize_tenant("../../x").contains('/'));
    }

    #[test]
    fn parse_byte_size_accepts_suffixes() {
        assert_eq!(parse_byte_size("12345"), Some(12345));
        assert_eq!(parse_byte_size("512k"), Some(512 << 10));
        assert_eq!(parse_byte_size("64M"), Some(64 << 20));
        assert_eq!(parse_byte_size("2g"), Some(2 << 30));
        assert_eq!(parse_byte_size(" 8k "), Some(8 << 10));
        assert_eq!(parse_byte_size(""), None);
        assert_eq!(parse_byte_size("lots"), None);
        assert_eq!(parse_byte_size("-3"), None);
    }

    #[test]
    fn byte_cap_evicts_lru_with_corrupt_entries_first() {
        let dir = std::env::temp_dir().join(format!("apex-cache-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // three fake entries of 100 bytes each with staggered mtimes, plus
        // one quarantined file: cap at 250 must evict the corpse first,
        // then the stalest live entry
        let mk = |name: &str, age_s: u64| {
            let p = dir.join(name);
            std::fs::write(&p, [b'x'; 100]).unwrap();
            let t = std::time::SystemTime::now() - Duration::from_secs(age_s);
            std::fs::File::options()
                .write(true)
                .open(&p)
                .unwrap()
                .set_modified(t)
                .unwrap();
            p
        };
        let corrupt = mk("00000000000000aa.corrupt", 10); // newest, but corrupt
        let oldest = mk("00000000000000bb.var", 300);
        let middle = mk("00000000000000cc.var", 200);
        let newest = mk("00000000000000dd.var", 100);
        let cache = VariantCache::at(&dir).with_max_bytes(Some(250));
        assert_eq!(cache.total_bytes(), 400);
        let deleted = cache.evict_to_cap(250);
        assert_eq!(deleted, 2, "two files freed to get 400 under 250");
        assert!(!corrupt.exists(), "corrupt entries are evicted first");
        assert!(!oldest.exists(), "then the least-recently-used entry");
        assert!(middle.exists());
        assert!(newest.exists());
        assert_eq!(cache.evicted(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_enforces_cap_and_hits_refresh_recency() {
        let dir = std::env::temp_dir().join(format!("apex-cache-lru-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let v = spec_variant();
        let entry_bytes = encode_entry(&v).len() as u64;
        // cap fits two entries but not three
        let cache = VariantCache::at(&dir).with_max_bytes(Some(entry_bytes * 2 + entry_bytes / 2));
        cache.store(1, &v);
        std::thread::sleep(Duration::from_millis(20));
        cache.store(2, &v);
        std::thread::sleep(Duration::from_millis(20));
        // touch entry 1 so entry 2 is now the LRU victim
        assert!(cache.load(1).is_some());
        std::thread::sleep(Duration::from_millis(20));
        cache.store(3, &v);
        assert!(cache.load(1).is_some(), "recently-hit entry survives");
        assert!(cache.load(2).is_none(), "LRU entry was evicted");
        assert!(cache.load(3).is_some(), "just-stored entry survives");
        assert_eq!(cache.evicted(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["", "plain", "with space", "tab\tand\nnewline", "back\\slash"] {
            assert_eq!(unesc_tok(&esc_tok(s)), s);
            if !s.contains('\t') {
                assert_eq!(unesc_line(&esc_line(s)), s);
            }
        }
    }
}
