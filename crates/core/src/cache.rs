//! Content-addressed PE-variant cache.
//!
//! Building a [`PeVariant`] (mining → merging → rule synthesis) is by far
//! the most expensive part of a cold experiment run, yet it is a pure
//! function of its inputs. This module caches finished variants on disk,
//! keyed by a 64-bit FNV-1a hash over a *canonical text serialization* of
//! everything the construction depends on:
//!
//! * the application dataflow graphs ([`apex_ir::to_text`], which
//!   round-trips exactly — two structurally identical graphs hash equal),
//! * the [`MinerConfig`], [`SubgraphSelection`], [`MergeOptions`] and
//!   [`TechModel`] (via their `Debug` form — any field change changes the
//!   key), and
//! * a codec format version, so stale entries from older builds can never
//!   be misread (they simply miss).
//!
//! Values are stored as a line-oriented text encoding of the full variant
//! (spec + sources + rules + synthesis report + degradations) under
//! `target/apex-cache/` — overridable with `APEX_CACHE_DIR`, disabled
//! entirely with `APEX_CACHE=off`. Writes are atomic (temp file + rename)
//! so concurrent sweeps can share one cache directory. Every entry opens
//! with a `sum <fnv1a>` checksum line over its payload, verified on read;
//! an entry that is present but fails the checksum or the decoder is
//! **quarantined** — renamed to `<key>.corrupt` and counted — rather than
//! silently deleted, so disk corruption leaves evidence while the sweep
//! transparently rebuilds the value.
//!
//! The in-tree `serde` shim is marker-only, so the codec here is written
//! by hand; [`encode_variant`] / [`decode_variant`] round-trip exactly,
//! which the warm-path determinism suite (`tests/determinism.rs`) pins
//! down to the [`datapath_hash`].

use crate::variant::{PeVariant, SubgraphSelection};
use apex_apps::Application;
use apex_fault::{ApexError, Degradation, DegradationKind, Stage};
use apex_ir::{from_text, op_from_token, op_to_token, to_text, Graph, NodeId, OpKind};
use apex_merge::{DatapathConfig, DpNode, DpSource, MergeOptions, MergedDatapath, NodeConfig};
use apex_mining::MinerConfig;
use apex_pe::{PePipeline, PeSpec};
use apex_rewrite::{RewriteRule, RuleSet, SynthesisReport};
use apex_tech::TechModel;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Bump when the value encoding or anything upstream of variant
/// construction changes semantically; old entries then miss instead of
/// resurrecting stale designs. (v2: entries gained a `sum` checksum line;
/// the version is hashed into every cache key, so v1 entries are simply
/// never addressed again rather than misread or falsely quarantined.)
const FORMAT: &str = "apex-variant v2";

// ---------------------------------------------------------------------------
// key hashing
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a sequence of byte strings (each terminated with a
/// separator byte so `["ab","c"]` and `["a","bc"]` hash differently).
pub fn fnv1a(parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= 0x1F; // unit separator
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The content-addressed cache key for one variant-construction request.
///
/// `kind` names the constructor (`"baseline"`, `"pe1"`, `"specialized"`);
/// the optional parts are hashed only when the constructor consumes them.
#[allow(clippy::too_many_arguments)]
pub fn variant_cache_key(
    kind: &str,
    name: &str,
    analysis_apps: &[&Application],
    eval_apps: &[&Application],
    miner: Option<&MinerConfig>,
    selection: Option<&SubgraphSelection>,
    merge_opts: Option<&MergeOptions>,
    tech: Option<&TechModel>,
    extra_kinds: &BTreeSet<OpKind>,
) -> u64 {
    let mut parts: Vec<String> = vec![FORMAT.to_owned(), kind.to_owned(), name.to_owned()];
    parts.push(format!("analysis:{}", analysis_apps.len()));
    for app in analysis_apps {
        parts.push(to_text(&app.graph));
    }
    parts.push(format!("eval:{}", eval_apps.len()));
    for app in eval_apps {
        parts.push(to_text(&app.graph));
    }
    parts.push(format!("miner:{miner:?}"));
    parts.push(format!("selection:{selection:?}"));
    parts.push(format!("merge:{merge_opts:?}"));
    parts.push(format!("tech:{tech:?}"));
    parts.push(format!("extra:{extra_kinds:?}"));
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    fnv1a(&refs)
}

/// A short fingerprint of a variant's architectural datapath — what the
/// determinism suite compares to assert a cache hit reproduces the *same
/// hardware*, not merely something equivalent.
pub fn datapath_hash(variant: &PeVariant) -> u64 {
    let mut s = String::new();
    write_datapath(&mut s, &variant.spec.datapath);
    fnv1a(&[&s])
}

// ---------------------------------------------------------------------------
// the cache itself
// ---------------------------------------------------------------------------

/// On-disk, content-addressed store of finished [`PeVariant`]s.
#[derive(Debug)]
pub struct VariantCache {
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
}

impl VariantCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        VariantCache {
            dir: Some(dir.into()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// A disabled cache: every load misses, stores are dropped.
    pub fn disabled() -> Self {
        VariantCache {
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Cache configured from the environment: `APEX_CACHE=off|0|no`
    /// disables it, `APEX_CACHE_DIR` overrides the location, default is
    /// `target/apex-cache` under the enclosing cargo workspace (falling
    /// back to the current directory).
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var("APEX_CACHE") {
            let v = v.trim().to_ascii_lowercase();
            if v == "off" || v == "0" || v == "no" || v == "false" {
                return VariantCache::disabled();
            }
        }
        if let Ok(dir) = std::env::var("APEX_CACHE_DIR") {
            if !dir.trim().is_empty() {
                return VariantCache::at(dir);
            }
        }
        VariantCache::at(default_cache_dir())
    }

    /// The process-wide cache used by the experiment harness and the CLI.
    pub fn shared() -> &'static VariantCache {
        static SHARED: OnceLock<VariantCache> = OnceLock::new();
        SHARED.get_or_init(VariantCache::from_env)
    }

    /// Whether this cache can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Number of successful loads since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of failed loads since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of corrupt entries renamed to `<key>.corrupt` since
    /// construction (surfaced in the report summary).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key:016x}.var")))
    }

    /// Loads, checksum-verifies, and decodes the entry for `key`. A
    /// missing file is a plain miss; a file that is *present* but fails
    /// the checksum or decoder is quarantined (renamed to `<key>.corrupt`)
    /// so corruption is preserved as evidence, then reported as a miss and
    /// rebuilt.
    pub fn load(&self, key: u64) -> Option<PeVariant> {
        let path = self.entry_path(key)?;
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match decode_entry(&text) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                let quarantine = path.with_extension("corrupt");
                if std::fs::rename(&path, &quarantine).is_ok() {
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Atomically stores a variant under `key`, prefixed with a checksum
    /// line over the payload. Best-effort: an unwritable cache directory
    /// silently degrades to pass-through (the sweep must not fail because
    /// a cache could not be written).
    pub fn store(&self, key: u64, variant: &PeVariant) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let text = encode_entry(variant);
        let tmp = dir.join(format!(".{key:016x}.{}.tmp", std::process::id()));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// The memoizing entry point: returns the cached variant for `key`, or
    /// builds, stores, and returns it. Build errors are never cached.
    ///
    /// # Errors
    /// Propagates the builder's error on a miss.
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<PeVariant, ApexError>,
    ) -> Result<PeVariant, ApexError> {
        if let Some(v) = self.load(key) {
            return Ok(v);
        }
        let v = build()?;
        self.store(key, &v);
        Ok(v)
    }
}

/// `<workspace>/target/<name>`, where `<workspace>` is the nearest
/// ancestor of the current directory holding a `Cargo.lock` (so tests run
/// from member-crate directories share one location); falls back to the
/// current directory. Shared by the variant cache and the sweep journal.
pub(crate) fn workspace_target_subdir(name: &str) -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe: &Path = &cwd;
    loop {
        if probe.join("Cargo.lock").exists() {
            return probe.join("target").join(name);
        }
        match probe.parent() {
            Some(p) => probe = p,
            None => return cwd.join("target").join(name),
        }
    }
}

fn default_cache_dir() -> PathBuf {
    workspace_target_subdir("apex-cache")
}

// ---------------------------------------------------------------------------
// entry envelope: checksum line + payload
// ---------------------------------------------------------------------------

/// Wraps the variant encoding in the on-disk entry envelope: a
/// `sum <fnv1a-hex>` line over the exact payload that follows.
fn encode_entry(variant: &PeVariant) -> String {
    let body = encode_variant(variant);
    format!("sum {:016x}\n{body}", fnv1a(&[&body]))
}

/// Verifies the checksum line and decodes the payload; `None` on any
/// mismatch or malformation (the caller quarantines the file).
fn decode_entry(text: &str) -> Option<PeVariant> {
    let (first, body) = text.split_once('\n')?;
    let sum = u64::from_str_radix(first.strip_prefix("sum ")?, 16).ok()?;
    if fnv1a(&[body]) != sum {
        return None;
    }
    decode_variant(body)
}

// ---------------------------------------------------------------------------
// value codec: encode
// ---------------------------------------------------------------------------

/// Escapes a string onto the rest of a line (newlines and backslashes).
fn esc_line(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unesc_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Escapes a string into a single whitespace-free token.
fn esc_tok(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    if out.is_empty() {
        "\\e".to_owned()
    } else {
        out
    }
}

fn unesc_tok(s: &str) -> String {
    if s == "\\e" {
        return String::new();
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn src_tok(src: DpSource) -> String {
    match src {
        DpSource::WordInput(k) => format!("w{k}"),
        DpSource::BitInput(k) => format!("b{k}"),
        DpSource::Node(k) => format!("n{k}"),
    }
}

fn src_from_tok(tok: &str) -> Option<DpSource> {
    let (head, rest) = tok.split_at(1);
    match head {
        "w" => rest.parse().ok().map(DpSource::WordInput),
        "b" => rest.parse().ok().map(DpSource::BitInput),
        "n" => rest.parse().ok().map(DpSource::Node),
        _ => None,
    }
}

fn write_config(out: &mut String, cfg: &DatapathConfig) {
    let _ = write!(out, "C {} {}", esc_tok(&cfg.name), cfg.node_cfg.len());
    for nc in &cfg.node_cfg {
        match nc {
            None => out.push_str(" -"),
            Some(nc) => {
                let _ = write!(out, " {} {}", op_to_token(nc.op), nc.port_sel.len());
                for s in &nc.port_sel {
                    let _ = write!(out, " {s}");
                }
            }
        }
    }
    for sel in [&cfg.word_out_sel, &cfg.bit_out_sel] {
        let _ = write!(out, " {}", sel.len());
        for s in sel {
            let _ = write!(out, " {}", src_tok(*s));
        }
    }
    for map in [&cfg.word_input_map, &cfg.bit_input_map] {
        let _ = write!(out, " {}", map.len());
        for m in map {
            let _ = write!(out, " {m}");
        }
    }
    let _ = write!(out, " {}", cfg.node_map.len());
    for (a, b) in &cfg.node_map {
        let _ = write!(out, " {a}:{b}");
    }
    out.push('\n');
}

fn write_datapath(out: &mut String, dp: &MergedDatapath) {
    let _ = writeln!(out, "dpname {}", esc_line(&dp.name));
    let _ = writeln!(
        out,
        "io {} {} {} {}",
        dp.word_inputs, dp.bit_inputs, dp.word_outputs, dp.bit_outputs
    );
    let _ = writeln!(out, "nodes {}", dp.nodes.len());
    for node in &dp.nodes {
        let _ = write!(out, "N {}", node.ops.len());
        for op in &node.ops {
            let _ = write!(out, " {}", op_to_token(*op));
        }
        let _ = write!(out, " {}", node.port_candidates.len());
        for port in &node.port_candidates {
            let _ = write!(out, " {}", port.len());
            for s in port {
                let _ = write!(out, " {}", src_tok(*s));
            }
        }
        out.push('\n');
    }
    let _ = writeln!(out, "configs {}", dp.configs.len());
    for cfg in &dp.configs {
        write_config(out, cfg);
    }
}

fn write_graph(out: &mut String, g: &Graph) {
    let text = to_text(g);
    let _ = writeln!(out, "g {}", text.lines().count());
    out.push_str(&text);
}

/// Serializes a variant to the cache's line-oriented text format.
pub fn encode_variant(v: &PeVariant) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{FORMAT}");
    let _ = writeln!(out, "name {}", esc_line(&v.spec.name));
    let _ = writeln!(out, "legacy {}", u8::from(v.spec.legacy_control));
    match &v.spec.pipeline {
        None => {
            let _ = writeln!(out, "pipeline -");
        }
        Some(p) => {
            let _ = write!(out, "pipeline {} {}", p.stages, p.stage_of_node.len());
            for s in &p.stage_of_node {
                let _ = write!(out, " {s}");
            }
            out.push('\n');
        }
    }
    write_datapath(&mut out, &v.spec.datapath);
    let _ = writeln!(out, "sources {}", v.sources.len());
    for g in &v.sources {
        write_graph(&mut out, g);
    }
    let _ = writeln!(out, "rules {}", v.rules.rules.len());
    for r in &v.rules.rules {
        let _ = write!(
            out,
            "rule {} {} {}",
            esc_tok(&r.name),
            r.ops_covered,
            r.payload_bindings.len()
        );
        for (nid, dp_node) in &r.payload_bindings {
            let _ = write!(out, " {}:{dp_node}", nid.0);
        }
        out.push('\n');
        write_graph(&mut out, &r.pattern);
        write_config(&mut out, &r.config);
    }
    let _ = write!(out, "missing {}", v.synthesis.missing.len());
    for m in &v.synthesis.missing {
        let _ = write!(out, " {}", esc_tok(m));
    }
    out.push('\n');
    let _ = writeln!(out, "rejected {}", v.synthesis.rejected);
    let _ = writeln!(out, "degradations {}", v.degradations.len());
    for d in &v.degradations {
        let _ = writeln!(
            out,
            "deg {} {} {}",
            d.stage.name(),
            d.kind.name(),
            esc_line(&d.detail)
        );
    }
    out
}

// ---------------------------------------------------------------------------
// value codec: decode (any malformation ⇒ None ⇒ cache miss)
// ---------------------------------------------------------------------------

struct Reader<'a> {
    lines: Vec<&'a str>,
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            lines: text.lines().collect(),
            at: 0,
        }
    }

    fn line(&mut self) -> Option<&'a str> {
        let l = self.lines.get(self.at).copied()?;
        self.at += 1;
        Some(l)
    }

    /// Reads a line of the form `<tag> <rest>` and returns `<rest>`.
    fn tagged(&mut self, tag: &str) -> Option<&'a str> {
        self.line()?.strip_prefix(tag)?.strip_prefix(' ')
    }

    /// Reads `<tag> <count>` followed by `count` raw lines, rejoined.
    fn block(&mut self, tag: &str) -> Option<String> {
        let n: usize = self.tagged(tag)?.trim().parse().ok()?;
        let mut s = String::new();
        for _ in 0..n {
            s.push_str(self.line()?);
            s.push('\n');
        }
        Some(s)
    }
}

fn read_config(line: &str) -> Option<DatapathConfig> {
    let mut toks = line.strip_prefix("C ")?.split_whitespace();
    let name = unesc_tok(toks.next()?);
    let n_nodes: usize = toks.next()?.parse().ok()?;
    let mut node_cfg = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let head = toks.next()?;
        if head == "-" {
            node_cfg.push(None);
            continue;
        }
        let op = op_from_token(head)?;
        let k: usize = toks.next()?.parse().ok()?;
        let mut port_sel = Vec::with_capacity(k);
        for _ in 0..k {
            port_sel.push(toks.next()?.parse().ok()?);
        }
        node_cfg.push(Some(NodeConfig { op, port_sel }));
    }
    let mut read_srcs = || -> Option<Vec<DpSource>> {
        let k: usize = toks.next()?.parse().ok()?;
        (0..k).map(|_| src_from_tok(toks.next()?)).collect()
    };
    let word_out_sel = read_srcs()?;
    let bit_out_sel = read_srcs()?;
    let mut read_u16s = || -> Option<Vec<u16>> {
        let k: usize = toks.next()?.parse().ok()?;
        (0..k).map(|_| toks.next()?.parse().ok()).collect()
    };
    let word_input_map = read_u16s()?;
    let bit_input_map = read_u16s()?;
    let k: usize = toks.next()?.parse().ok()?;
    let mut node_map = Vec::with_capacity(k);
    for _ in 0..k {
        let (a, b) = toks.next()?.split_once(':')?;
        node_map.push((a.parse().ok()?, b.parse().ok()?));
    }
    if toks.next().is_some() {
        return None;
    }
    Some(DatapathConfig {
        name,
        node_cfg,
        word_out_sel,
        bit_out_sel,
        word_input_map,
        bit_input_map,
        node_map,
    })
}

fn read_datapath(r: &mut Reader) -> Option<MergedDatapath> {
    let name = unesc_line(r.tagged("dpname")?);
    let mut io = r.tagged("io")?.split_whitespace();
    let word_inputs = io.next()?.parse().ok()?;
    let bit_inputs = io.next()?.parse().ok()?;
    let word_outputs = io.next()?.parse().ok()?;
    let bit_outputs = io.next()?.parse().ok()?;
    let n_nodes: usize = r.tagged("nodes")?.trim().parse().ok()?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let line = r.line()?;
        let mut toks = line.strip_prefix("N ")?.split_whitespace();
        let n_ops: usize = toks.next()?.parse().ok()?;
        let ops: Vec<_> = (0..n_ops)
            .map(|_| toks.next().and_then(op_from_token))
            .collect::<Option<_>>()?;
        let n_ports: usize = toks.next()?.parse().ok()?;
        let mut port_candidates = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            let k: usize = toks.next()?.parse().ok()?;
            let port: Vec<_> = (0..k)
                .map(|_| toks.next().and_then(src_from_tok))
                .collect::<Option<_>>()?;
            port_candidates.push(port);
        }
        if toks.next().is_some() {
            return None;
        }
        nodes.push(DpNode {
            ops,
            port_candidates,
        });
    }
    let n_cfg: usize = r.tagged("configs")?.trim().parse().ok()?;
    let mut configs = Vec::with_capacity(n_cfg);
    for _ in 0..n_cfg {
        configs.push(read_config(r.line()?)?);
    }
    Some(MergedDatapath {
        name,
        nodes,
        word_inputs,
        bit_inputs,
        word_outputs,
        bit_outputs,
        configs,
    })
}

fn read_graph(r: &mut Reader) -> Option<Graph> {
    let text = r.block("g")?;
    from_text(&text).ok()
}

/// Parses a variant from the cache text format; `None` on any
/// malformation (the caller treats it as a miss).
pub fn decode_variant(text: &str) -> Option<PeVariant> {
    let mut r = Reader::new(text);
    if r.line()? != FORMAT {
        return None;
    }
    let name = unesc_line(r.tagged("name")?);
    let legacy_control = match r.tagged("legacy")? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let pipe_line = r.tagged("pipeline")?;
    let pipeline = if pipe_line == "-" {
        None
    } else {
        let mut toks = pipe_line.split_whitespace();
        let stages: u32 = toks.next()?.parse().ok()?;
        let n: usize = toks.next()?.parse().ok()?;
        let stage_of_node: Vec<u32> = (0..n)
            .map(|_| toks.next().and_then(|t| t.parse().ok()))
            .collect::<Option<_>>()?;
        Some(PePipeline {
            stage_of_node,
            stages,
        })
    };
    let datapath = read_datapath(&mut r)?;
    let n_sources: usize = r.tagged("sources")?.trim().parse().ok()?;
    let sources: Vec<Graph> = (0..n_sources)
        .map(|_| read_graph(&mut r))
        .collect::<Option<_>>()?;
    let n_rules: usize = r.tagged("rules")?.trim().parse().ok()?;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let mut toks = r.line()?.strip_prefix("rule ")?.split_whitespace();
        let rule_name = unesc_tok(toks.next()?);
        let ops_covered: usize = toks.next()?.parse().ok()?;
        let n_bind: usize = toks.next()?.parse().ok()?;
        let mut payload_bindings = Vec::with_capacity(n_bind);
        for _ in 0..n_bind {
            let (a, b) = toks.next()?.split_once(':')?;
            payload_bindings.push((NodeId(a.parse().ok()?), b.parse().ok()?));
        }
        let pattern = read_graph(&mut r)?;
        let config = read_config(r.line()?)?;
        rules.push(RewriteRule {
            name: rule_name,
            pattern,
            config,
            payload_bindings,
            ops_covered,
        });
    }
    let mut miss_toks = r.tagged("missing")?.split_whitespace();
    let n_missing: usize = miss_toks.next()?.parse().ok()?;
    let missing: Vec<String> = (0..n_missing)
        .map(|_| miss_toks.next().map(unesc_tok))
        .collect::<Option<_>>()?;
    let rejected: usize = r.tagged("rejected")?.trim().parse().ok()?;
    let n_deg: usize = r.tagged("degradations")?.trim().parse().ok()?;
    let mut degradations = Vec::with_capacity(n_deg);
    for _ in 0..n_deg {
        let rest = r.tagged("deg")?;
        let (stage_s, rest) = rest.split_once(' ')?;
        let (kind_s, detail) = rest.split_once(' ')?;
        degradations.push(Degradation::new(
            Stage::from_name(stage_s)?,
            DegradationKind::from_name(kind_s)?,
            unesc_line(detail),
        ));
    }
    if r.line().is_some() {
        return None;
    }
    // reject spec-level inconsistencies a bit-flip could smuggle in
    datapath.validate().ok()?;
    Some(PeVariant {
        spec: PeSpec {
            name,
            datapath,
            legacy_control,
            pipeline,
        },
        sources,
        rules: RuleSet { rules },
        synthesis: SynthesisReport { missing, rejected },
        degradations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::{baseline_variant, specialized_variant};
    use apex_apps::gaussian;

    fn spec_variant() -> PeVariant {
        let app = gaussian();
        specialized_variant(
            "pe_cache_test",
            &[&app],
            &[&app],
            &MinerConfig::default(),
            &SubgraphSelection::default(),
            &MergeOptions::default(),
            &TechModel::default(),
            &BTreeSet::new(),
        )
        .unwrap()
    }

    fn assert_variants_equal(a: &PeVariant, b: &PeVariant) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.synthesis, b.synthesis);
        assert_eq!(a.degradations, b.degradations);
    }

    #[test]
    fn codec_round_trips_a_specialized_variant() {
        let v = spec_variant();
        let decoded = decode_variant(&encode_variant(&v)).expect("decodes");
        assert_variants_equal(&v, &decoded);
        assert_eq!(datapath_hash(&v), datapath_hash(&decoded));
    }

    #[test]
    fn codec_round_trips_the_baseline() {
        let app = gaussian();
        let v = baseline_variant(&[&app]).unwrap();
        let decoded = decode_variant(&encode_variant(&v)).expect("decodes");
        assert_variants_equal(&v, &decoded);
    }

    #[test]
    fn corrupt_entries_decode_as_none() {
        let v = spec_variant();
        let good = encode_variant(&v);
        assert!(decode_variant("").is_none());
        assert!(decode_variant("apex-variant v999\n").is_none());
        // truncation at every tenth line must never panic, only miss
        let lines: Vec<&str> = good.lines().collect();
        for cut in (0..lines.len()).step_by(10) {
            let partial = lines[..cut].join("\n");
            assert!(decode_variant(&partial).is_none(), "cut at {cut}");
        }
        // flip a count field
        let bad = good.replacen("rules ", "rules 9", 1);
        assert!(decode_variant(&bad).is_none());

        // the entry envelope catches corruption the decoder might accept:
        // a flipped payload byte fails the checksum line
        let entry = encode_entry(&v);
        assert!(decode_entry(&entry).is_some());
        let flipped = entry.replacen("name ", "nbme ", 1);
        assert!(decode_entry(&flipped).is_none());
        assert!(decode_entry("no checksum line").is_none());

        // a corrupt on-disk entry is quarantined to <key>.corrupt, counted,
        // and reported as a miss — never silently rebuilt over
        let dir = std::env::temp_dir().join(format!("apex-cache-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = VariantCache::at(&dir);
        let key = 0x1234_5678_9ABC_DEF0u64;
        cache.store(key, &v);
        let path = dir.join(format!("{key:016x}.var"));
        std::fs::write(&path, flipped).unwrap();
        assert!(cache.load(key).is_none());
        assert_eq!(cache.quarantined(), 1);
        assert!(!path.exists(), "corrupt entry left in place");
        assert!(
            dir.join(format!("{key:016x}.corrupt")).exists(),
            "quarantine file missing"
        );
        // the quarantined key rebuilds: a store+load round trip works again
        cache.store(key, &v);
        assert!(cache.load(key).is_some());
        assert_eq!(cache.quarantined(), 1, "clean reload must not re-quarantine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_store_load_hit_counters() {
        let dir = std::env::temp_dir().join(format!("apex-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = VariantCache::at(&dir);
        let v = spec_variant();
        let key = 0xABCD_EF01_2345_6789u64;
        assert!(cache.load(key).is_none());
        assert_eq!(cache.misses(), 1);
        cache.store(key, &v);
        let loaded = cache.load(key).expect("hit after store");
        assert_eq!(cache.hits(), 1);
        assert_variants_equal(&v, &loaded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_or_build_builds_once() {
        let dir = std::env::temp_dir().join(format!("apex-cache-gob-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = VariantCache::at(&dir);
        let app = gaussian();
        let key = variant_cache_key(
            "baseline",
            "pe_base",
            &[],
            &[&app],
            None,
            None,
            None,
            None,
            &BTreeSet::new(),
        );
        let mut builds = 0;
        for _ in 0..3 {
            let v = cache
                .get_or_build(key, || {
                    builds += 1;
                    baseline_variant(&[&app])
                })
                .unwrap();
            assert_eq!(v.spec.name, "pe_base");
        }
        assert_eq!(builds, 1, "two warm runs must not rebuild");
        assert_eq!(cache.hits(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_is_pass_through() {
        let cache = VariantCache::disabled();
        let v = spec_variant();
        cache.store(7, &v);
        assert!(cache.load(7).is_none());
        assert!(!cache.is_enabled());
    }

    #[test]
    fn key_separates_apps_and_configs() {
        let g = gaussian();
        let h = apex_apps::harris();
        let base = variant_cache_key(
            "specialized",
            "pe",
            &[&g],
            &[&g],
            Some(&MinerConfig::default()),
            Some(&SubgraphSelection::default()),
            Some(&MergeOptions::default()),
            Some(&TechModel::default()),
            &BTreeSet::new(),
        );
        let other_app = variant_cache_key(
            "specialized",
            "pe",
            &[&h],
            &[&h],
            Some(&MinerConfig::default()),
            Some(&SubgraphSelection::default()),
            Some(&MergeOptions::default()),
            Some(&TechModel::default()),
            &BTreeSet::new(),
        );
        let other_sel = variant_cache_key(
            "specialized",
            "pe",
            &[&g],
            &[&g],
            Some(&MinerConfig::default()),
            Some(&SubgraphSelection {
                per_app: 3,
                ..SubgraphSelection::default()
            }),
            Some(&MergeOptions::default()),
            Some(&TechModel::default()),
            &BTreeSet::new(),
        );
        assert_ne!(base, other_app);
        assert_ne!(base, other_sel);
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["", "plain", "with space", "tab\tand\nnewline", "back\\slash"] {
            assert_eq!(unesc_tok(&esc_tok(s)), s);
            if !s.contains('\t') {
                assert_eq!(unesc_line(&esc_line(s)), s);
            }
        }
    }
}
