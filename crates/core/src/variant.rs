//! PE variant construction — the heart of APEX's design-space exploration
//! (paper Sections 3 and 5).
//!
//! Every variant starts from the baseline PE restricted to the operations
//! the target applications actually use ("PE 1"); increasingly specialized
//! variants merge frequent subgraphs into it in decreasing order of their
//! maximal-independent-set size ("PE 2", "PE 3", …, "PE Spec"), and
//! domain variants ("PE IP", "PE ML") merge subgraphs from every
//! application of the domain.

use apex_apps::Application;
use apex_fault::{ApexError, Degradation, DegradationKind, Provenance, Stage};
use apex_ir::{Graph, Op, OpKind};
use apex_merge::{merge_graph, MergeOptions};
use apex_mining::{mine, MineError, MinedSubgraph, MinerConfig};
use apex_par::JobPanic;
use apex_pe::{baseline_pe, baseline_pe_with_ops, PeSpec};
use apex_rewrite::{try_standard_ruleset, RuleSet, SynthesisReport};
use apex_tech::TechModel;
use std::collections::BTreeSet;

/// A PE design point: specification, the subgraphs merged into it, and the
/// rewrite rules for mapping the evaluation applications.
#[derive(Debug, Clone)]
pub struct PeVariant {
    /// The PE specification (unpipelined; the evaluator pipelines a copy).
    pub spec: PeSpec,
    /// Datapath graphs of the merged subgraphs (aligned with
    /// `spec.datapath.configs`).
    pub sources: Vec<Graph>,
    /// Verified rewrite rules for the evaluation applications.
    pub rules: RuleSet,
    /// Rule-synthesis report (missing ops ⇒ some app is unmappable).
    pub synthesis: SynthesisReport,
    /// Degradations accepted while constructing this variant (mining
    /// truncated by budget, merges skipped after failures, …).
    pub degradations: Vec<Degradation>,
}

/// Operation kinds an application suite requires of a PE, with
/// hardware-class completion: a comparator executes every compare flavour
/// and a logic unit every bitwise op, so requesting one member of those
/// classes provides the whole class (they share the same silicon).
pub fn required_op_kinds(apps: &[&Application]) -> BTreeSet<OpKind> {
    let mut kinds: BTreeSet<OpKind> = BTreeSet::new();
    for app in apps {
        for (_, node) in app.graph.iter() {
            let op = node.op();
            if op.is_compute() {
                kinds.insert(op.kind());
            }
        }
    }
    kinds.insert(OpKind::Const);
    const CMP: [OpKind; 10] = [
        OpKind::Eq,
        OpKind::Neq,
        OpKind::Slt,
        OpKind::Sle,
        OpKind::Sgt,
        OpKind::Sge,
        OpKind::Ult,
        OpKind::Ule,
        OpKind::Ugt,
        OpKind::Uge,
    ];
    if CMP.iter().any(|k| kinds.contains(k)) {
        kinds.extend(CMP);
    }
    const LOGIC: [OpKind; 4] = [OpKind::And, OpKind::Or, OpKind::Xor, OpKind::Not];
    if LOGIC.iter().any(|k| kinds.contains(k)) {
        kinds.extend(LOGIC);
    }
    const MINMAX: [OpKind; 4] = [OpKind::Smin, OpKind::Smax, OpKind::Umin, OpKind::Umax];
    if MINMAX.iter().any(|k| kinds.contains(k)) {
        kinds.extend(MINMAX);
    }
    // bit ops execute on the 3-input LUT
    const BIT: [OpKind; 5] = [
        OpKind::BitAnd,
        OpKind::BitOr,
        OpKind::BitXor,
        OpKind::BitNot,
        OpKind::BitMux,
    ];
    if BIT.iter().any(|k| kinds.contains(k)) {
        for k in BIT {
            kinds.remove(&k);
        }
        kinds.insert(OpKind::Lut);
        kinds.insert(OpKind::BitConst);
    }
    kinds
}

/// The general-purpose baseline PE with rules for the given applications
/// (the paper's comparison baseline, Fig. 1).
///
/// # Errors
/// Propagates rule-synthesis failures.
pub fn baseline_variant(eval_apps: &[&Application]) -> Result<PeVariant, ApexError> {
    let key = crate::cache::variant_cache_key(
        "baseline",
        "pe_base",
        &[],
        eval_apps,
        None,
        None,
        None,
        None,
        &BTreeSet::new(),
    );
    cached(key, || {
        let spec = baseline_pe();
        finish(spec, Vec::new(), eval_apps, Vec::new())
    })
}

/// Memoizes a variant build through the process-wide [`VariantCache`]
/// (content-addressed by `key`). Under the `fault-injection` feature the
/// cache is bypassed entirely: serving a stored variant would mask armed
/// failpoints, and fault tests exist to exercise the live flow.
///
/// [`VariantCache`]: crate::cache::VariantCache
fn cached(
    key: u64,
    build: impl FnOnce() -> Result<PeVariant, ApexError>,
) -> Result<PeVariant, ApexError> {
    #[cfg(feature = "fault-injection")]
    {
        let _ = key;
        build()
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let tenant = crate::cache::thread_tenant();
        crate::cache::VariantCache::shared().get_or_build_in(tenant.as_deref(), key, build)
    }
}

/// "PE 1": the baseline restricted to the operations the applications
/// need, APEX-generated (no legacy control overhead).
///
/// # Errors
/// Propagates rule-synthesis failures.
pub fn pe1_variant(
    name: &str,
    analysis_apps: &[&Application],
    eval_apps: &[&Application],
) -> Result<PeVariant, ApexError> {
    let key = crate::cache::variant_cache_key(
        "pe1",
        name,
        analysis_apps,
        eval_apps,
        None,
        None,
        None,
        None,
        &BTreeSet::new(),
    );
    cached(key, || {
        let kinds = required_op_kinds(analysis_apps);
        let spec = baseline_pe_with_ops(name, &kinds);
        finish(spec, Vec::new(), eval_apps, Vec::new())
    })
}

/// How candidate subgraphs are ranked before taking the top `per_app`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionRank {
    /// Utilizable-MIS × (fused ops − 1): the PEs actually saved. Our
    /// refinement of the paper's ranking.
    #[default]
    SavingsPotential,
    /// Raw MIS size, the paper's first-cut ranking. Over-weights tiny
    /// pairs — useful to reproduce the over-merging effect of Fig. 12.
    MisSize,
}

/// Selection policy for subgraphs to merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubgraphSelection {
    /// Subgraphs taken per analysis application (in rank order).
    pub per_app: usize,
    /// Minimum number of non-constant operations a subgraph must fuse
    /// (constant-only pairs are already covered by constant folding).
    pub min_fused_ops: usize,
    /// Minimum MIS size to consider.
    pub min_mis: usize,
    /// Ranking used to order the candidates.
    pub rank: SelectionRank,
    /// Maximum routed data inputs a subgraph PE may need. Every PE input
    /// costs a connection box in each tile (the paper's I/O design-space
    /// axis, Fig. 2), so input-hungry subgraphs are excluded; constants
    /// fold into registers and do not count (Fig. 2c).
    pub max_data_inputs: usize,
}

impl Default for SubgraphSelection {
    fn default() -> Self {
        SubgraphSelection {
            per_app: 2,
            min_fused_ops: 2,
            min_mis: 4,
            rank: SelectionRank::SavingsPotential,
            max_data_inputs: 4,
        }
    }
}

/// Mines an application and returns its interesting subgraphs ranked by
/// *PE savings potential*: the number of non-overlapping, fully
/// utilizable occurrences times the operations each one fuses beyond the
/// first. Plain MIS order (the paper's first-cut ranking) over-weights
/// tiny pairs and subgraphs whose intermediates the application still
/// needs elsewhere.
///
/// The returned [`Provenance`] says whether the mining search completed
/// or was cut short by the miner's [`apex_fault::StageBudget`].
///
/// # Errors
/// Propagates mining failures.
pub fn select_subgraphs(
    app: &Application,
    miner: &MinerConfig,
    selection: &SubgraphSelection,
) -> Result<(Vec<MinedSubgraph>, Provenance), MineError> {
    let mined = mine(&app.graph, miner)?;
    let provenance = mined.provenance;
    let mut scored: Vec<(usize, MinedSubgraph)> = mined
        .subgraphs
        .into_iter()
        .filter_map(|m| {
            let fused = m
                .pattern
                .labels()
                .iter()
                .filter(|l| !matches!(l, OpKind::Const | OpKind::BitConst))
                .count();
            if fused < selection.min_fused_ops {
                return None;
            }
            let materialized = materialize_with_consts(&app.graph, &m);
            let data_inputs = materialized
                .node_ids()
                .filter(|&i| materialized.op(i) == Op::Input)
                .count();
            if data_inputs > selection.max_data_inputs {
                return None;
            }
            let umis = m.utilizable_mis(&app.graph);
            if umis < selection.min_mis {
                return None;
            }
            let score = match selection.rank {
                SelectionRank::SavingsPotential => umis * (fused - 1),
                SelectionRank::MisSize => m.mis_size,
            };
            Some((score, m))
        })
        .collect();
    scored.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then_with(|| a.1.pattern.canonical_code().cmp(&b.1.pattern.canonical_code()))
    });
    Ok((
        scored
            .into_iter()
            .take(selection.per_app)
            .map(|(_, m)| m)
            .collect(),
        provenance,
    ))
}

/// Builds a specialized variant: PE 1 for the analysis applications, plus
/// the selected frequent subgraphs merged in MIS order.
///
/// `extra_kinds` force-in additional operation kinds (e.g. keeping the
/// bit-operation LUT in a domain PE so unseen applications still map).
///
/// Mining and merge failures degrade rather than abort: a failed (or
/// panicking — the job pool catches worker panics) mining pass contributes
/// no subgraphs, a failed or budget-limited merge keeps
/// the previous datapath (greedy incumbent, then effectively PE 1), and
/// every such event is recorded in [`PeVariant::degradations`].
///
/// # Errors
/// Propagates rule-synthesis failures (the rules are indispensable —
/// without them nothing maps).
#[allow(clippy::too_many_arguments)]
pub fn specialized_variant(
    name: &str,
    analysis_apps: &[&Application],
    eval_apps: &[&Application],
    miner: &MinerConfig,
    selection: &SubgraphSelection,
    merge_opts: &MergeOptions,
    tech: &TechModel,
    extra_kinds: &BTreeSet<OpKind>,
) -> Result<PeVariant, ApexError> {
    let key = crate::cache::variant_cache_key(
        "specialized",
        name,
        analysis_apps,
        eval_apps,
        Some(miner),
        Some(selection),
        Some(merge_opts),
        Some(tech),
        extra_kinds,
    );
    cached(key, || {
        build_specialized_variant(
            name,
            analysis_apps,
            eval_apps,
            miner,
            selection,
            merge_opts,
            tech,
            extra_kinds,
        )
    })
}

/// The uncached body of [`specialized_variant`].
#[allow(clippy::too_many_arguments)]
fn build_specialized_variant(
    name: &str,
    analysis_apps: &[&Application],
    eval_apps: &[&Application],
    miner: &MinerConfig,
    selection: &SubgraphSelection,
    merge_opts: &MergeOptions,
    tech: &TechModel,
    extra_kinds: &BTreeSet<OpKind>,
) -> Result<PeVariant, ApexError> {
    let mut kinds = required_op_kinds(analysis_apps);
    kinds.extend(extra_kinds.iter().copied());
    let base = baseline_pe_with_ops(name, &kinds);
    let mut dp = base.datapath;
    let mut degradations: Vec<Degradation> = Vec::new();

    // collect candidate subgraphs across all analysis apps, dedup by the
    // canonical code of the *materialized* datapath (two apps can mine the
    // same op pattern yet fold different constants or share inputs
    // differently — those are different PE rules), order by MIS size
    // mining is independent per application: fan out over the bounded pool
    let per_app: Vec<Result<Result<(Vec<MinedSubgraph>, Provenance), MineError>, JobPanic>> =
        apex_par::par_map(apex_par::default_jobs(), analysis_apps, |_, app| {
            #[cfg(feature = "fault-injection")]
            {
                if apex_fault::failpoints::should_fire("core::mine_panic") {
                    panic!("injected panic at core::mine_panic");
                }
            }
            select_subgraphs(app, miner, selection)
        });
    let mut chosen: Vec<(String, Graph, usize)> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (app, mined) in analysis_apps.iter().zip(per_app) {
        let mined = match mined {
            Ok(Ok((subgraphs, provenance))) => {
                if let Some(d) = Degradation::from_provenance(Stage::Mine, provenance) {
                    degradations.push(d);
                }
                #[cfg(debug_assertions)]
                crate::dse::debug_verify(
                    "mine",
                    &apex_verify::verify_mined(&app.graph, &subgraphs),
                );
                subgraphs
            }
            Ok(Err(e)) => {
                degradations.push(Degradation::new(
                    Stage::Mine,
                    DegradationKind::Skipped,
                    format!("mining {} failed ({e}); no subgraphs from this app", app.info.name),
                ));
                Vec::new()
            }
            Err(p) => {
                // a panicking miner is funneled into the error hierarchy
                // (payload on the cause chain) and degrades like any other
                // per-app mining failure: no subgraphs from this app
                let err = p.into_apex(Stage::Mine);
                degradations.push(Degradation::new(
                    Stage::Mine,
                    DegradationKind::Skipped,
                    format!(
                        "mining {} panicked ({}); no subgraphs from this app",
                        app.info.name,
                        err.render_chain()
                    ),
                ));
                Vec::new()
            }
        };
        for (k, m) in mined.into_iter().enumerate() {
            let mut g = materialize_with_consts(&app.graph, &m);
            let (mat_pattern, _) =
                apex_mining::Pattern::from_occurrence(&g, &g.compute_nodes());
            if !seen.insert(mat_pattern.canonical_code()) {
                continue;
            }
            g.set_name(format!("{}_{}{}", app.info.name, "sg", k));
            chosen.push((app.info.name.clone(), g, m.mis_size));
        }
    }
    chosen.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.1.name().cmp(b.1.name())));

    let mut sources = Vec::new();
    for (_, g, _) in chosen {
        match merge_graph(&dp, &g, tech, merge_opts) {
            Ok((next, report)) => {
                if let Some(d) = Degradation::from_provenance(Stage::Merge, report.provenance) {
                    degradations.push(d);
                }
                dp = next;
                sources.push(g);
            }
            Err(e) => {
                // greedy-incumbent/baseline fallback: keep the datapath as
                // merged so far (with no merges at all it is exactly PE 1)
                degradations.push(Degradation::new(
                    Stage::Merge,
                    DegradationKind::Fallback,
                    format!("merging {} failed ({e}); keeping previous datapath", g.name()),
                ));
            }
        }
    }
    dp.name = name.to_owned();
    let spec = PeSpec::new(name, dp, false);
    finish(spec, sources, eval_apps, degradations)
}

/// Builds the ladder of increasingly specialized variants for one
/// application (the paper's PE 1, PE 2, …, Fig. 11): variant `k` merges
/// the top `k` subgraphs.
pub fn specialization_ladder(
    app: &Application,
    steps: usize,
    miner: &MinerConfig,
    merge_opts: &MergeOptions,
    tech: &TechModel,
) -> Result<Vec<PeVariant>, ApexError> {
    let mut out = Vec::new();
    for k in 0..=steps {
        let selection = SubgraphSelection {
            per_app: k,
            ..SubgraphSelection::default()
        };
        let name = format!("pe{}_{}", k + 1, app.info.name);
        let v = specialized_variant(
            &name,
            &[app],
            &[app],
            miner,
            &selection,
            merge_opts,
            tech,
            &BTreeSet::new(),
        )?;
        out.push(v);
    }
    Ok(out)
}

/// Materializes a mined subgraph as a datapath from its representative
/// occurrence: the constant producers it folds come along (a pattern that
/// leaves kernel weights outside would force standalone constant PEs at
/// mapping time), and values feeding several nodes arrive on one shared
/// input port (keeping the PE's connection-box count down, Fig. 2).
pub(crate) fn materialize_with_consts(graph: &Graph, m: &MinedSubgraph) -> Graph {
    let mut nodes: BTreeSet<apex_ir::NodeId> = m.representative.iter().copied().collect();
    for &n in &m.representative {
        for &src in graph.node(n).inputs() {
            if matches!(graph.op(src), Op::Const(_) | Op::BitConst(_)) {
                nodes.insert(src);
            }
        }
    }
    let set: Vec<apex_ir::NodeId> = nodes.into_iter().collect();
    let (g, _) = graph.extract_subgraph(&set, "sg");
    g
}

/// Builds "PE Spec" for an application using the paper's stopping rule:
/// keep merging subgraphs (in rank order) while the *CGRA-level* cost
/// still improves; stop at "the most specialized PE possible without
/// increasing the area or energy of the application running on the CGRA"
/// (Section 5). CGRA-level matters: deeper merging grows each PE but
/// frees tiles, switch boxes, and connection boxes.
pub fn most_specialized_variant(
    app: &Application,
    miner: &MinerConfig,
    merge_opts: &MergeOptions,
    tech: &TechModel,
    max_steps: usize,
) -> Result<PeVariant, ApexError> {
    let mut options = crate::evaluate::EvalOptions::default();
    options.place.moves = 4_000;
    let mut best: Option<(PeVariant, f64, f64)> = None;
    for k in 0..=max_steps {
        let v = specialized_variant(
            &format!("pe_spec_{}", app.info.name),
            &[app],
            &[app],
            miner,
            &SubgraphSelection {
                per_app: k,
                ..SubgraphSelection::default()
            },
            merge_opts,
            tech,
            &BTreeSet::new(),
        )?;
        let eval = match crate::evaluate::evaluate_app(&v, app, tech, &options) {
            Ok(eval) => eval,
            // deeper variants may stop evaluating (e.g. over-merged PEs no
            // longer fit the fabric) — keep the best evaluated one, but a
            // failure on the very first step has nothing to fall back to
            Err(e) if best.is_none() => return Err(e.into()),
            Err(_) => break,
        };
        let (area, energy) = (eval.area.total(), eval.energy_per_cycle.total());
        match &best {
            None => best = Some((v, area, energy)),
            Some((_, ba, be)) => {
                // tolerate sub-percent noise from placement
                if area <= ba * 1.005 && energy <= be * 1.005 {
                    best = Some((v, area.min(*ba), energy.min(*be)));
                } else {
                    break; // more merging starts costing area/energy
                }
            }
        }
    }
    match best {
        Some((v, _, _)) => Ok(v),
        None => Err(ApexError::new(
            Stage::Merge,
            "specialization search produced no evaluable variant",
        )),
    }
}

fn finish(
    spec: PeSpec,
    sources: Vec<Graph>,
    eval_apps: &[&Application],
    degradations: Vec<Degradation>,
) -> Result<PeVariant, ApexError> {
    let graphs: Vec<&Graph> = eval_apps.iter().map(|a| &a.graph).collect();
    let (rules, synthesis) = try_standard_ruleset(&spec.datapath, &sources, &graphs)?;
    #[cfg(debug_assertions)]
    {
        // cheap static passes at the variant boundary; the expensive
        // per-rule equivalence battery stays in `apex verify` / synthesis
        crate::dse::debug_verify(
            "merge",
            &apex_verify::verify_datapath_with(&spec.datapath, &sources, 8),
        );
        crate::dse::debug_verify(
            "rewrite",
            &apex_verify::verify_ruleset(&spec.datapath, &rules.rules, 0),
        );
        crate::dse::debug_verify("pe", &apex_verify::verify_pe(&spec));
    }
    Ok(PeVariant {
        spec,
        sources,
        rules,
        synthesis,
        degradations,
    })
}

/// Checks a variant can express everything its applications need.
pub fn variant_is_complete(v: &PeVariant) -> bool {
    v.synthesis.missing.is_empty()
}

/// Convenience: the set of ops an application graph uses, as concrete ops.
pub fn ops_used(graph: &Graph) -> BTreeSet<Op> {
    graph
        .iter()
        .filter(|(_, n)| n.op().is_compute())
        .map(|(_, n)| n.op())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_apps::{camera_pipeline, gaussian, ip_apps};

    #[test]
    fn required_kinds_complete_comparator_class() {
        let cam = camera_pipeline();
        let kinds = required_op_kinds(&[&cam]);
        // camera uses sgt; class completion brings in ult etc.
        assert!(kinds.contains(&OpKind::Sgt));
        assert!(kinds.contains(&OpKind::Ult));
        // but never left shift or word bitwise logic (Section 5.1)
        assert!(!kinds.contains(&OpKind::Shl));
        assert!(!kinds.contains(&OpKind::And));
    }

    #[test]
    fn pe1_is_smaller_than_baseline_and_complete() {
        let tech = TechModel::default();
        let cam = camera_pipeline();
        let base = baseline_variant(&[&cam]).unwrap();
        let pe1 = pe1_variant("pe1_camera", &[&cam], &[&cam]).unwrap();
        assert!(variant_is_complete(&base), "{:?}", base.synthesis.missing);
        assert!(variant_is_complete(&pe1), "{:?}", pe1.synthesis.missing);
        assert!(
            pe1.spec.area(&tech).total() < 0.7 * base.spec.area(&tech).total()
        );
    }

    #[test]
    fn specialized_variant_gains_complex_rules() {
        let tech = TechModel::default();
        let g = gaussian();
        let v = specialized_variant(
            "pe_spec_gaussian",
            &[&g],
            &[&g],
            &MinerConfig::default(),
            &SubgraphSelection::default(),
            &MergeOptions::default(),
            &tech,
            &BTreeSet::new(),
        )
        .unwrap();
        assert!(variant_is_complete(&v), "{:?}", v.synthesis.missing);
        assert!(!v.sources.is_empty(), "subgraphs were merged");
        // at least one rule covers 3+ ops
        assert!(v.rules.rules.iter().any(|r| r.ops_covered >= 3));
    }

    #[test]
    fn ladder_is_increasingly_specialized() {
        let tech = TechModel::default();
        let g = gaussian();
        let ladder = specialization_ladder(
            &g,
            2,
            &MinerConfig::default(),
            &MergeOptions::default(),
            &tech,
        )
        .unwrap();
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].sources.len(), 0, "PE 1 merges nothing");
        assert!(ladder[2].sources.len() >= ladder[1].sources.len());
        for v in &ladder {
            assert!(variant_is_complete(v), "{}: {:?}", v.spec.name, v.synthesis.missing);
        }
    }

    #[test]
    fn most_specialized_variant_never_loses_to_pe1() {
        let tech = TechModel::default();
        let g = gaussian();
        let spec = most_specialized_variant(
            &g,
            &MinerConfig::default(),
            &MergeOptions::default(),
            &tech,
            3,
        )
        .unwrap();
        let pe1 = pe1_variant("pe1_gauss", &[&g], &[&g]).unwrap();
        let mut options = crate::evaluate::EvalOptions::default();
        options.place.moves = 4_000;
        let spec_eval = crate::evaluate::evaluate_app(&spec, &g, &tech, &options).unwrap();
        let pe1_eval = crate::evaluate::evaluate_app(&pe1, &g, &tech, &options).unwrap();
        // the stopping rule guarantees CGRA-level monotone improvement
        assert!(
            spec_eval.area.total() <= pe1_eval.area.total() * 1.01,
            "{} vs {}",
            spec_eval.area.total(),
            pe1_eval.area.total()
        );
        assert!(
            spec_eval.energy_per_cycle.total() <= pe1_eval.energy_per_cycle.total() * 1.01
        );
        assert!(variant_is_complete(&spec));
    }

    #[test]
    fn ip_variant_builds_from_all_four_apps() {
        let tech = TechModel::default();
        let apps = ip_apps();
        let refs: Vec<&Application> = apps.iter().collect();
        let v = specialized_variant(
            "pe_ip",
            &refs,
            &refs,
            &MinerConfig::default(),
            &SubgraphSelection {
                per_app: 1,
                ..SubgraphSelection::default()
            },
            &MergeOptions::default(),
            &tech,
            &BTreeSet::new(),
        )
        .unwrap();
        assert!(variant_is_complete(&v), "{:?}", v.synthesis.missing);
        assert!(!v.sources.is_empty());
    }
}
