//! # apex-core — the APEX design-space-exploration framework
//!
//! The paper's primary contribution (Fig. 6): given an application or an
//! application domain, automatically
//!
//! 1. mine frequent computational subgraphs and rank them by
//!    maximal-independent-set size (`apex-mining`),
//! 2. merge them into candidate PE datapaths (`apex-merge`),
//! 3. generate the PE specification, hardware, and rewrite rules
//!    (`apex-pe`, `apex-rewrite`),
//! 4. map, pipeline, place, and route the applications onto the resulting
//!    CGRA (`apex-map`, `apex-pipeline`, `apex-cgra`), and
//! 5. report area, energy, and performance.
//!
//! [`PeVariant`] captures one PE design point; [`specialization_ladder`]
//! reproduces the paper's PE 1 → PE 4 sweep, [`specialized_variant`] the
//! domain PEs (PE IP, PE ML), and [`evaluate_app`] runs the full backend
//! to produce the numbers behind Section 5's tables and figures.
//!
//! # Examples
//!
//! ```no_run
//! use apex_apps::gaussian;
//! use apex_core::{baseline_variant, evaluate_app, EvalOptions};
//! use apex_tech::TechModel;
//!
//! let app = gaussian();
//! let tech = TechModel::default();
//! let baseline = baseline_variant(&[&app]).unwrap();
//! let result = evaluate_app(&baseline, &app, &tech, &EvalOptions::default()).unwrap();
//! println!("{} PEs, {:.0} µm², {:.1} pJ/cycle",
//!     result.pnr.pe_tiles, result.area.total(), result.energy_per_cycle.total());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod dse;
mod evaluate;
mod journal;
mod variant;

pub use cache::{
    datapath_hash, decode_variant, encode_variant, fnv1a, parse_byte_size, thread_tenant,
    variant_cache_key, with_thread_tenant, VariantCache,
};
pub use dse::{
    dse_evaluate_app, dse_evaluate_app_supervised, dse_evaluate_grid, dse_evaluate_suite,
    AppDseOutcome, DseOptions,
};
pub use journal::{
    run_checkpointed, JobReport, JournalRecord, JournalReplay, SweepJob, SweepJobResult,
    SweepJournal, SweepRun, JOURNAL_FORMAT,
};
pub use evaluate::{evaluate_app, post_mapping_estimate, AppEvaluation, EvalError, EvalOptions};
pub use variant::{
    baseline_variant, most_specialized_variant, ops_used, pe1_variant, required_op_kinds,
    select_subgraphs,
    specialization_ladder, specialized_variant, variant_is_complete, PeVariant,
    SelectionRank, SubgraphSelection,
};
