//! Full-flow evaluation of a PE variant on an application: map →
//! (optionally) pipeline → place → route → report, producing the numbers
//! behind every table and figure of the paper's Section 5.

use crate::variant::PeVariant;
use apex_apps::Application;
use apex_cgra::{
    achieved_period, cgra_area, cgra_energy_per_cycle, gather_stats, place_cached, route,
    verify_routed, AreaBreakdown, EnergyBreakdown, Fabric, FabricConfig, OutputTiming,
    PlaceError, PlaceOptions, PnrStats, RouteError, RouteOptions,
};
use apex_fault::{ApexError, Stage};
use apex_map::{map_application, MapError, MapStats};
use apex_pipeline::{
    auto_pipeline, pipeline_application, AppPipelineOptions, AppPipelineReport,
    PePipelineOptions, PipelineError,
};
use apex_tech::TechModel;

/// Evaluation options for the whole backend flow.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// Fabric parameters.
    pub fabric: FabricConfig,
    /// Placement parameters.
    pub place: PlaceOptions,
    /// Routing parameters.
    pub route: RouteOptions,
    /// PE pipelining parameters.
    pub pe_pipeline: PePipelineOptions,
    /// Application pipelining parameters.
    pub app_pipeline: AppPipelineOptions,
    /// Apply automated PE + application pipelining (Fig. 16's
    /// "post-pipelining").
    pub pipelined: bool,
}

/// Backend failures.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Instruction selection failed.
    Map(MapError),
    /// PE or application pipelining failed.
    Pipeline(PipelineError),
    /// Placement failed.
    Place(PlaceError),
    /// Routing failed.
    Route(RouteError),
    /// Post-route verification failed (a flow bug).
    Verify(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Map(e) => write!(f, "mapping: {e}"),
            EvalError::Pipeline(e) => write!(f, "pipelining: {e}"),
            EvalError::Place(e) => write!(f, "placement: {e}"),
            EvalError::Route(e) => write!(f, "routing: {e}"),
            EvalError::Verify(e) => write!(f, "verification: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<EvalError> for ApexError {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::Map(e) => e.into(),
            EvalError::Pipeline(e) => e.into(),
            EvalError::Place(e) => e.into(),
            EvalError::Route(e) => e.into(),
            EvalError::Verify(msg) => ApexError::new(Stage::Verify, msg),
        }
    }
}

/// Complete evaluation of one (variant, application) pair.
#[derive(Debug, Clone)]
pub struct AppEvaluation {
    /// Application name.
    pub app: String,
    /// Variant name.
    pub variant: String,
    /// Mapping statistics (`#PE` etc.).
    pub mapping: MapStats,
    /// Application pipelining report (zeros when `pipelined` is off).
    pub pipelining: AppPipelineReport,
    /// PE pipeline depth used (1 = combinational).
    pub pe_stages: u32,
    /// Post-place-and-route utilization (Table 3 row).
    pub pnr: PnrStats,
    /// CGRA area breakdown (Fig. 15).
    pub area: AreaBreakdown,
    /// CGRA energy per steady-state cycle (Fig. 15).
    pub energy_per_cycle: EnergyBreakdown,
    /// Achieved clock period, ns.
    pub period_ns: f64,
    /// Cycles to process one frame/layer.
    pub runtime_cycles: u64,
    /// PE-core-only totals (Fig. 11 / Fig. 14): area µm².
    pub pe_core_area: f64,
    /// PE-core-only energy per frame, nJ.
    pub pe_core_energy_nj: f64,
}

impl AppEvaluation {
    /// Runtime for one frame/layer, milliseconds.
    pub fn runtime_ms(&self) -> f64 {
        self.runtime_cycles as f64 * self.period_ns * 1e-6
    }

    /// Total CGRA energy for one frame/layer, microjoules.
    pub fn total_energy_uj(&self) -> f64 {
        self.energy_per_cycle.total() * self.runtime_cycles as f64 * 1e-6
    }

    /// The paper's Table 2 metric: frames per millisecond per mm².
    pub fn perf_per_mm2(&self) -> f64 {
        let frames_per_ms = 1.0 / self.runtime_ms();
        let mm2 = self.area.total() * 1e-6;
        frames_per_ms / mm2
    }

    /// Performance per mm² using PE area only (Table 2 uses total PE
    /// area).
    pub fn perf_per_pe_mm2(&self) -> f64 {
        let frames_per_ms = 1.0 / self.runtime_ms();
        let mm2 = self.pe_core_area * 1e-6;
        frames_per_ms / mm2
    }
}

/// Quick post-mapping estimate (no place-and-route): PE count, total PE
/// area (µm²), and PE energy per cycle (pJ) — the minutes-scale signal the
/// paper uses to decide which PEs to investigate further (Section 5.3.1).
///
/// # Errors
/// Propagates mapping failures.
pub fn post_mapping_estimate(
    variant: &PeVariant,
    app: &Application,
    tech: &TechModel,
) -> Result<(usize, f64, f64), EvalError> {
    let design =
        map_application(&app.graph, &variant.spec.datapath, &variant.rules).map_err(EvalError::Map)?;
    let pe_area = variant.spec.area(tech).total();
    let mut energy = 0.0;
    for node in &design.netlist.nodes {
        if let apex_map::NetKind::Pe(inst) = &node.kind {
            let rule = &variant.rules.rules[inst.rule as usize];
            energy += variant.spec.energy(&rule.instantiate(&inst.payloads), tech);
        }
    }
    Ok((
        design.stats.pe_count,
        design.stats.pe_count as f64 * pe_area,
        energy,
    ))
}

/// Runs the full backend for one variant and application.
///
/// # Errors
/// Propagates mapping, placement, routing, or verification failures.
pub fn evaluate_app(
    variant: &PeVariant,
    app: &Application,
    tech: &TechModel,
    options: &EvalOptions,
) -> Result<AppEvaluation, EvalError> {
    let design =
        map_application(&app.graph, &variant.spec.datapath, &variant.rules).map_err(EvalError::Map)?;

    // PE pipelining (paper Section 4.2)
    let mut spec = variant.spec.clone();
    let mut pipelining = AppPipelineReport {
        regs_inserted: 0,
        fifos_inserted: 0,
        latency: 0,
    };
    let mut netlist = design.netlist.clone();
    if options.pipelined {
        auto_pipeline(&mut spec, tech, &options.pe_pipeline).map_err(EvalError::Pipeline)?;
        // post-pipelining designs also register every PE output, so PEs
        // present at least one cycle of latency to the interconnect
        let lat = spec.latency() + 1;
        let (pipelined_netlist, report) = pipeline_application(
            &design.netlist,
            &variant.rules,
            lat,
            &options.app_pipeline,
        )
        .map_err(EvalError::Pipeline)?;
        netlist = pipelined_netlist;
        pipelining = report;
    }

    let fabric = Fabric::new(options.fabric.clone());
    let placement = place_cached(&netlist, &fabric, &options.place).map_err(EvalError::Place)?;
    let routing =
        route(&netlist, &variant.rules, &fabric, &placement, &options.route).map_err(EvalError::Route)?;
    verify_routed(&netlist, &variant.rules, &fabric, &placement, &routing)
        .map_err(EvalError::Verify)?;

    let pnr = gather_stats(&netlist, &fabric, &placement, &routing);
    let area = cgra_area(&netlist, &pnr, &spec, tech);
    let energy = cgra_energy_per_cycle(&netlist, &variant.rules, &pnr, &spec, tech);
    let timing = if options.pipelined {
        OutputTiming::Registered
    } else {
        OutputTiming::Combinational
    };
    let period = achieved_period(&routing, &spec, tech, timing).max(tech.clock_period_ns);
    let runtime_cycles = app.steady_state_cycles() + u64::from(pipelining.latency);

    let pe_core_area = pnr.pe_tiles as f64 * spec.area(tech).total();
    let pe_core_energy_nj = energy.pe * runtime_cycles as f64 * 1e-3;

    Ok(AppEvaluation {
        app: app.info.name.clone(),
        variant: variant.spec.name.clone(),
        mapping: design.stats,
        pipelining,
        pe_stages: spec.pipeline.as_ref().map_or(1, |p| p.stages),
        pnr,
        area,
        energy_per_cycle: energy,
        period_ns: period,
        runtime_cycles,
        pe_core_area,
        pe_core_energy_nj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::{baseline_variant, pe1_variant};
    use apex_apps::gaussian;

    #[test]
    fn gaussian_evaluates_on_baseline_end_to_end() {
        let app = gaussian();
        let tech = TechModel::default();
        let v = baseline_variant(&[&app]).unwrap();
        let eval = evaluate_app(&v, &app, &tech, &EvalOptions::default()).unwrap();
        assert!(eval.pnr.pe_tiles > 0);
        assert!(eval.area.total() > 0.0);
        assert!(eval.energy_per_cycle.total() > 0.0);
        assert!(eval.runtime_ms() > 0.0);
        assert!(eval.perf_per_mm2() > 0.0);
    }

    #[test]
    fn pe1_beats_baseline_on_area_and_energy() {
        let app = gaussian();
        let tech = TechModel::default();
        let base = evaluate_app(
            &baseline_variant(&[&app]).unwrap(),
            &app,
            &tech,
            &EvalOptions::default(),
        )
        .unwrap();
        let pe1 = evaluate_app(
            &pe1_variant("pe1_gauss", &[&app], &[&app]).unwrap(),
            &app,
            &tech,
            &EvalOptions::default(),
        )
        .unwrap();
        assert!(pe1.pe_core_area < base.pe_core_area);
        assert!(pe1.energy_per_cycle.pe < base.energy_per_cycle.pe);
    }

    #[test]
    fn pipelining_improves_clock_at_area_cost() {
        let app = gaussian();
        let tech = TechModel::default();
        let v = baseline_variant(&[&app]).unwrap();
        let flat = evaluate_app(&v, &app, &tech, &EvalOptions::default()).unwrap();
        let piped = evaluate_app(
            &v,
            &app,
            &tech,
            &EvalOptions {
                pipelined: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert!(piped.period_ns <= flat.period_ns);
        assert!(piped.runtime_cycles >= flat.runtime_cycles, "fill latency");
    }
}
