//! Resilient per-application DSE driver — the fault-tolerant layer the
//! unattended sweep runs on.
//!
//! [`crate::evaluate_app`] is the strict flow: any stage failure aborts
//! the (variant, application) pair. A multi-app design-space exploration
//! cannot afford that — one exhausted search budget or one unroutable
//! placement must not take the whole sweep down. [`dse_evaluate_app`]
//! therefore wraps every backend stage with the degradation policy from
//! the paper's unattended-operation requirement (§3):
//!
//! * **pipelining** failure falls back to the unpipelined design,
//! * **placement** failure retries with perturbed RNG seeds (bounded),
//! * **routing** failure retries once with relaxed PathFinder options,
//! * any stage that still fails is *skipped and reported*, never panics,
//!
//! and every concession is recorded as a [`Degradation`] in the returned
//! [`DseOutcome`], so reports can render partial sweeps honestly.

use crate::evaluate::{AppEvaluation, EvalOptions};
use crate::variant::PeVariant;
use apex_apps::Application;
use apex_cgra::{
    achieved_period, cgra_area, cgra_energy_per_cycle, gather_stats, place_cached, route,
    verify_routed, Fabric, OutputTiming,
};
use apex_fault::{ApexError, Degradation, DegradationKind, DseOutcome, Stage};
use apex_map::map_application;
use apex_par::{JobCtx, WatchdogOptions};
use apex_pipeline::{auto_pipeline, pipeline_application, AppPipelineReport};
use apex_tech::TechModel;
use std::time::Duration;

/// Options for the resilient DSE flow.
#[derive(Debug, Clone)]
pub struct DseOptions {
    /// The underlying backend options (fabric, placer, router, pipelining).
    pub eval: EvalOptions,
    /// Additional placement attempts with perturbed RNG seeds after a
    /// placement failure (`0` disables retrying).
    pub place_retries: u32,
    /// Retry a failed routing once with [`apex_cgra::RouteOptions::relaxed`].
    pub route_relax_retry: bool,
    /// Worker threads for [`dse_evaluate_suite`] / [`dse_evaluate_grid`]:
    /// `0` = auto ([`apex_par::default_jobs`]), `1` = serial (inline on
    /// the caller's thread). Results are in input order and bit-identical
    /// across any job count — the serial and parallel paths are the same
    /// code in `apex-par`.
    pub jobs: usize,
    /// Per-job wall-clock deadline for the watchdog supervising
    /// [`dse_evaluate_suite`] / [`dse_evaluate_grid`]: a job exceeding it
    /// is cancelled cooperatively (through its stage budgets), recorded
    /// with a [`Stage::Sweep`] timeout degradation, and the sweep
    /// continues. `None` disables the per-job deadline.
    pub job_deadline: Option<Duration>,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            eval: EvalOptions::default(),
            place_retries: 2,
            route_relax_retry: true,
            jobs: 0,
            job_deadline: None,
        }
    }
}

/// Watchdog policy for a supervised sweep: the per-job deadline from
/// `options`, plus the process-wide interrupt flag so Ctrl-C drains the
/// pool instead of abandoning it.
fn watchdog_options(options: &DseOptions) -> WatchdogOptions {
    WatchdogOptions {
        job_deadline: options.job_deadline,
        interrupt: Some(apex_fault::interrupt::flag()),
        poll: Duration::ZERO, // DEFAULT_TIME_SLICE
    }
}

fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        apex_par::default_jobs()
    } else {
        jobs
    }
}

/// Stage-boundary invariant check (the `apex-verify` passes), active in
/// debug builds only. A violation here is a pipeline bug, not an input
/// error or a capacity problem, so it aborts loudly instead of degrading;
/// release sweeps keep the cheap `verify_routed` check and the `apex
/// verify` CLI for on-demand full verification.
#[cfg(debug_assertions)]
pub(crate) fn debug_verify(stage: &str, violations: &[apex_verify::Violation]) {
    assert!(
        violations.is_empty(),
        "{stage} stage produced invariant violations:\n{}",
        apex_verify::render(violations)
    );
}

/// Outcome of one (variant, application) evaluation under the degradation
/// policy: the evaluation or the error that finally stopped the flow, plus
/// every degradation accepted along the way.
pub type AppDseOutcome = DseOutcome<Result<AppEvaluation, ApexError>>;

/// Evaluates one application on a variant, degrading instead of failing
/// wherever the policy allows. Never panics on malformed inputs or stage
/// faults; the error case of the inner `Result` is itself a reported
/// outcome.
pub fn dse_evaluate_app(
    variant: &PeVariant,
    app: &Application,
    tech: &TechModel,
    options: &DseOptions,
) -> AppDseOutcome {
    // concessions made while building the variant carry over to each app
    let mut degradations: Vec<Degradation> = variant.degradations.clone();

    let design = match map_application(&app.graph, &variant.spec.datapath, &variant.rules) {
        Ok(d) => d,
        Err(e) => {
            degradations.push(Degradation::new(
                Stage::Map,
                DegradationKind::Skipped,
                format!("mapping failed ({e}); application skipped"),
            ));
            return DseOutcome::degraded(Err(e.into()), degradations);
        }
    };
    #[cfg(debug_assertions)]
    debug_verify(
        "map",
        &apex_verify::verify_netlist(&design.netlist, &variant.rules),
    );

    // PE + application pipelining, falling back to the combinational design
    let mut spec = variant.spec.clone();
    let mut pipelining = AppPipelineReport {
        regs_inserted: 0,
        fifos_inserted: 0,
        latency: 0,
    };
    let mut netlist = design.netlist.clone();
    let mut pipelined = false;
    if options.eval.pipelined {
        let piped = auto_pipeline(&mut spec, tech, &options.eval.pe_pipeline).and_then(|_| {
            let lat = spec.latency() + 1;
            pipeline_application(&design.netlist, &variant.rules, lat, &options.eval.app_pipeline)
        });
        match piped {
            Ok((pipelined_netlist, report)) => {
                netlist = pipelined_netlist;
                pipelining = report;
                pipelined = true;
            }
            Err(e) => {
                spec = variant.spec.clone();
                degradations.push(Degradation::new(
                    Stage::Pipeline,
                    DegradationKind::Fallback,
                    format!("pipelining failed ({e}); evaluating the unpipelined design"),
                ));
            }
        }
    }
    #[cfg(debug_assertions)]
    {
        debug_verify("pipeline", &apex_verify::verify_pe(&spec));
        debug_verify(
            "pipeline",
            &apex_verify::verify_netlist(&netlist, &variant.rules),
        );
    }

    // placement with bounded perturbed-seed retries
    let fabric = Fabric::new(options.eval.fabric.clone());
    let mut placement = None;
    let mut place_err = None;
    for attempt in 0..=options.place_retries {
        let mut popts = options.eval.place.clone();
        popts.seed = popts
            .seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match place_cached(&netlist, &fabric, &popts) {
            Ok(p) => {
                if attempt > 0 {
                    degradations.push(Degradation::new(
                        Stage::Place,
                        DegradationKind::Retried,
                        format!("placement succeeded on retry {attempt} with a perturbed seed"),
                    ));
                }
                placement = Some(p);
                break;
            }
            Err(e) => place_err = Some(e),
        }
    }
    let placement = match placement {
        Some(p) => p,
        None => {
            let attempts = options.place_retries + 1;
            degradations.push(Degradation::new(
                Stage::Place,
                DegradationKind::Skipped,
                format!("placement failed after {attempts} seed(s); application skipped"),
            ));
            let e = match place_err {
                Some(e) => e.into(),
                None => ApexError::new(Stage::Place, "no placement attempt ran"),
            };
            return DseOutcome::degraded(Err(e), degradations);
        }
    };
    #[cfg(debug_assertions)]
    debug_verify(
        "place",
        &apex_verify::verify_placement(&netlist, &fabric, &placement),
    );

    // routing, once more with relaxed negotiation on congestion
    let routing = match route(&netlist, &variant.rules, &fabric, &placement, &options.eval.route)
    {
        Ok(r) => r,
        Err(first) if options.route_relax_retry => {
            degradations.push(Degradation::new(
                Stage::Route,
                DegradationKind::Retried,
                format!("routing failed ({first}); retrying with relaxed options"),
            ));
            let relaxed = options.eval.route.relaxed();
            match route(&netlist, &variant.rules, &fabric, &placement, &relaxed) {
                Ok(r) => r,
                Err(e) => {
                    degradations.push(Degradation::new(
                        Stage::Route,
                        DegradationKind::Skipped,
                        "routing failed even with relaxed options; application skipped",
                    ));
                    return DseOutcome::degraded(Err(e.into()), degradations);
                }
            }
        }
        Err(first) => {
            degradations.push(Degradation::new(
                Stage::Route,
                DegradationKind::Skipped,
                format!("routing failed ({first}); application skipped"),
            ));
            return DseOutcome::degraded(Err(first.into()), degradations);
        }
    };
    if let Some(d) = Degradation::from_provenance(Stage::Route, routing.provenance) {
        degradations.push(d);
    }

    #[cfg(debug_assertions)]
    debug_verify(
        "route",
        &apex_verify::verify_routing(&netlist, &variant.rules, &fabric, &placement, &routing),
    );
    if let Err(msg) = verify_routed(&netlist, &variant.rules, &fabric, &placement, &routing) {
        degradations.push(Degradation::new(
            Stage::Verify,
            DegradationKind::Skipped,
            "post-route verification failed; application skipped",
        ));
        return DseOutcome::degraded(Err(ApexError::new(Stage::Verify, msg)), degradations);
    }

    let pnr = gather_stats(&netlist, &fabric, &placement, &routing);
    let area = cgra_area(&netlist, &pnr, &spec, tech);
    let energy = cgra_energy_per_cycle(&netlist, &variant.rules, &pnr, &spec, tech);
    let timing = if pipelined {
        OutputTiming::Registered
    } else {
        OutputTiming::Combinational
    };
    let period = achieved_period(&routing, &spec, tech, timing).max(tech.clock_period_ns);
    let runtime_cycles = app.steady_state_cycles() + u64::from(pipelining.latency);
    let pe_core_area = pnr.pe_tiles as f64 * spec.area(tech).total();
    let pe_core_energy_nj = energy.pe * runtime_cycles as f64 * 1e-3;

    let eval = AppEvaluation {
        app: app.info.name.clone(),
        variant: variant.spec.name.clone(),
        mapping: design.stats,
        pipelining,
        pe_stages: spec.pipeline.as_ref().map_or(1, |p| p.stages),
        pnr,
        area,
        energy_per_cycle: energy,
        period_ns: period,
        runtime_cycles,
        pe_core_area,
        pe_core_energy_nj,
    };
    if degradations.is_empty() {
        DseOutcome::clean(Ok(eval))
    } else {
        DseOutcome::degraded(Ok(eval), degradations)
    }
}

/// [`dse_evaluate_app`] under watchdog supervision: the job's cancel flag
/// is fanned into the stage budgets (routing — the flow's open-ended
/// search) so a deadline overrun or sweep interrupt stops the evaluation
/// cooperatively, and a watchdog timeout is recorded as a
/// [`Stage::Sweep`] degradation on the outcome.
///
/// With a detached [`JobCtx`] (no watchdog firing) this runs exactly the
/// same code as [`dse_evaluate_app`], so supervision never perturbs a
/// healthy sweep's results.
pub fn dse_evaluate_app_supervised(
    variant: &PeVariant,
    app: &Application,
    tech: &TechModel,
    options: &DseOptions,
    ctx: &JobCtx,
) -> AppDseOutcome {
    #[cfg(feature = "fault-injection")]
    if apex_fault::failpoints::should_fire("sweep::job_timeout") {
        // simulated hung job: an un-budgeted infinite loop that only the
        // watchdog's cancel flag (or a sweep interrupt) can stop — this is
        // the no-hang guarantee's worst case
        while !ctx.cancelled() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let cause = if ctx.timed_out() {
            "watchdog deadline"
        } else {
            "sweep interrupt"
        };
        return DseOutcome::degraded(
            Err(ApexError::new(
                Stage::Sweep,
                format!("hung job cancelled by {cause}"),
            )),
            vec![Degradation::new(
                Stage::Sweep,
                DegradationKind::TimedOut,
                format!("injected hang cancelled by {cause}; application skipped"),
            )],
        );
    }

    let mut options = options.clone();
    options.eval.route.budget = options
        .eval
        .route
        .budget
        .clone()
        .with_cancel(std::sync::Arc::clone(&ctx.cancel));
    let mut outcome = dse_evaluate_app(variant, app, tech, &options);
    if ctx.timed_out() {
        outcome.degradations.push(Degradation::new(
            Stage::Sweep,
            DegradationKind::TimedOut,
            "job exceeded its watchdog deadline; result is the cancelled incumbent",
        ));
    }
    outcome
}

/// One reported outcome standing in for an evaluation whose variant never
/// built.
fn failed_variant_outcome(e: &ApexError) -> AppDseOutcome {
    DseOutcome::degraded(
        Err(ApexError::new(e.stage(), e.message())),
        vec![Degradation::new(
            e.stage(),
            DegradationKind::Skipped,
            format!("variant construction failed ({e}); application skipped"),
        )],
    )
}

/// One reported outcome standing in for an evaluation whose worker thread
/// panicked: the panic is funneled into the error hierarchy
/// ([`Stage::Sweep`], payload on the cause chain) instead of unwinding the
/// sweep.
fn panicked_outcome(p: apex_par::JobPanic, app: &Application) -> AppDseOutcome {
    let detail = format!(
        "evaluation worker panicked ({}); application {} skipped",
        p.payload, app.info.name
    );
    DseOutcome::degraded(
        Err(p.into_apex(Stage::Sweep)),
        vec![Degradation::new(Stage::Sweep, DegradationKind::Skipped, detail)],
    )
}

/// Evaluates a whole application suite on a variant that may itself have
/// failed to build: a failed variant becomes one reported (degraded)
/// outcome per application instead of aborting the sweep.
///
/// Runs on the bounded `apex-par` pool with `options.jobs` workers
/// (`0` = auto); outcomes come back in `apps` order and are bit-identical
/// to a serial run regardless of the job count. A panicking worker costs
/// only its own application's outcome (reported under [`Stage::Sweep`]).
pub fn dse_evaluate_suite(
    variant: &Result<PeVariant, ApexError>,
    apps: &[&Application],
    tech: &TechModel,
    options: &DseOptions,
) -> Vec<AppDseOutcome> {
    match variant {
        Ok(v) => {
            let jobs = effective_jobs(options.jobs);
            let watch = watchdog_options(options);
            apex_par::par_map_supervised(jobs, apps, &watch, |_, a, ctx| {
                dse_evaluate_app_supervised(v, a, tech, options, ctx)
            })
            .into_iter()
            .zip(apps)
            .map(|(r, app)| r.unwrap_or_else(|p| panicked_outcome(p, app)))
            .collect()
        }
        Err(e) => apps.iter().map(|_| failed_variant_outcome(e)).collect(),
    }
}

/// Evaluates a whole (variant × application) grid — the shape of every
/// sweep in the paper's evaluation (Fig. 11/15/16, Tables 2–3) — over the
/// bounded job pool, parallelizing across the *flattened* grid so a slow
/// variant cannot serialize the sweep. `out[v][a]` is variant `v` on
/// application `a`, in input order, bit-identical to nested serial loops.
pub fn dse_evaluate_grid(
    variants: &[Result<PeVariant, ApexError>],
    apps: &[&Application],
    tech: &TechModel,
    options: &DseOptions,
) -> Vec<Vec<AppDseOutcome>> {
    let pairs: Vec<(usize, usize)> = (0..variants.len())
        .flat_map(|v| (0..apps.len()).map(move |a| (v, a)))
        .collect();
    let jobs = effective_jobs(options.jobs);
    let watch = watchdog_options(options);
    let mut flat = apex_par::par_map_supervised(jobs, &pairs, &watch, |_, &(v, a), ctx| {
        match &variants[v] {
            Ok(variant) => dse_evaluate_app_supervised(variant, apps[a], tech, options, ctx),
            Err(e) => failed_variant_outcome(e),
        }
    })
    .into_iter();
    let mut out = Vec::with_capacity(variants.len());
    for _ in 0..variants.len() {
        let mut row = Vec::with_capacity(apps.len());
        for app in apps {
            // pairs.len() == variants.len() * apps.len(), so the iterator
            // cannot run dry; a panicked worker yields a reported outcome
            let r = flat
                .next()
                .unwrap_or_else(|| {
                    Err(apex_par::JobPanic {
                        index: 0,
                        payload: "grid result missing".to_owned(),
                    })
                })
                .unwrap_or_else(|p| panicked_outcome(p, app));
            row.push(r);
        }
        out.push(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::baseline_variant;
    use apex_apps::gaussian;
    use std::time::Duration;

    #[test]
    fn clean_flow_reports_no_degradations() {
        let app = gaussian();
        let tech = TechModel::default();
        let v = baseline_variant(&[&app]).unwrap();
        let outcome = dse_evaluate_app(&v, &app, &tech, &DseOptions::default());
        assert!(!outcome.is_degraded(), "{}", outcome.degradation_summary());
        assert!(outcome.result.is_ok());
    }

    #[test]
    fn supervised_with_idle_watchdog_matches_unsupervised() {
        let app = gaussian();
        let tech = TechModel::default();
        let v = baseline_variant(&[&app]).unwrap();
        let options = DseOptions::default();
        let plain = dse_evaluate_app(&v, &app, &tech, &options);
        let ctx = apex_par::JobCtx::detached();
        let supervised = dse_evaluate_app_supervised(&v, &app, &tech, &options, &ctx);
        assert_eq!(format!("{plain:?}"), format!("{supervised:?}"));
    }

    #[test]
    fn pre_cancelled_job_drains_with_sweep_degradation() {
        // a job dispatched after Ctrl-C starts pre-cancelled; its routing
        // budget sees the flag and the outcome reports the cancellation
        let app = gaussian();
        let tech = TechModel::default();
        let v = baseline_variant(&[&app]).unwrap();
        let mut options = DseOptions::default();
        options.route_relax_retry = false;
        let ctx = apex_par::JobCtx::detached();
        ctx.cancel.store(true, std::sync::atomic::Ordering::Relaxed);
        let outcome = dse_evaluate_app_supervised(&v, &app, &tech, &options, &ctx);
        assert!(outcome.is_degraded());
        assert!(outcome.result.is_err());
    }

    #[test]
    fn route_timeout_is_reported_not_fatal_to_the_sweep() {
        let app = gaussian();
        let tech = TechModel::default();
        let v = baseline_variant(&[&app]).unwrap();
        let mut options = DseOptions::default();
        options.route_relax_retry = false;
        options.eval.route.budget =
            apex_fault::StageBudget::unlimited().with_deadline(Duration::ZERO);
        let outcome = dse_evaluate_app(&v, &app, &tech, &options);
        assert!(outcome.is_degraded());
        assert!(outcome.result.is_err());
        assert!(outcome
            .degradations
            .iter()
            .any(|d| d.stage == Stage::Route));
    }

    #[test]
    fn failed_variant_yields_one_reported_outcome_per_app() {
        let app = gaussian();
        let tech = TechModel::default();
        let failed: Result<PeVariant, ApexError> =
            Err(ApexError::new(Stage::Rewrite, "injected for test"));
        let outcomes = dse_evaluate_suite(&failed, &[&app, &app], &tech, &DseOptions::default());
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.is_degraded());
            assert!(o.result.is_err());
        }
    }

    #[test]
    fn merge_budget_timeout_still_yields_a_working_variant() {
        use apex_merge::MergeOptions;
        use apex_mining::MinerConfig;
        use std::collections::BTreeSet;

        let app = gaussian();
        let tech = TechModel::default();
        let merge_opts = MergeOptions {
            budget: apex_fault::StageBudget::unlimited().with_deadline(Duration::ZERO),
            ..MergeOptions::default()
        };
        let v = crate::variant::specialized_variant(
            "pe_merge_timeout",
            &[&app],
            &[&app],
            &MinerConfig::default(),
            &crate::variant::SubgraphSelection::default(),
            &merge_opts,
            &tech,
            &BTreeSet::new(),
        )
        .unwrap();
        // the timed-out clique search degrades to the greedy incumbent,
        // which must still be a working PE for the full backend
        assert!(v
            .degradations
            .iter()
            .any(|d| d.stage == Stage::Merge),
            "expected a merge degradation, got {:?}", v.degradations);
        let outcome = dse_evaluate_app(&v, &app, &tech, &DseOptions::default());
        assert!(outcome.result.is_ok(), "degraded merge must still evaluate");
        assert!(outcome.is_degraded());
    }
}
