//! Write-ahead checkpoint journal for crash-safe sweeps.
//!
//! A sweep (`apex report`, `apex dse`) is a sequence of expensive jobs
//! whose results are pure functions of the configuration. This module
//! journals every *completed* job to an append-only JSONL file under
//! `target/apex-journal/<sweep-key>.jsonl` so that a crash, `kill -9`, or
//! Ctrl-C loses at most the jobs still in flight:
//!
//! * **sweep key** — derived from the same content hash the variant cache
//!   uses ([`crate::cache::fnv1a`] over the sweep's configuration), so a
//!   config change yields a different journal file and a clean start;
//! * **record** — one line per completed job carrying the job's own
//!   content-addressed key, the rendered result payload, its digest, the
//!   [`Provenance`]/degradation summary, and a whole-record checksum;
//! * **append-then-fsync** — each record is appended and `sync_data`ed
//!   before the job is considered checkpointed (write-ahead discipline);
//! * **replay** — [`SweepJournal::replay`] accepts the valid prefix,
//!   drops a torn final record (a crash mid-append), and skips corrupt
//!   mid-file records with a count, never trusting or panicking on bad
//!   bytes.
//!
//! [`run_checkpointed`] is the sweep driver: it serves journaled jobs
//! back in input order (so a resumed sweep is byte-identical to an
//! uninterrupted one), runs only the remainder, and stops dispatching as
//! soon as the interrupt flag rises.

use crate::cache::{fnv1a, workspace_target_subdir};
use apex_fault::{fail_point, ApexError, Provenance, Stage};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[cfg(feature = "fault-injection")]
use apex_fault::failpoints;

/// Journal format version, embedded in every record and hashed into every
/// record checksum; bump on any codec change so old journals replay empty
/// (clean start) instead of being misread.
pub const JOURNAL_FORMAT: &str = "apex-journal v1";

// ---------------------------------------------------------------------------
// records
// ---------------------------------------------------------------------------

/// One completed sweep job, as journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Content-addressed key of the job (same hash family as the variant
    /// cache).
    pub job_key: u64,
    /// Human-readable job label (experiment id, app name) for log lines.
    pub label: String,
    /// How the job's search concluded.
    pub provenance: Provenance,
    /// Compact degradation summary (`-` when clean).
    pub degradations: String,
    /// The rendered result payload, fed back verbatim on resume.
    pub payload: String,
}

fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Strict inverse of [`esc_json`]; `None` on any escape the encoder never
/// produces (treated as corruption).
fn unesc_json(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            _ => return None,
        }
    }
    Some(out)
}

impl JournalRecord {
    /// Digest of the payload (stored in the record so replay can verify
    /// the payload survived intact independently of the line checksum).
    pub fn digest(&self) -> u64 {
        fnv1a(&[&self.payload])
    }

    /// Checksum over every field, written as the record's final `sum`
    /// field; a torn or bit-flipped line fails this and is dropped.
    fn checksum(&self) -> u64 {
        fnv1a(&[
            JOURNAL_FORMAT,
            &format!("{:016x}", self.job_key),
            &self.label,
            self.provenance.marker(),
            &self.degradations,
            &format!("{:016x}", self.digest()),
            &self.payload,
        ])
    }

    /// Encodes the record as one JSONL line (no trailing newline). Fields
    /// are written in fixed order with the checksum last, so a torn write
    /// can never produce a line that checks out.
    pub fn encode(&self) -> String {
        format!(
            "{{\"v\":\"{}\",\"job\":\"{:016x}\",\"label\":\"{}\",\"prov\":\"{}\",\"deg\":\"{}\",\"digest\":\"{:016x}\",\"payload\":\"{}\",\"sum\":\"{:016x}\"}}",
            esc_json(JOURNAL_FORMAT),
            self.job_key,
            esc_json(&self.label),
            self.provenance.marker(),
            esc_json(&self.degradations),
            self.digest(),
            esc_json(&self.payload),
            self.checksum(),
        )
    }

    /// Decodes one journal line; `None` on any malformation, unknown
    /// format version, checksum mismatch, or payload-digest mismatch.
    pub fn decode(line: &str) -> Option<JournalRecord> {
        let mut rest = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut field = |key: &str, first: bool| -> Option<String> {
            let prefix = if first {
                format!("\"{key}\":\"")
            } else {
                format!(",\"{key}\":\"")
            };
            rest = rest.strip_prefix(prefix.as_str())?;
            // scan to the closing unescaped quote
            let bytes = rest.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => break,
                    _ => i += 1,
                }
            }
            if i > bytes.len() {
                return None; // trailing lone backslash
            }
            let raw = rest.get(..i)?;
            rest = rest.get(i..)?.strip_prefix('"')?;
            unesc_json(raw)
        };
        let version = field("v", true)?;
        let job = field("job", false)?;
        let label = field("label", false)?;
        let prov = field("prov", false)?;
        let deg = field("deg", false)?;
        let digest = field("digest", false)?;
        let payload = field("payload", false)?;
        let sum = field("sum", false)?;
        if !rest.is_empty() || version != JOURNAL_FORMAT {
            return None;
        }
        let record = JournalRecord {
            job_key: u64::from_str_radix(&job, 16).ok()?,
            label,
            provenance: Provenance::from_marker(&prov)?,
            degradations: deg,
            payload,
        };
        if u64::from_str_radix(&sum, 16).ok()? != record.checksum()
            || u64::from_str_radix(&digest, 16).ok()? != record.digest()
        {
            return None;
        }
        Some(record)
    }
}

// ---------------------------------------------------------------------------
// the journal file
// ---------------------------------------------------------------------------

/// Append-only journal for one sweep, addressed by sweep key.
#[derive(Debug)]
pub struct SweepJournal {
    path: Option<PathBuf>,
    /// Latched when a failed append could not be rolled back: a partial
    /// record may sit mid-file, and appending after it would turn a torn
    /// *tail* (recoverable) into a torn *middle* (silent data loss under
    /// prefix replay). Poisoned journals refuse further appends.
    poisoned: AtomicBool,
}

/// What a journal replay recovered.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Valid records in file order (duplicates possible; last wins).
    pub records: Vec<JournalRecord>,
    /// A torn final record was detected and dropped (crash mid-append).
    pub dropped_torn: usize,
    /// Complete lines that failed decoding or their checksum.
    pub dropped_corrupt: usize,
}

impl JournalReplay {
    /// The completed jobs, keyed by job key; later records win so a job
    /// re-run after a partial resume supersedes its older entry.
    pub fn completed(&self) -> BTreeMap<u64, &JournalRecord> {
        let mut map = BTreeMap::new();
        for rec in &self.records {
            map.insert(rec.job_key, rec);
        }
        map
    }
}

impl SweepJournal {
    /// The journal for `sweep_key`, configured from the environment:
    /// `APEX_JOURNAL=off|0|no` disables journaling, `APEX_JOURNAL_DIR`
    /// overrides the directory, default is `target/apex-journal` under
    /// the enclosing cargo workspace.
    pub fn for_sweep(sweep_key: u64) -> Self {
        if let Ok(v) = std::env::var("APEX_JOURNAL") {
            let v = v.trim().to_ascii_lowercase();
            if v == "off" || v == "0" || v == "no" || v == "false" {
                return SweepJournal::disabled();
            }
        }
        let dir = match std::env::var("APEX_JOURNAL_DIR") {
            Ok(d) if !d.trim().is_empty() => PathBuf::from(d),
            _ => workspace_target_subdir("apex-journal"),
        };
        SweepJournal {
            path: Some(dir.join(format!("{sweep_key:016x}.jsonl"))),
            poisoned: AtomicBool::new(false),
        }
    }

    /// A journal at an explicit file path (tests).
    pub fn at(path: impl Into<PathBuf>) -> Self {
        SweepJournal {
            path: Some(path.into()),
            poisoned: AtomicBool::new(false),
        }
    }

    /// A disabled journal: appends are dropped, replay is empty.
    pub fn disabled() -> Self {
        SweepJournal {
            path: None,
            poisoned: AtomicBool::new(false),
        }
    }

    /// Whether records are actually persisted.
    pub fn is_enabled(&self) -> bool {
        self.path.is_some()
    }

    /// The journal file location, if enabled.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Appends one record and fsyncs (write-ahead: the job only counts as
    /// checkpointed once this returns `Ok`). Best-effort like the cache —
    /// an unwritable journal degrades the sweep to non-resumable rather
    /// than failing it — but I/O errors are reported so the driver can
    /// log them.
    ///
    /// # Errors
    /// Returns the underlying I/O failure (or the `sweep::journal_write`
    /// injected fault).
    pub fn append(&self, record: &JournalRecord) -> Result<(), ApexError> {
        fail_point!(
            "sweep::journal_write",
            ApexError::new(Stage::Sweep, "injected journal write failure")
        );
        let Some(path) = &self.path else {
            return Ok(());
        };
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(ApexError::new(
                Stage::Sweep,
                "journal poisoned by an earlier unrecoverable append failure; \
                 refusing to write after a potentially torn record",
            ));
        }
        let io = |e: std::io::Error| ApexError::with_source(Stage::Sweep, e);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(io)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io)?;
        let before = file.metadata().map_err(io)?.len();
        let mut line = record.encode();
        line.push('\n');
        let written = apex_fault::iofault::write_all(
            &mut file,
            line.as_bytes(),
            "io::journal_enospc",
            "io::journal_short_write",
        )
        .and_then(|()| apex_fault::iofault::sync_data(&file, "io::journal_fsync"));
        if let Err(e) = written {
            // roll the file back to its pre-append length so the failed
            // (possibly partial) record never becomes a non-tail torn
            // line; if even that fails, latch the poison so no later
            // append can bury the torn record mid-file
            if file.set_len(before).is_err() {
                self.poisoned.store(true, Ordering::SeqCst);
            }
            return Err(io(e));
        }
        Ok(())
    }

    /// Replays the journal, keeping exactly the longest valid prefix:
    /// records are accepted in order up to the first undecodable line and
    /// everything from that line on is dropped (an undecodable *final*
    /// line without a trailing newline counts as a torn append, anything
    /// else as corruption). Never errors and never panics — an unreadable
    /// or absent file is simply an empty replay (clean start).
    ///
    /// Stopping at the first bad line — instead of skipping it and
    /// trusting later records — matters because the write-ahead contract
    /// is prefix-shaped: a record proves its job completed *and* that
    /// every earlier record was durably appended first. Bytes after a
    /// corrupt region carry no such guarantee.
    pub fn replay(&self) -> JournalReplay {
        let mut out = JournalReplay::default();
        #[cfg(feature = "fault-injection")]
        if failpoints::should_fire("sweep::journal_replay") {
            // injected replay fault: the journal reads as unusable, which
            // must degrade to a clean start, not an abort
            return out;
        }
        let Some(path) = &self.path else {
            return out;
        };
        let Ok(bytes) = std::fs::read(path) else {
            return out;
        };
        let text = String::from_utf8_lossy(&bytes);
        let complete_tail = text.ends_with('\n');
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.is_empty() {
                continue;
            }
            match JournalRecord::decode(line) {
                Some(rec) => out.records.push(rec),
                None if i + 1 == lines.len() && !complete_tail => {
                    out.dropped_torn += 1;
                }
                None => {
                    out.dropped_corrupt +=
                        lines[i..].iter().filter(|l| !l.is_empty()).count();
                    break;
                }
            }
        }
        out
    }

    /// Removes the journal file (start of a non-resume run, so stale
    /// records can never leak into a fresh sweep's bookkeeping).
    pub fn clear(&self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// the checkpointed sweep driver
// ---------------------------------------------------------------------------

/// One unit of a checkpointed sweep.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Content-addressed job key (stable across runs of the same config).
    pub key: u64,
    /// Label for journal records and log lines.
    pub label: String,
}

/// What one executed (or replayed) job produced.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Rendered result payload (what the CLI prints).
    pub payload: String,
    /// How the job concluded.
    pub provenance: Provenance,
    /// Compact degradation summary (`-` when clean).
    pub degradations: String,
}

/// Per-job outcome of [`run_checkpointed`], in input order.
#[derive(Debug, Clone)]
pub enum SweepJobResult {
    /// The job's report, either freshly executed or replayed.
    Done {
        /// The payload and provenance.
        report: JobReport,
        /// `true` when served from the journal instead of executed.
        resumed: bool,
    },
    /// The sweep was interrupted before this job was dispatched.
    NotRun,
}

/// Summary of one checkpointed sweep run.
#[derive(Debug)]
pub struct SweepRun {
    /// One entry per input job, in input order.
    pub results: Vec<SweepJobResult>,
    /// Jobs served from the journal.
    pub replayed: usize,
    /// Jobs executed this run.
    pub executed: usize,
    /// Whether the sweep stopped early on an interrupt.
    pub interrupted: bool,
    /// Torn journal records dropped during replay.
    pub dropped_torn: usize,
    /// Corrupt journal records skipped during replay.
    pub dropped_corrupt: usize,
}

impl SweepRun {
    /// Jobs with a report (replayed + executed).
    pub fn done(&self) -> usize {
        self.replayed + self.executed
    }
}

/// Deterministic interrupt hook for tests and CI: `APEX_INTERRUPT_AFTER=n`
/// simulates the first Ctrl-C after `n` jobs have *executed* (replayed
/// jobs don't count — a resumed run must make fresh progress).
fn interrupt_after_env() -> Option<usize> {
    std::env::var("APEX_INTERRUPT_AFTER")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}

/// Runs `jobs` in order with write-ahead checkpointing.
///
/// With `resume`, the journal is replayed first and completed jobs are
/// served from it verbatim, in input order — a resumed sweep's output is
/// byte-identical to an uninterrupted one. Without `resume`, the journal
/// is cleared and every job runs. Before dispatching each job the
/// `interrupt` flag is consulted; once it reads `true`, remaining jobs
/// are marked [`SweepJobResult::NotRun`] and the run returns with
/// `interrupted` set (the journal already holds everything completed, so
/// `--resume` picks up exactly there).
///
/// A journal append failure is logged and degrades the run to
/// non-resumable; it never aborts the sweep.
///
/// # Errors
/// Propagates the first `run_job` error (job failures that should degrade
/// instead must be rendered into the [`JobReport`] by the caller).
pub fn run_checkpointed(
    journal: &SweepJournal,
    jobs: &[SweepJob],
    resume: bool,
    interrupt: Option<&Arc<AtomicBool>>,
    mut run_job: impl FnMut(usize) -> Result<JobReport, ApexError>,
) -> Result<SweepRun, ApexError> {
    let mut run = SweepRun {
        results: Vec::with_capacity(jobs.len()),
        replayed: 0,
        executed: 0,
        interrupted: false,
        dropped_torn: 0,
        dropped_corrupt: 0,
    };
    let mut completed: BTreeMap<u64, JournalRecord> = BTreeMap::new();
    if resume {
        let replay = journal.replay();
        run.dropped_torn = replay.dropped_torn;
        run.dropped_corrupt = replay.dropped_corrupt;
        if run.dropped_torn + run.dropped_corrupt > 0 {
            eprintln!(
                "resume: dropped {} torn and {} corrupt journal record(s)",
                run.dropped_torn, run.dropped_corrupt
            );
        }
        for (key, rec) in replay.completed() {
            completed.insert(key, rec.clone());
        }
        let known = jobs.iter().filter(|j| completed.contains_key(&j.key)).count();
        if let Some(path) = journal.path() {
            if known == 0 {
                eprintln!(
                    "resume: no completed jobs for this sweep in {} (first run or config changed); starting clean",
                    path.display()
                );
            } else {
                eprintln!(
                    "resume: replaying {known}/{} completed job(s) from {}",
                    jobs.len(),
                    path.display()
                );
            }
        }
    } else {
        journal.clear();
    }

    let interrupt_after = interrupt_after_env();
    let mut journal_degraded = false;
    let mut simulated = false;
    for (i, job) in jobs.iter().enumerate() {
        if simulated || interrupt.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
            run.interrupted = true;
            run.results
                .extend((i..jobs.len()).map(|_| SweepJobResult::NotRun));
            break;
        }
        if let Some(rec) = completed.get(&job.key) {
            run.replayed += 1;
            run.results.push(SweepJobResult::Done {
                report: JobReport {
                    payload: rec.payload.clone(),
                    provenance: rec.provenance,
                    degradations: rec.degradations.clone(),
                },
                resumed: true,
            });
            continue;
        }
        let report = run_job(i)?;
        let record = JournalRecord {
            job_key: job.key,
            label: job.label.clone(),
            provenance: report.provenance,
            degradations: report.degradations.clone(),
            payload: report.payload.clone(),
        };
        if let Err(e) = journal.append(&record) {
            if !journal_degraded {
                journal_degraded = true;
                eprintln!(
                    "warning: journal write failed ({e}); sweep continues but is not resumable"
                );
            }
        }
        run.executed += 1;
        run.results.push(SweepJobResult::Done {
            report,
            resumed: false,
        });

        // deterministic interrupt hooks, checked after a completed job so
        // the journal provably holds it before the "signal" lands
        #[cfg(not(feature = "fault-injection"))]
        let simulate = interrupt_after == Some(run.executed);
        #[cfg(feature = "fault-injection")]
        let simulate = interrupt_after == Some(run.executed)
            || (run.executed == 1 && failpoints::should_fire("sweep::interrupt_midsweep"));
        if simulate {
            simulated = true;
            if let Some(flag) = interrupt {
                flag.store(true, Ordering::SeqCst);
            }
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("apex-journal-{tag}-{}.jsonl", std::process::id()))
    }

    fn rec(key: u64, payload: &str) -> JournalRecord {
        JournalRecord {
            job_key: key,
            label: format!("job{key}"),
            provenance: Provenance::Completed,
            degradations: "-".to_owned(),
            payload: payload.to_owned(),
        }
    }

    #[test]
    fn record_codec_round_trips() {
        let tricky = rec(42, "line1\nline2\t\"quoted\" back\\slash\r");
        let decoded = JournalRecord::decode(&tricky.encode()).expect("decodes");
        assert_eq!(decoded, tricky);
        let degraded = JournalRecord {
            provenance: Provenance::TimedOut,
            degradations: "sweep:timed-out".to_owned(),
            ..rec(7, "partial result")
        };
        assert_eq!(
            JournalRecord::decode(&degraded.encode()).expect("decodes"),
            degraded
        );
    }

    #[test]
    fn flipped_bytes_fail_the_checksum() {
        let line = rec(1, "payload").encode();
        assert!(JournalRecord::decode(&line).is_some());
        // flip one payload character: digest and checksum both break
        let bad = line.replacen("payload", "paYload", 1);
        assert!(JournalRecord::decode(&bad).is_none());
        // truncate anywhere: never panics, never decodes
        for cut in 0..line.len() {
            assert!(JournalRecord::decode(&line[..cut]).is_none(), "cut {cut}");
        }
        assert!(JournalRecord::decode("").is_none());
        assert!(JournalRecord::decode("{}").is_none());
    }

    #[test]
    fn torn_tail_alone_is_dropped_keeping_all_complete_records() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        let journal = SweepJournal::at(&path);
        journal.append(&rec(1, "one")).unwrap();
        journal.append(&rec(2, "two")).unwrap();
        // simulate a crash mid-append: a partial record, no newline
        let mut tail = rec(3, "three").encode();
        tail.truncate(tail.len() / 2);
        std::fs::write(&path, std::fs::read_to_string(&path).unwrap() + &tail).unwrap();

        let replay = journal.replay();
        assert_eq!(replay.dropped_torn, 1, "torn tail must be dropped");
        assert_eq!(replay.dropped_corrupt, 0);
        let completed = replay.completed();
        assert_eq!(completed.len(), 2);
        assert_eq!(completed[&1].payload, "one");
        assert_eq!(completed[&2].payload, "two");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_cuts_replay_to_the_longest_valid_prefix() {
        // a corrupt middle record invalidates everything after it: the
        // write-ahead guarantee is prefix-shaped, so record 3 (valid in
        // isolation) must NOT be trusted past the corruption
        let path = tmp_path("prefix");
        let _ = std::fs::remove_file(&path);
        let journal = SweepJournal::at(&path);
        journal.append(&rec(1, "one")).unwrap();
        journal.append(&rec(2, "two")).unwrap();
        journal.append(&rec(3, "three")).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("two", "twX", 1)).unwrap();
        let mut tail = rec(4, "four").encode();
        tail.truncate(tail.len() / 2);
        std::fs::write(&path, std::fs::read_to_string(&path).unwrap() + &tail).unwrap();

        let replay = journal.replay();
        assert_eq!(replay.dropped_torn, 0, "prefix cut subsumes the tail");
        assert_eq!(
            replay.dropped_corrupt, 3,
            "corrupt line plus everything after it is dropped"
        );
        let completed = replay.completed();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[&1].payload, "one");
        let _ = std::fs::remove_file(&path);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(250))]

        // flip or truncate bytes at arbitrary offsets — replay must never
        // panic and must return exactly a prefix of the original record
        // sequence (never a subsequence that skips damage)
        #[test]
        fn replayed_records_are_always_a_prefix_under_arbitrary_damage(
            offset in 0usize..4096,
            flip in 1u8..=255,
            truncate: bool,
        ) {
            let path = tmp_path("fuzz");
            let journal = SweepJournal::at(&path);
            let originals: Vec<JournalRecord> = (0..6)
                .map(|i| rec(i, &format!("payload {i}\twith\n\"tricky\" bytes\\")))
                .collect();
            let mut pristine = String::new();
            for r in &originals {
                pristine.push_str(&r.encode());
                pristine.push('\n');
            }
            let mut bytes = pristine.into_bytes();
            let off = offset % bytes.len();
            if truncate {
                bytes.truncate(off);
            } else {
                bytes[off] ^= flip;
            }
            std::fs::write(&path, &bytes).unwrap();
            let replay = journal.replay();
            let _ = std::fs::remove_file(&path);
            prop_assert!(replay.records.len() <= originals.len());
            for (got, want) in replay.records.iter().zip(&originals) {
                prop_assert_eq!(got, want, "replay must be an exact prefix");
            }
        }
    }

    #[test]
    fn duplicate_keys_last_record_wins() {
        let path = tmp_path("dup");
        let _ = std::fs::remove_file(&path);
        let journal = SweepJournal::at(&path);
        journal.append(&rec(5, "old")).unwrap();
        journal.append(&rec(5, "new")).unwrap();
        let replay = journal.replay();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.completed()[&5].payload, "new");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_journal_is_pass_through() {
        let journal = SweepJournal::disabled();
        assert!(!journal.is_enabled());
        journal.append(&rec(1, "x")).unwrap();
        assert!(journal.replay().records.is_empty());
    }

    #[test]
    fn checkpointed_run_resumes_byte_identically() {
        let path = tmp_path("ckpt");
        let _ = std::fs::remove_file(&path);
        let journal = SweepJournal::at(&path);
        let jobs: Vec<SweepJob> = (0..4)
            .map(|i| SweepJob {
                key: fnv1a(&["ckpt-test", &i.to_string()]),
                label: format!("job{i}"),
            })
            .collect();
        let make = |i: usize| {
            Ok(JobReport {
                payload: format!("result {i}\n"),
                provenance: Provenance::Completed,
                degradations: "-".to_owned(),
            })
        };
        let collect = |run: &SweepRun| -> String {
            run.results
                .iter()
                .filter_map(|r| match r {
                    SweepJobResult::Done { report, .. } => Some(report.payload.clone()),
                    SweepJobResult::NotRun => None,
                })
                .collect()
        };

        // reference: uninterrupted
        let full = run_checkpointed(&journal, &jobs, false, None, make).unwrap();
        assert_eq!(full.executed, 4);
        let reference = collect(&full);

        // interrupted after 2 executed jobs: flag raised inside run_job
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        let partial = run_checkpointed(&journal, &jobs, false, Some(&flag), |i| {
            if i == 1 {
                flag2.store(true, Ordering::SeqCst);
            }
            make(i)
        })
        .unwrap();
        assert!(partial.interrupted);
        assert_eq!(partial.executed, 2);
        assert!(matches!(partial.results[2], SweepJobResult::NotRun));

        // resume: only the remainder executes, output is byte-identical
        let fresh = Arc::new(AtomicBool::new(false));
        let resumed = run_checkpointed(&journal, &jobs, true, Some(&fresh), make).unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.replayed, 2);
        assert_eq!(resumed.executed, 2);
        assert_eq!(collect(&resumed), reference);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_resume_run_clears_stale_journal() {
        let path = tmp_path("stale");
        let _ = std::fs::remove_file(&path);
        let journal = SweepJournal::at(&path);
        journal.append(&rec(9, "stale")).unwrap();
        let jobs = [SweepJob {
            key: 9,
            label: "job9".to_owned(),
        }];
        let run = run_checkpointed(&journal, &jobs, false, None, |_| {
            Ok(JobReport {
                payload: "fresh".to_owned(),
                provenance: Provenance::Completed,
                degradations: "-".to_owned(),
            })
        })
        .unwrap();
        assert_eq!(run.executed, 1, "stale record must not satisfy a fresh run");
        let _ = std::fs::remove_file(&path);
    }
}
