//! Property tests on the miner: soundness of reported statistics on
//! random DAGs, canonical-code invariance, and MIS independence.

use apex_ir::{Graph, NodeId, Op};
use apex_mining::{
    find_embeddings, find_embeddings_reference, maximal_independent_set, mine, overlap_graph,
    GraphIndex, MinerConfig, Pattern,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    let spec = prop::collection::vec((0u8..6, any::<u16>(), any::<u16>()), 4..40);
    spec.prop_map(|ops| {
        let mut g = Graph::new("prop");
        let mut pool = vec![g.input(), g.input()];
        for (sel, x, y) in ops {
            let a = pool[(x as usize) % pool.len()];
            let b = pool[(y as usize) % pool.len()];
            let n = match sel {
                0 => g.add(Op::Add, &[a, b]),
                1 => g.add(Op::Mul, &[a, b]),
                2 => g.add(Op::Sub, &[a, b]),
                3 => {
                    let c = g.constant(x);
                    g.add(Op::Mul, &[a, c])
                }
                4 => g.add(Op::Umax, &[a, b]),
                _ => g.add(Op::Lshr, &[a, b]),
            };
            pool.push(n);
        }
        let last = *pool.last().unwrap();
        g.output(last);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_occurrence_is_an_induced_match(g in arb_graph()) {
        let mined = mine(&g, &MinerConfig {
            min_support: 2,
            max_pattern_nodes: 4,
            max_patterns: 60,
            ..MinerConfig::default()
        })
        .unwrap()
        .subgraphs;
        let index = GraphIndex::new(&g);
        for m in mined.iter().take(20) {
            // re-searching must find at least the reported occurrences
            let es = find_embeddings(&m.pattern, &index, 50_000);
            let occ = es.occurrences();
            prop_assert!(occ.len() >= m.occurrences.len());
            for o in &m.occurrences {
                prop_assert!(occ.contains(o), "occurrence not reproducible");
            }
            // labels of each occurrence match the pattern multiset
            let mut want: Vec<_> = m.pattern.labels().to_vec();
            want.sort();
            for o in &m.occurrences {
                let mut got: Vec<_> = o.iter().map(|&n| g.op(n).kind()).collect();
                got.sort();
                prop_assert_eq!(&got, &want);
            }
        }
    }

    #[test]
    fn soa_search_matches_reference_matcher(g in arb_graph()) {
        // the SoA/bitset search must return EXACTLY the embedding
        // sequence of the retained naive reference matcher — same rows,
        // same order, same truncation — on every mined pattern shape
        let index = GraphIndex::new(&g);
        let mined = mine(&g, &MinerConfig {
            min_support: 2,
            max_pattern_nodes: 4,
            max_patterns: 30,
            ..MinerConfig::default()
        })
        .unwrap()
        .subgraphs;
        for m in mined.iter().take(12) {
            let fast = find_embeddings(&m.pattern, &index, 5_000);
            let (rows, truncated) = find_embeddings_reference(&m.pattern, &index, 5_000);
            prop_assert_eq!(fast.truncated, truncated);
            prop_assert_eq!(fast.len(), rows.len());
            for (i, e) in rows.iter().enumerate() {
                prop_assert_eq!(fast.list.row(i), e.0.clone(), "row {} differs", i);
            }
        }
    }

    #[test]
    fn mis_is_independent_and_maximal(g in arb_graph()) {
        let mined = mine(&g, &MinerConfig {
            min_support: 2,
            max_pattern_nodes: 3,
            max_patterns: 40,
            ..MinerConfig::default()
        })
        .unwrap()
        .subgraphs;
        for m in mined.iter().take(10) {
            let adj = overlap_graph(&m.occurrences);
            let mis = maximal_independent_set(&m.occurrences);
            for (i, &a) in mis.iter().enumerate() {
                for &b in &mis[i + 1..] {
                    prop_assert!(!adj[a].contains(&b), "MIS not independent");
                }
            }
            for v in 0..m.occurrences.len() {
                if !mis.contains(&v) {
                    prop_assert!(
                        adj[v].iter().any(|u| mis.contains(u)),
                        "MIS not maximal"
                    );
                }
            }
            prop_assert_eq!(m.mis_size, mis.len());
        }
    }

    #[test]
    fn canonical_code_is_invariant_under_relabeling(g in arb_graph(), seed: u64) {
        // pick a random small occurrence and rebuild the pattern from a
        // permuted node order: codes must match
        let compute = g.compute_nodes();
        if compute.len() < 3 {
            return Ok(());
        }
        let start = (seed as usize) % (compute.len() - 2);
        let nodes: Vec<NodeId> = compute[start..start + 3].to_vec();
        let (p1, _) = Pattern::from_occurrence(&g, &nodes);
        let mut rev = nodes.clone();
        rev.reverse();
        let (p2, _) = Pattern::from_occurrence(&g, &rev);
        prop_assert_eq!(p1.canonical_code(), p2.canonical_code());
    }

    #[test]
    fn utilizable_occurrences_are_a_subset(g in arb_graph()) {
        let mined = mine(&g, &MinerConfig {
            min_support: 2,
            max_pattern_nodes: 3,
            max_patterns: 30,
            ..MinerConfig::default()
        })
        .unwrap()
        .subgraphs;
        for m in mined.iter().take(10) {
            let u = m.utilizable_occurrences(&g);
            prop_assert!(u.len() <= m.occurrences.len());
            prop_assert!(m.utilizable_mis(&g) <= m.mis_size);
            for o in u {
                prop_assert!(m.occurrences.contains(o));
            }
        }
    }

    #[test]
    fn mined_datapaths_validate_and_evaluate(g in arb_graph()) {
        let mined = mine(&g, &MinerConfig {
            min_support: 2,
            max_pattern_nodes: 4,
            max_patterns: 30,
            ..MinerConfig::default()
        })
        .unwrap()
        .subgraphs;
        for m in mined.iter().take(10) {
            let dp = m.to_datapath(&g, "p").unwrap();
            prop_assert!(dp.try_validate().is_ok());
            prop_assert!(!dp.primary_outputs().is_empty());
        }
    }
}
