//! Integration: mine the real benchmark applications.

use apex_mining::{mine, MinerConfig};

#[test]
fn mine_all_analyzed_apps() {
    for app in apex_apps::analyzed_apps() {
        let t0 = std::time::Instant::now();
        let outcome = mine(&app.graph, &MinerConfig::default()).unwrap();
        let dt = t0.elapsed();
        assert!(
            !outcome.provenance.is_partial(),
            "{}: default budget must complete",
            app.info.name
        );
        let mined = outcome.subgraphs;
        assert!(!mined.is_empty(), "{}: no frequent subgraphs", app.info.name);
        // ranked by MIS
        assert!(mined.windows(2).all(|w| w[0].mis_size >= w[1].mis_size));
        // all datapaths materialize and validate
        for m in mined.iter().take(10) {
            let dp = m.to_datapath(&app.graph, "p").unwrap();
            assert!(dp.try_validate().is_ok());
        }
        println!(
            "{}: {} frequent subgraphs, top MIS {} ({} nodes), {:?}",
            app.info.name,
            mined.len(),
            mined[0].mis_size,
            mined[0].pattern.len(),
            dt
        );
    }
}
