//! # apex-mining — frequent subgraph mining and MIS analysis
//!
//! Stage 1 of the APEX flow (paper Sections 3.1–3.2). This crate is our
//! substitute for GraMi: it mines the frequent computational subgraphs of
//! an application dataflow graph, then applies maximal-independent-set
//! analysis so overlapping occurrences don't inflate a subgraph's
//! usefulness (Fig. 3 and Fig. 4 of the paper).
//!
//! The pipeline:
//!
//! 1. [`mine`] grows frequent [`Pattern`]s from single labels, pruning by
//!    MNI support,
//! 2. each pattern's occurrences go through
//!    [`maximal_independent_set`], and
//! 3. results are ranked by MIS size — the order in which subgraphs get
//!    merged into PE architectures by `apex-merge`.
//!
//! # Examples
//!
//! ```
//! use apex_ir::{Graph, Op};
//! use apex_mining::{mine, MinerConfig};
//!
//! // Fig. 3's convolution: 4 constant-weight multiplies into an add chain
//! let mut g = Graph::new("conv");
//! let mut acc = None;
//! for k in 0..4 {
//!     let i = g.input();
//!     let w = g.constant(k);
//!     let m = g.add(Op::Mul, &[i, w]);
//!     acc = Some(match acc {
//!         None => m,
//!         Some(a) => g.add(Op::Add, &[a, m]),
//!     });
//! }
//! let out = acc.unwrap();
//! g.output(out);
//!
//! let mined = mine(&g, &MinerConfig { min_support: 3, ..MinerConfig::default() }).unwrap();
//! assert!(!mined.subgraphs.is_empty());
//! // results are ranked by non-overlapping occurrence count (MIS size)
//! assert!(mined.subgraphs.windows(2).all(|w| w[0].mis_size >= w[1].mis_size));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use apex_fault::{ApexError, Stage};
use std::fmt;

mod bitset;
mod isomorphism;
mod miner;
mod mis;
mod pattern;

pub use isomorphism::{
    find_embeddings, find_embeddings_metered, find_embeddings_reference, Embedding, EmbeddingList,
    EmbeddingSet, GraphIndex,
};
pub use miner::{mine, rank, MineOutcome, MinedSubgraph, MinerConfig};
pub use mis::{maximal_independent_set, mis_size, overlap_graph};
pub use pattern::{Pattern, PatternEdge};

/// Errors raised by the mining stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MineError {
    /// An occurrence does not map every pattern node.
    OccurrenceSize {
        /// Pattern size in nodes.
        expected: usize,
        /// Occurrence size in nodes.
        got: usize,
    },
    /// An occurrence node's op disagrees with its pattern label.
    LabelMismatch {
        /// Pattern node index.
        node: u32,
    },
    /// Two pattern edges constrain the same destination port.
    DuplicatePort {
        /// Pattern node index.
        node: u32,
        /// The doubly-constrained port.
        port: u8,
    },
    /// A pattern node has more in-edges than its op has input ports.
    PortsExhausted {
        /// Pattern node index.
        node: u32,
    },
    /// Internal ordering violation: an edge source was not materialized
    /// before its destination.
    UnplacedNode {
        /// Pattern node index.
        node: u32,
    },
    /// A deterministic fault-injection site fired (tests only).
    Injected(&'static str),
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::OccurrenceSize { expected, got } => {
                write!(f, "occurrence has {got} nodes, pattern has {expected}")
            }
            MineError::LabelMismatch { node } => {
                write!(f, "occurrence op mismatches label of pattern node {node}")
            }
            MineError::DuplicatePort { node, port } => {
                write!(f, "pattern node {node} has two edges into port {port}")
            }
            MineError::PortsExhausted { node } => {
                write!(f, "pattern node {node} has more in-edges than input ports")
            }
            MineError::UnplacedNode { node } => {
                write!(f, "pattern node {node} used before being materialized")
            }
            MineError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for MineError {}

impl From<MineError> for ApexError {
    fn from(e: MineError) -> Self {
        ApexError::with_source(Stage::Mine, e)
    }
}
