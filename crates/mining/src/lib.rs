//! # apex-mining — frequent subgraph mining and MIS analysis
//!
//! Stage 1 of the APEX flow (paper Sections 3.1–3.2). This crate is our
//! substitute for GraMi: it mines the frequent computational subgraphs of
//! an application dataflow graph, then applies maximal-independent-set
//! analysis so overlapping occurrences don't inflate a subgraph's
//! usefulness (Fig. 3 and Fig. 4 of the paper).
//!
//! The pipeline:
//!
//! 1. [`mine`] grows frequent [`Pattern`]s from single labels, pruning by
//!    MNI support,
//! 2. each pattern's occurrences go through
//!    [`maximal_independent_set`], and
//! 3. results are ranked by MIS size — the order in which subgraphs get
//!    merged into PE architectures by `apex-merge`.
//!
//! # Examples
//!
//! ```
//! use apex_ir::{Graph, Op};
//! use apex_mining::{mine, MinerConfig};
//!
//! // Fig. 3's convolution: 4 constant-weight multiplies into an add chain
//! let mut g = Graph::new("conv");
//! let mut acc = None;
//! for k in 0..4 {
//!     let i = g.input();
//!     let w = g.constant(k);
//!     let m = g.add(Op::Mul, &[i, w]);
//!     acc = Some(match acc {
//!         None => m,
//!         Some(a) => g.add(Op::Add, &[a, m]),
//!     });
//! }
//! let out = acc.unwrap();
//! g.output(out);
//!
//! let mined = mine(&g, &MinerConfig { min_support: 3, ..MinerConfig::default() });
//! assert!(!mined.is_empty());
//! // results are ranked by non-overlapping occurrence count (MIS size)
//! assert!(mined.windows(2).all(|w| w[0].mis_size >= w[1].mis_size));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod isomorphism;
mod miner;
mod mis;
mod pattern;

pub use isomorphism::{find_embeddings, Embedding, EmbeddingSet, GraphIndex};
pub use miner::{mine, rank, MinedSubgraph, MinerConfig};
pub use mis::{maximal_independent_set, mis_size, overlap_graph};
pub use pattern::{Pattern, PatternEdge};
