//! Frequent-subgraph miner (our GraMi substitute, Section 3.1).
//!
//! Pattern-growth enumeration over a single large application graph:
//! start from frequent single-label patterns, repeatedly extend by one
//! node-plus-edge or one internal edge, de-duplicate via canonical codes,
//! and prune with GraMi's anti-monotone MNI support.

use crate::isomorphism::{find_embeddings_budgeted, EmbeddingSet, GraphIndex};
use crate::mis::{maximal_independent_set, maximal_independent_set_budgeted};
use crate::pattern::Pattern;
use crate::MineError;
use apex_fault::{Provenance, ResourceBudget, StageBudget};
use apex_ir::{Graph, NodeId, OpKind};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Miner configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinerConfig {
    /// Minimum MNI support for a pattern to be considered frequent
    /// (GraMi's `τ`).
    pub min_support: usize,
    /// Maximum pattern size in nodes (complex PEs stay small in the
    /// paper's Fig. 10).
    pub max_pattern_nodes: usize,
    /// Smallest pattern size reported (single nodes are implied by the
    /// baseline PE and not interesting merge candidates).
    pub min_pattern_nodes: usize,
    /// Embedding-search budget per pattern.
    pub max_embeddings: usize,
    /// Cap on the total number of frequent patterns explored. The cap is
    /// exact: once `max_patterns` frequent patterns have entered the
    /// search frontier, no further pattern is enqueued — not even the
    /// remaining extensions of the pattern being expanded when the cap is
    /// reached. Patterns already on the frontier are still harvested into
    /// the results.
    pub max_patterns: usize,
    /// Wall-clock / step budget for the whole mining run.
    pub budget: StageBudget,
    /// Approximate memory budget for the run's dominant allocations
    /// (embedding rows, MIS overlap graph). Exceeding it truncates the
    /// affected statistics deterministically with a
    /// [`Provenance::TruncatedByBudget`] record instead of OOM-aborting.
    pub resource: ResourceBudget,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            min_support: 4,
            max_pattern_nodes: 6,
            min_pattern_nodes: 2,
            max_embeddings: 20_000,
            max_patterns: 400,
            budget: StageBudget::unlimited(),
            resource: ResourceBudget::from_env(),
        }
    }
}

/// A frequent subgraph with its occurrence statistics.
#[derive(Debug, Clone)]
pub struct MinedSubgraph {
    /// The pattern itself.
    pub pattern: Pattern,
    /// Distinct occurrence node sets in the application graph.
    pub occurrences: Vec<Vec<NodeId>>,
    /// One representative embedding (pattern index → graph node), used to
    /// materialize the pattern with concrete constants.
    pub representative: Vec<NodeId>,
    /// GraMi MNI support.
    pub mni_support: usize,
    /// Maximal-independent-set size over the occurrences (Section 3.2):
    /// how many non-overlapping occurrences exist.
    pub mis_size: usize,
    /// Whether the embedding search was truncated (statistics are then
    /// lower bounds).
    pub truncated: bool,
    /// Lazily computed utilizable-occurrence statistics (see
    /// [`MinedSubgraph::utilizable_occurrences`]). Computed once on first
    /// use and reused by every later call.
    util: OnceLock<(Vec<Vec<NodeId>>, usize)>,
}

impl MinedSubgraph {
    /// Materializes the pattern as an executable datapath graph (see
    /// [`Pattern::to_datapath`]).
    ///
    /// # Errors
    /// Fails when the representative embedding no longer matches the
    /// pattern (see [`Pattern::to_datapath`]).
    pub fn to_datapath(&self, source: &Graph, name: &str) -> Result<Graph, MineError> {
        self.pattern.to_datapath(source, &self.representative, name)
    }

    /// Occurrences usable as fully-utilized single-exit PEs: every
    /// non-constant node except one *exit* has all of its consumers inside
    /// the occurrence, and no application path leaves the occurrence and
    /// re-enters it. Multi-exit occurrences are rejected too: bundling
    /// independent output cones into one PE can deadlock instruction
    /// selection with instance-level dependency cycles.
    ///
    /// The result (and the MIS over it) is computed once on the first
    /// call and cached; `graph` must be the graph the subgraph was mined
    /// from — it is the only graph the stored occurrences are meaningful
    /// against.
    pub fn utilizable_occurrences(&self, graph: &Graph) -> &[Vec<NodeId>] {
        &self.util_stats(graph).0
    }

    /// MIS size over the utilizable occurrences only — how many
    /// fully-utilized PEs implementing this subgraph the application can
    /// actually instantiate. Cached alongside
    /// [`MinedSubgraph::utilizable_occurrences`].
    pub fn utilizable_mis(&self, graph: &Graph) -> usize {
        self.util_stats(graph).1
    }

    fn util_stats(&self, graph: &Graph) -> &(Vec<Vec<NodeId>>, usize) {
        self.util.get_or_init(|| {
            let fan = graph.fanouts();
            let occ: Vec<Vec<NodeId>> = self
                .occurrences
                .iter()
                .filter(|occ| {
                    let set: std::collections::BTreeSet<NodeId> = occ
                        .iter()
                        .copied()
                        .filter(|&n| {
                            !matches!(
                                graph.op(n),
                                apex_ir::Op::Const(_) | apex_ir::Op::BitConst(_)
                            )
                        })
                        .collect();
                    let mut exits = 0usize;
                    let visible = set.iter().all(|&n| {
                        let internal = fan[n.index()].iter().filter(|c| set.contains(c)).count();
                        if internal == 0 {
                            exits += 1;
                            true
                        } else {
                            fan[n.index()].len() == internal
                        }
                    });
                    visible && exits == 1 && convex(&fan, &set)
                })
                .cloned()
                .collect();
            let mis = maximal_independent_set(&occ).len();
            (occ, mis)
        })
    }
}

/// Extension descriptor considered during pattern growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Extension {
    /// Add a new node with `label`, connected to pattern node `at`.
    Node {
        at: u32,
        label: OpKind,
        new_is_dst: bool,
        port: Option<u8>,
    },
    /// Add an edge between two existing pattern nodes.
    Edge { src: u32, dst: u32, port: Option<u8> },
}

/// Convexity of an occurrence: no application path may leave the node set
/// and re-enter it (such an occurrence can never become one PE instance —
/// it would form a tile-level combinational cycle).
fn convex(fanouts: &[Vec<NodeId>], set: &std::collections::BTreeSet<NodeId>) -> bool {
    let mut stack: Vec<NodeId> = Vec::new();
    let mut seen: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
    for &m in set {
        for &c in &fanouts[m.index()] {
            if !set.contains(&c) && seen.insert(c) {
                stack.push(c);
            }
        }
    }
    while let Some(u) = stack.pop() {
        for &c in &fanouts[u.index()] {
            if set.contains(&c) {
                return false;
            }
            if seen.insert(c) {
                stack.push(c);
            }
        }
    }
    true
}

/// Result of a mining run: ranked subgraphs plus how the search ended.
#[derive(Debug, Clone)]
pub struct MineOutcome {
    /// Mined subgraphs, ranked by MIS size then pattern size.
    pub subgraphs: Vec<MinedSubgraph>,
    /// Whether the pattern-growth search ran to completion or was cut
    /// short by the configured [`StageBudget`].
    pub provenance: Provenance,
}

/// Mines frequent subgraphs of `graph`, returning them ranked by MIS size
/// (descending), then pattern size (descending) — the order in which the
/// paper's flow considers subgraphs for merging.
///
/// The search honours `config.budget`; when the budget trips, the
/// subgraphs found so far are returned with a partial [`Provenance`].
///
/// # Errors
/// Fails only on an armed fault-injection site (tests only).
pub fn mine(graph: &Graph, config: &MinerConfig) -> Result<MineOutcome, MineError> {
    apex_fault::fail_point!("mine::start", MineError::Injected("mine::start"));
    let mut meter = config.budget.start();
    let mut resource = config.resource.start();
    meter.check_slow();
    let index = GraphIndex::new(graph);
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut results: Vec<MinedSubgraph> = Vec::new();
    // breadth-first over pattern sizes so the exploration budget spreads
    // across the whole label space instead of one deep region
    let mut frontier: std::collections::VecDeque<(Pattern, EmbeddingSet)> =
        std::collections::VecDeque::new();

    // level 1: frequent labels
    for (label, nodes) in index.labels() {
        if nodes.len() >= config.min_support {
            let p = Pattern::single(label);
            let es = find_embeddings_budgeted(
                &p,
                &index,
                config.max_embeddings,
                &mut meter,
                &mut resource,
            );
            seen.insert(p.canonical_code());
            frontier.push_back((p, es));
        }
    }

    let mut explored = frontier.len();
    while let Some((pattern, embeddings)) = frontier.pop_front() {
        if pattern.len() >= config.min_pattern_nodes
            && pattern.edge_count() > 0
            && !embeddings.is_empty()
        {
            // occurrences() collapses automorphic embeddings (identical
            // node sets) before MIS analysis, so symmetric patterns do not
            // inflate their utilization estimate
            let mut occurrences = embeddings.occurrences();
            // the MIS overlap graph is the run's other big allocation;
            // under memory pressure analyse a deterministic prefix and
            // truncate the stored occurrences to match (the verifier
            // recomputes the MIS over whatever is stored)
            let (mis, analysed) = maximal_independent_set_budgeted(&occurrences, &mut resource);
            let occ_truncated = analysed < occurrences.len();
            if occ_truncated {
                occurrences.truncate(analysed);
            }
            results.push(MinedSubgraph {
                representative: embeddings.list.row(0),
                mni_support: embeddings.mni_support(pattern.len()),
                mis_size: mis.len(),
                truncated: embeddings.truncated || occ_truncated,
                occurrences,
                pattern: pattern.clone(),
                util: OnceLock::new(),
            });
        }
        // budget exhausted: drain the frontier (patterns already found stay
        // in the results) but stop growing new ones
        if !meter.tick() {
            continue;
        }
        if explored >= config.max_patterns {
            continue;
        }
        for ext in enumerate_extensions(&pattern, &embeddings, &index, config) {
            // exact cap (see MinerConfig::max_patterns): stop enqueueing
            // mid-extension-round, not merely before the next round — the
            // frontier never holds more than max_patterns patterns total
            if explored >= config.max_patterns {
                break;
            }
            let child = match ext {
                Extension::Node {
                    at,
                    label,
                    new_is_dst,
                    port,
                } => pattern.extend_with_node(at, label, new_is_dst, port),
                Extension::Edge { src, dst, port } => pattern.extend_with_edge(src, dst, port),
            };
            let code = child.canonical_code();
            if !seen.insert(code) {
                continue;
            }
            let es = find_embeddings_budgeted(
                &child,
                &index,
                config.max_embeddings,
                &mut meter,
                &mut resource,
            );
            if es.mni_support(child.len()) >= config.min_support {
                explored += 1;
                frontier.push_back((child, es));
            }
        }
    }

    rank(&mut results);
    Ok(MineOutcome {
        subgraphs: results,
        provenance: meter.provenance().worst(resource.provenance()),
    })
}

/// Ranks mined subgraphs: MIS size descending, then node count
/// descending (a bigger subgraph accelerates more ops per PE), then
/// canonical code for determinism.
pub fn rank(results: &mut [MinedSubgraph]) {
    results.sort_by(|a, b| {
        b.mis_size
            .cmp(&a.mis_size)
            .then(b.pattern.len().cmp(&a.pattern.len()))
            .then_with(|| a.pattern.canonical_code().cmp(&b.pattern.canonical_code()))
    });
}

fn enumerate_extensions(
    pattern: &Pattern,
    embeddings: &EmbeddingSet,
    index: &GraphIndex<'_>,
    config: &MinerConfig,
) -> BTreeSet<Extension> {
    let graph = index.graph();
    // one shared fanout table for the whole enumeration — the naive loop
    // rebuilt it per embedding per node, which dominated mining time
    let fanouts = index.fanouts();
    let mut exts = BTreeSet::new();
    let can_grow = pattern.len() < config.max_pattern_nodes;
    let k = pattern.len();
    // stamp array over graph node ids: pos_of[n] = pattern position of n
    // in the current embedding row, u32::MAX when unmapped. Set and
    // cleared per row — O(k) instead of building a map per embedding.
    let mut pos_of: Vec<u32> = vec![u32::MAX; graph.len()];
    let mut ports: Vec<Option<u8>> = Vec::new();
    for r in 0..embeddings.list.len() {
        for (i, n) in embeddings.list.row_iter(r).enumerate() {
            pos_of[n.index()] = i as u32;
        }
        for i in 0..k {
            let u = embeddings.list.col(i)[r];
            let i = i as u32;
            // consumers of u
            for &v in fanouts[u.index()].iter() {
                let vop = graph.op(v);
                if !vop.is_compute() {
                    continue;
                }
                ports.clear();
                if vop.commutative() {
                    ports.push(None);
                } else {
                    ports.extend(
                        graph
                            .node(v)
                            .inputs()
                            .iter()
                            .enumerate()
                            .filter(|(_, &s)| s == u)
                            .map(|(p, _)| Some(p as u8)),
                    );
                }
                let j = pos_of[v.index()];
                if j != u32::MAX {
                    // internal edge candidate
                    let existing = pattern.in_edges(j as usize).len();
                    if existing < graph.node(v).inputs().len() {
                        for port in &ports {
                            let already = pattern
                                .in_edges(j as usize)
                                .iter()
                                .filter(|e| e.src == i && e.port == *port)
                                .count();
                            let avail = graph
                                .node(v)
                                .inputs()
                                .iter()
                                .enumerate()
                                .filter(|(p, &s)| {
                                    s == u && port.map_or(true, |pp| pp as usize == *p)
                                })
                                .count();
                            if already < avail {
                                exts.insert(Extension::Edge {
                                    src: i,
                                    dst: j,
                                    port: *port,
                                });
                            }
                        }
                    }
                } else if can_grow {
                    for port in &ports {
                        exts.insert(Extension::Node {
                            at: i,
                            label: vop.kind(),
                            new_is_dst: true,
                            port: *port,
                        });
                    }
                }
            }
            // producers of u (only grow new nodes here; internal edges are
            // handled from the producer side above)
            if can_grow {
                let uop = graph.op(u);
                for (p, &src) in graph.node(u).inputs().iter().enumerate() {
                    let sop = graph.op(src);
                    if !sop.is_compute() || pos_of[src.index()] != u32::MAX {
                        continue;
                    }
                    let port = if uop.commutative() {
                        None
                    } else {
                        Some(p as u8)
                    };
                    exts.insert(Extension::Node {
                        at: i,
                        label: sop.kind(),
                        new_is_dst: false,
                        port,
                    });
                }
            }
        }
        for n in embeddings.list.row_iter(r) {
            pos_of[n.index()] = u32::MAX;
        }
    }
    exts
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::Op;

    /// Fig. 3's convolution: ((((i0·w0)+(i1·w1))+(i2·w2))+(i3·w3))+c
    fn conv_graph() -> Graph {
        let mut g = Graph::new("conv");
        let mut acc = None;
        for k in 0..4u16 {
            let i = g.input();
            let w = g.constant(10 + k);
            let m = g.add(Op::Mul, &[i, w]);
            acc = Some(match acc {
                None => m,
                Some(a) => g.add(Op::Add, &[a, m]),
            });
        }
        let c = g.constant(3);
        let fin = g.add(Op::Add, &[acc.unwrap(), c]);
        g.output(fin);
        g
    }

    #[test]
    fn mines_fig3_frequent_subgraphs() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 3,
            max_pattern_nodes: 3,
            ..MinerConfig::default()
        };
        let mined = mine(&g, &cfg).unwrap().subgraphs;
        assert!(!mined.is_empty());
        // const→mul (Fig. 3b) must be found with 4 non-overlapping occurrences
        let const_mul = mined
            .iter()
            .find(|m| {
                m.pattern.len() == 2
                    && m.pattern.labels().contains(&OpKind::Const)
                    && m.pattern.labels().contains(&OpKind::Mul)
            })
            .unwrap();
        assert_eq!(const_mul.occurrences.len(), 4);
        assert_eq!(const_mul.mis_size, 4);
    }

    #[test]
    fn fig3d_add_chain_has_overlapping_occurrences() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 3,
            max_pattern_nodes: 2,
            ..MinerConfig::default()
        };
        let mined = mine(&g, &cfg).unwrap().subgraphs;
        let add_add = mined
            .iter()
            .find(|m| m.pattern.labels() == [OpKind::Add, OpKind::Add])
            .unwrap();
        // the 4-tap conv has a 4-add chain: 3 overlapping add→add
        // occurrences, of which only 2 are disjoint (the Fig. 4 effect)
        assert_eq!(add_add.occurrences.len(), 3);
        assert_eq!(add_add.mis_size, 2);
    }

    #[test]
    fn ranking_puts_largest_mis_first() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 2,
            max_pattern_nodes: 3,
            ..MinerConfig::default()
        };
        let mined = mine(&g, &cfg).unwrap().subgraphs;
        for w in mined.windows(2) {
            assert!(w[0].mis_size >= w[1].mis_size);
        }
    }

    #[test]
    fn step_budget_cuts_mining_short_with_partial_provenance() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 2,
            budget: StageBudget::unlimited().with_max_steps(8),
            ..MinerConfig::default()
        };
        let out = mine(&g, &cfg).unwrap();
        assert_eq!(out.provenance, Provenance::TruncatedByBudget);
        // an unlimited run finds strictly more
        let full = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .unwrap();
        assert!(full.subgraphs.len() >= out.subgraphs.len());
    }

    #[test]
    fn respects_min_support() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 5,
            max_pattern_nodes: 3,
            ..MinerConfig::default()
        };
        let mined = mine(&g, &cfg).unwrap().subgraphs;
        // nothing appears 5+ times disjointly in this tiny graph except
        // nothing — all multi-node patterns have ≤ 5 occurrences; MNI ≤ 5
        for m in &mined {
            assert!(m.mni_support >= 5, "{}", m.pattern);
        }
    }

    #[test]
    fn mined_patterns_are_connected_and_valid() {
        let g = conv_graph();
        let mined = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(mined.provenance, Provenance::Completed);
        for m in &mined.subgraphs {
            assert!(m.pattern.is_connected(), "{}", m.pattern);
            let dp = m.to_datapath(&g, "p").unwrap();
            assert!(dp.try_validate().is_ok());
        }
    }

    #[test]
    fn max_patterns_cap_is_exact() {
        // the conv graph explores well over 4 frequent patterns when
        // uncapped; with max_patterns = 4 EXACTLY 4 may enter the frontier
        // (regression: the old check ran only between extension rounds, so
        // one round could overshoot the cap)
        let g = conv_graph();
        let uncapped = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .unwrap()
        .subgraphs
        .len();
        assert!(uncapped > 4, "premise: uncapped run explores more");
        for cap in [1usize, 2, 4, 7] {
            let capped = mine(
                &g,
                &MinerConfig {
                    min_support: 2,
                    max_patterns: cap,
                    ..MinerConfig::default()
                },
            )
            .unwrap()
            .subgraphs;
            // every reported subgraph came off the frontier, which the
            // exact cap bounds at `cap` patterns
            assert!(
                capped.len() <= cap,
                "cap {cap} exceeded: {} patterns reported",
                capped.len()
            );
        }
    }

    #[test]
    fn automorphic_embeddings_do_not_inflate_occurrences_or_mis() {
        // four disjoint trees of add(mul, mul): the symmetric mul-add-mul
        // pattern has TWO automorphic embeddings per tree (the muls swap),
        // but each tree is ONE occurrence — the MIS must equal the true
        // instance count, not double it
        let mut g = Graph::new("sym");
        let mut outs = Vec::new();
        for _ in 0..4 {
            let a = g.input();
            let b = g.input();
            let c = g.input();
            let d = g.input();
            let m1 = g.add(Op::Mul, &[a, b]);
            let m2 = g.add(Op::Mul, &[c, d]);
            outs.push(g.add(Op::Add, &[m1, m2]));
        }
        for o in outs {
            g.output(o);
        }
        let cfg = MinerConfig {
            min_support: 4,
            max_pattern_nodes: 3,
            ..MinerConfig::default()
        };
        let mined = mine(&g, &cfg).unwrap().subgraphs;
        let sym = mined
            .iter()
            .find(|m| {
                m.pattern.len() == 3
                    && m.pattern.edge_count() == 2
                    && m.pattern
                        .labels()
                        .iter()
                        .filter(|&&l| l == OpKind::Mul)
                        .count()
                        == 2
            })
            .expect("mul-add-mul pattern must be mined");
        assert_eq!(sym.occurrences.len(), 4, "one occurrence per tree");
        assert_eq!(sym.mis_size, 4, "disjoint trees are all independent");
    }

    #[test]
    fn utilizable_statistics_are_computed_once_and_cached() {
        let g = conv_graph();
        let mined = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .unwrap()
        .subgraphs;
        let m = &mined[0];
        let first = m.utilizable_occurrences(&g);
        let again = m.utilizable_occurrences(&g);
        // the second call must return the cached slice, not a recomputation
        assert!(std::ptr::eq(first, again));
        assert_eq!(m.utilizable_mis(&g), maximal_independent_set(first).len());
    }

    #[test]
    fn memory_budget_truncates_mining_deterministically() {
        let g = conv_graph();
        let unlimited = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(unlimited.provenance, Provenance::Completed);
        // a budget below the run's natural footprint: results degrade but
        // the run completes, flagged TruncatedByBudget
        let tight = MinerConfig {
            min_support: 2,
            resource: ResourceBudget::with_max_bytes(256),
            ..MinerConfig::default()
        };
        let a = mine(&g, &tight).unwrap();
        assert_eq!(a.provenance, Provenance::TruncatedByBudget);
        assert!(a.subgraphs.iter().any(|m| m.truncated));
        for m in &a.subgraphs {
            // truncated statistics stay internally consistent: stored
            // occurrences are exactly what the MIS analysed
            assert!(m.mis_size <= m.occurrences.len());
        }
        // deterministic: a second identical run truncates identically
        let b = mine(&g, &tight).unwrap();
        assert_eq!(a.subgraphs.len(), b.subgraphs.len());
        for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
            assert_eq!(x.occurrences, y.occurrences);
            assert_eq!(x.mis_size, y.mis_size);
            assert_eq!(x.truncated, y.truncated);
        }
    }

    #[test]
    fn zero_memory_budget_still_terminates_without_panic() {
        let g = conv_graph();
        let out = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                resource: ResourceBudget::with_max_bytes(0),
                ..MinerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.provenance, Provenance::TruncatedByBudget);
    }

    #[test]
    fn every_occurrence_is_a_real_embedding() {
        // property: reported occurrences induce the pattern
        let g = conv_graph();
        let mined = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .unwrap()
        .subgraphs;
        for m in &mined {
            for occ in &m.occurrences {
                let (p2, _) = Pattern::from_occurrence(&g, occ);
                // the occurrence's induced pattern must contain at least
                // the mined pattern's edges (it may have extra internal
                // edges the pattern does not require)
                assert!(p2.edge_count() >= m.pattern.edge_count());
                assert_eq!(p2.len(), m.pattern.len());
            }
        }
    }
}
