//! Frequent-subgraph miner (our GraMi substitute, Section 3.1).
//!
//! Pattern-growth enumeration over a single large application graph:
//! start from frequent single-label patterns, repeatedly extend by one
//! node-plus-edge or one internal edge, de-duplicate via canonical codes,
//! and prune with GraMi's anti-monotone MNI support.

use crate::isomorphism::{find_embeddings_metered, EmbeddingSet, GraphIndex};
use crate::mis::maximal_independent_set;
use crate::pattern::Pattern;
use crate::MineError;
use apex_fault::{Provenance, StageBudget};
use apex_ir::{Graph, NodeId, OpKind};
use std::collections::{BTreeMap, BTreeSet};

/// Miner configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinerConfig {
    /// Minimum MNI support for a pattern to be considered frequent
    /// (GraMi's `τ`).
    pub min_support: usize,
    /// Maximum pattern size in nodes (complex PEs stay small in the
    /// paper's Fig. 10).
    pub max_pattern_nodes: usize,
    /// Smallest pattern size reported (single nodes are implied by the
    /// baseline PE and not interesting merge candidates).
    pub min_pattern_nodes: usize,
    /// Embedding-search budget per pattern.
    pub max_embeddings: usize,
    /// Cap on the total number of frequent patterns explored.
    pub max_patterns: usize,
    /// Wall-clock / step budget for the whole mining run.
    pub budget: StageBudget,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            min_support: 4,
            max_pattern_nodes: 6,
            min_pattern_nodes: 2,
            max_embeddings: 20_000,
            max_patterns: 400,
            budget: StageBudget::unlimited(),
        }
    }
}

/// A frequent subgraph with its occurrence statistics.
#[derive(Debug, Clone)]
pub struct MinedSubgraph {
    /// The pattern itself.
    pub pattern: Pattern,
    /// Distinct occurrence node sets in the application graph.
    pub occurrences: Vec<Vec<NodeId>>,
    /// One representative embedding (pattern index → graph node), used to
    /// materialize the pattern with concrete constants.
    pub representative: Vec<NodeId>,
    /// GraMi MNI support.
    pub mni_support: usize,
    /// Maximal-independent-set size over the occurrences (Section 3.2):
    /// how many non-overlapping occurrences exist.
    pub mis_size: usize,
    /// Whether the embedding search was truncated (statistics are then
    /// lower bounds).
    pub truncated: bool,
}

impl MinedSubgraph {
    /// Materializes the pattern as an executable datapath graph (see
    /// [`Pattern::to_datapath`]).
    ///
    /// # Errors
    /// Fails when the representative embedding no longer matches the
    /// pattern (see [`Pattern::to_datapath`]).
    pub fn to_datapath(&self, source: &Graph, name: &str) -> Result<Graph, MineError> {
        self.pattern.to_datapath(source, &self.representative, name)
    }

    /// Occurrences usable as fully-utilized single-exit PEs: every
    /// non-constant node except one *exit* has all of its consumers inside
    /// the occurrence, and no application path leaves the occurrence and
    /// re-enters it. Multi-exit occurrences are rejected too: bundling
    /// independent output cones into one PE can deadlock instruction
    /// selection with instance-level dependency cycles.
    pub fn utilizable_occurrences(&self, graph: &Graph) -> Vec<Vec<NodeId>> {
        let fan = graph.fanouts();
        self.occurrences
            .iter()
            .filter(|occ| {
                let set: std::collections::BTreeSet<NodeId> = occ
                    .iter()
                    .copied()
                    .filter(|&n| {
                        !matches!(graph.op(n), apex_ir::Op::Const(_) | apex_ir::Op::BitConst(_))
                    })
                    .collect();
                let mut exits = 0usize;
                let visible = set.iter().all(|&n| {
                    let internal = fan[n.index()].iter().filter(|c| set.contains(c)).count();
                    if internal == 0 {
                        exits += 1;
                        true
                    } else {
                        fan[n.index()].len() == internal
                    }
                });
                visible && exits == 1 && convex(&fan, &set)
            })
            .cloned()
            .collect()
    }

    /// MIS size over the utilizable occurrences only — how many
    /// fully-utilized PEs implementing this subgraph the application can
    /// actually instantiate.
    pub fn utilizable_mis(&self, graph: &Graph) -> usize {
        maximal_independent_set(&self.utilizable_occurrences(graph)).len()
    }
}

/// Extension descriptor considered during pattern growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Extension {
    /// Add a new node with `label`, connected to pattern node `at`.
    Node {
        at: u32,
        label: OpKind,
        new_is_dst: bool,
        port: Option<u8>,
    },
    /// Add an edge between two existing pattern nodes.
    Edge { src: u32, dst: u32, port: Option<u8> },
}

/// Convexity of an occurrence: no application path may leave the node set
/// and re-enter it (such an occurrence can never become one PE instance —
/// it would form a tile-level combinational cycle).
fn convex(fanouts: &[Vec<NodeId>], set: &std::collections::BTreeSet<NodeId>) -> bool {
    let mut stack: Vec<NodeId> = Vec::new();
    let mut seen: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
    for &m in set {
        for &c in &fanouts[m.index()] {
            if !set.contains(&c) && seen.insert(c) {
                stack.push(c);
            }
        }
    }
    while let Some(u) = stack.pop() {
        for &c in &fanouts[u.index()] {
            if set.contains(&c) {
                return false;
            }
            if seen.insert(c) {
                stack.push(c);
            }
        }
    }
    true
}

/// Result of a mining run: ranked subgraphs plus how the search ended.
#[derive(Debug, Clone)]
pub struct MineOutcome {
    /// Mined subgraphs, ranked by MIS size then pattern size.
    pub subgraphs: Vec<MinedSubgraph>,
    /// Whether the pattern-growth search ran to completion or was cut
    /// short by the configured [`StageBudget`].
    pub provenance: Provenance,
}

/// Mines frequent subgraphs of `graph`, returning them ranked by MIS size
/// (descending), then pattern size (descending) — the order in which the
/// paper's flow considers subgraphs for merging.
///
/// The search honours `config.budget`; when the budget trips, the
/// subgraphs found so far are returned with a partial [`Provenance`].
///
/// # Errors
/// Fails only on an armed fault-injection site (tests only).
pub fn mine(graph: &Graph, config: &MinerConfig) -> Result<MineOutcome, MineError> {
    apex_fault::fail_point!("mine::start", MineError::Injected("mine::start"));
    let mut meter = config.budget.start();
    meter.check_slow();
    let index = GraphIndex::new(graph);
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut results: Vec<MinedSubgraph> = Vec::new();
    // breadth-first over pattern sizes so the exploration budget spreads
    // across the whole label space instead of one deep region
    let mut frontier: std::collections::VecDeque<(Pattern, EmbeddingSet)> =
        std::collections::VecDeque::new();

    // level 1: frequent labels
    for (label, nodes) in index.labels() {
        if nodes.len() >= config.min_support {
            let p = Pattern::single(label);
            let es = find_embeddings_metered(&p, &index, config.max_embeddings, &mut meter);
            seen.insert(p.canonical_code());
            frontier.push_back((p, es));
        }
    }

    let mut explored = frontier.len();
    while let Some((pattern, embeddings)) = frontier.pop_front() {
        if pattern.len() >= config.min_pattern_nodes && pattern.edge_count() > 0 {
            if let Some(first) = embeddings.embeddings.first() {
                let occurrences = embeddings.occurrences();
                let mis = maximal_independent_set(&occurrences);
                results.push(MinedSubgraph {
                    representative: first.0.clone(),
                    mni_support: embeddings.mni_support(pattern.len()),
                    mis_size: mis.len(),
                    truncated: embeddings.truncated,
                    occurrences,
                    pattern: pattern.clone(),
                });
            }
        }
        // budget exhausted: drain the frontier (patterns already found stay
        // in the results) but stop growing new ones
        if !meter.tick() {
            continue;
        }
        if explored >= config.max_patterns {
            continue;
        }
        for ext in enumerate_extensions(&pattern, &embeddings, graph, config) {
            let child = match ext {
                Extension::Node {
                    at,
                    label,
                    new_is_dst,
                    port,
                } => pattern.extend_with_node(at, label, new_is_dst, port),
                Extension::Edge { src, dst, port } => pattern.extend_with_edge(src, dst, port),
            };
            let code = child.canonical_code();
            if !seen.insert(code) {
                continue;
            }
            let es = find_embeddings_metered(&child, &index, config.max_embeddings, &mut meter);
            if es.mni_support(child.len()) >= config.min_support {
                explored += 1;
                frontier.push_back((child, es));
            }
        }
    }

    rank(&mut results);
    Ok(MineOutcome {
        subgraphs: results,
        provenance: meter.provenance(),
    })
}

/// Ranks mined subgraphs: MIS size descending, then node count
/// descending (a bigger subgraph accelerates more ops per PE), then
/// canonical code for determinism.
pub fn rank(results: &mut [MinedSubgraph]) {
    results.sort_by(|a, b| {
        b.mis_size
            .cmp(&a.mis_size)
            .then(b.pattern.len().cmp(&a.pattern.len()))
            .then_with(|| a.pattern.canonical_code().cmp(&b.pattern.canonical_code()))
    });
}

fn enumerate_extensions(
    pattern: &Pattern,
    embeddings: &EmbeddingSet,
    graph: &Graph,
    config: &MinerConfig,
) -> BTreeSet<Extension> {
    let mut exts = BTreeSet::new();
    let can_grow = pattern.len() < config.max_pattern_nodes;
    for emb in &embeddings.embeddings {
        let image: BTreeMap<NodeId, u32> = emb
            .0
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();
        for (i, &u) in emb.0.iter().enumerate() {
            let i = i as u32;
            // consumers of u
            for &v in graph.fanouts()[u.index()].iter() {
                let vop = graph.op(v);
                if !vop.is_compute() {
                    continue;
                }
                let ports: Vec<Option<u8>> = if vop.commutative() {
                    vec![None]
                } else {
                    graph
                        .node(v)
                        .inputs()
                        .iter()
                        .enumerate()
                        .filter(|(_, &s)| s == u)
                        .map(|(p, _)| Some(p as u8))
                        .collect()
                };
                if let Some(&j) = image.get(&v) {
                    // internal edge candidate
                    let existing = pattern.in_edges(j as usize).len();
                    if existing < graph.node(v).inputs().len() {
                        for port in &ports {
                            let already = pattern
                                .in_edges(j as usize)
                                .iter()
                                .filter(|e| e.src == i && e.port == *port)
                                .count();
                            let avail = graph
                                .node(v)
                                .inputs()
                                .iter()
                                .enumerate()
                                .filter(|(p, &s)| {
                                    s == u && port.map_or(true, |pp| pp as usize == *p)
                                })
                                .count();
                            if already < avail {
                                exts.insert(Extension::Edge {
                                    src: i,
                                    dst: j,
                                    port: *port,
                                });
                            }
                        }
                    }
                } else if can_grow {
                    for port in &ports {
                        exts.insert(Extension::Node {
                            at: i,
                            label: vop.kind(),
                            new_is_dst: true,
                            port: *port,
                        });
                    }
                }
            }
            // producers of u (only grow new nodes here; internal edges are
            // handled from the producer side above)
            if can_grow {
                let uop = graph.op(u);
                for (p, &src) in graph.node(u).inputs().iter().enumerate() {
                    let sop = graph.op(src);
                    if !sop.is_compute() || image.contains_key(&src) {
                        continue;
                    }
                    let port = if uop.commutative() {
                        None
                    } else {
                        Some(p as u8)
                    };
                    exts.insert(Extension::Node {
                        at: i,
                        label: sop.kind(),
                        new_is_dst: false,
                        port,
                    });
                }
            }
        }
    }
    exts
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::Op;

    /// Fig. 3's convolution: ((((i0·w0)+(i1·w1))+(i2·w2))+(i3·w3))+c
    fn conv_graph() -> Graph {
        let mut g = Graph::new("conv");
        let mut acc = None;
        for k in 0..4u16 {
            let i = g.input();
            let w = g.constant(10 + k);
            let m = g.add(Op::Mul, &[i, w]);
            acc = Some(match acc {
                None => m,
                Some(a) => g.add(Op::Add, &[a, m]),
            });
        }
        let c = g.constant(3);
        let fin = g.add(Op::Add, &[acc.unwrap(), c]);
        g.output(fin);
        g
    }

    #[test]
    fn mines_fig3_frequent_subgraphs() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 3,
            max_pattern_nodes: 3,
            ..MinerConfig::default()
        };
        let mined = mine(&g, &cfg).unwrap().subgraphs;
        assert!(!mined.is_empty());
        // const→mul (Fig. 3b) must be found with 4 non-overlapping occurrences
        let const_mul = mined
            .iter()
            .find(|m| {
                m.pattern.len() == 2
                    && m.pattern.labels().contains(&OpKind::Const)
                    && m.pattern.labels().contains(&OpKind::Mul)
            })
            .unwrap();
        assert_eq!(const_mul.occurrences.len(), 4);
        assert_eq!(const_mul.mis_size, 4);
    }

    #[test]
    fn fig3d_add_chain_has_overlapping_occurrences() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 3,
            max_pattern_nodes: 2,
            ..MinerConfig::default()
        };
        let mined = mine(&g, &cfg).unwrap().subgraphs;
        let add_add = mined
            .iter()
            .find(|m| m.pattern.labels() == [OpKind::Add, OpKind::Add])
            .unwrap();
        // the 4-tap conv has a 4-add chain: 3 overlapping add→add
        // occurrences, of which only 2 are disjoint (the Fig. 4 effect)
        assert_eq!(add_add.occurrences.len(), 3);
        assert_eq!(add_add.mis_size, 2);
    }

    #[test]
    fn ranking_puts_largest_mis_first() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 2,
            max_pattern_nodes: 3,
            ..MinerConfig::default()
        };
        let mined = mine(&g, &cfg).unwrap().subgraphs;
        for w in mined.windows(2) {
            assert!(w[0].mis_size >= w[1].mis_size);
        }
    }

    #[test]
    fn step_budget_cuts_mining_short_with_partial_provenance() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 2,
            budget: StageBudget::unlimited().with_max_steps(8),
            ..MinerConfig::default()
        };
        let out = mine(&g, &cfg).unwrap();
        assert_eq!(out.provenance, Provenance::TruncatedByBudget);
        // an unlimited run finds strictly more
        let full = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .unwrap();
        assert!(full.subgraphs.len() >= out.subgraphs.len());
    }

    #[test]
    fn respects_min_support() {
        let g = conv_graph();
        let cfg = MinerConfig {
            min_support: 5,
            max_pattern_nodes: 3,
            ..MinerConfig::default()
        };
        let mined = mine(&g, &cfg).unwrap().subgraphs;
        // nothing appears 5+ times disjointly in this tiny graph except
        // nothing — all multi-node patterns have ≤ 5 occurrences; MNI ≤ 5
        for m in &mined {
            assert!(m.mni_support >= 5, "{}", m.pattern);
        }
    }

    #[test]
    fn mined_patterns_are_connected_and_valid() {
        let g = conv_graph();
        let mined = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(mined.provenance, Provenance::Completed);
        for m in &mined.subgraphs {
            assert!(m.pattern.is_connected(), "{}", m.pattern);
            let dp = m.to_datapath(&g, "p").unwrap();
            assert!(dp.validate().is_ok());
        }
    }

    #[test]
    fn every_occurrence_is_a_real_embedding() {
        // property: reported occurrences induce the pattern
        let g = conv_graph();
        let mined = mine(
            &g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .unwrap()
        .subgraphs;
        for m in &mined {
            for occ in &m.occurrences {
                let (p2, _) = Pattern::from_occurrence(&g, occ);
                // the occurrence's induced pattern must contain at least
                // the mined pattern's edges (it may have extra internal
                // edges the pattern does not require)
                assert!(p2.edge_count() >= m.pattern.edge_count());
                assert_eq!(p2.len(), m.pattern.len());
            }
        }
    }
}
