//! Subgraph-isomorphism search (VF2-style backtracking).
//!
//! [`find_embeddings`] enumerates every injective, label- and
//! port-consistent mapping of a [`Pattern`] into the compute region of an
//! application graph. This is the workhorse the frequent-subgraph miner
//! (our GraMi substitute) is built on.
//!
//! ## Hot-path layout
//!
//! Embeddings are stored column-wise in an [`EmbeddingList`] (one
//! `Vec<NodeId>` per pattern position, the Pangolin `USE_EMB_LIST`
//! struct-of-arrays design) instead of one heap `Vec` per embedding:
//! MNI support reads one contiguous column per position, and pushing an
//! embedding never allocates. Candidate pruning and injectivity use
//! per-label fixed-size bitsets over the graph's dense node-id space, so
//! the inner backtracking loop is allocation-free — per-depth candidate
//! buffers are reused across the whole search. The original scalar
//! matcher is retained verbatim as [`find_embeddings_reference`], the
//! executable specification the property tests compare against.

use crate::bitset::Bitset;
use crate::pattern::Pattern;
use apex_fault::{BudgetMeter, ResourceMeter, StageBudget};
use apex_ir::{Graph, NodeId, OpKind};
use std::collections::BTreeMap;

/// One embedding: pattern-node index → graph node.
///
/// The search itself stores embeddings column-wise in an
/// [`EmbeddingList`]; this row type remains for materialized single
/// embeddings (the reference matcher, representative extraction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Embedding(pub Vec<NodeId>);

impl Embedding {
    /// The occurrence's node set (sorted, deduplicated).
    pub fn node_set(&self) -> Vec<NodeId> {
        let mut v = self.0.clone();
        v.sort();
        v.dedup();
        v
    }
}

/// Struct-of-arrays embedding storage: `col(p)[i]` is the image of
/// pattern position `p` in embedding `i`.
#[derive(Debug, Clone, Default)]
pub struct EmbeddingList {
    cols: Vec<Vec<NodeId>>,
    rows: usize,
}

impl EmbeddingList {
    /// An empty list for a pattern with `positions` nodes.
    pub fn new(positions: usize) -> Self {
        EmbeddingList {
            cols: vec![Vec::new(); positions],
            rows: 0,
        }
    }

    /// Number of pattern positions (columns).
    pub fn positions(&self) -> usize {
        self.cols.len()
    }

    /// Number of embeddings (rows).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no embedding is stored.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The images of pattern position `p` across all embeddings.
    pub fn col(&self, p: usize) -> &[NodeId] {
        &self.cols[p]
    }

    /// Appends one embedding (pattern index → graph node).
    pub fn push(&mut self, row: &[NodeId]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (c, &n) in self.cols.iter_mut().zip(row) {
            c.push(n);
        }
        self.rows += 1;
    }

    /// Materializes embedding `i` as an owned row.
    pub fn row(&self, i: usize) -> Vec<NodeId> {
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Iterates the images of embedding `i` without materializing it.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.cols.iter().map(move |c| c[i])
    }

    /// Embedding `i`'s occurrence node set (sorted, deduplicated).
    pub fn node_set(&self, i: usize) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.row_iter(i).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Result of an embedding search.
#[derive(Debug, Clone)]
pub struct EmbeddingSet {
    /// The embeddings found (up to the limit), stored column-wise.
    pub list: EmbeddingList,
    /// Whether the search stopped early because the limit was hit.
    pub truncated: bool,
}

impl EmbeddingSet {
    /// Number of embeddings found.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the search found nothing.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Minimum-node-image (MNI) support, GraMi's anti-monotone support
    /// measure: the minimum over pattern positions of the number of
    /// distinct graph nodes appearing in that position.
    pub fn mni_support(&self, pattern_len: usize) -> usize {
        if self.list.is_empty() {
            return 0;
        }
        (0..pattern_len)
            .map(|i| {
                let mut imgs: Vec<NodeId> = self.list.col(i).to_vec();
                imgs.sort();
                imgs.dedup();
                imgs.len()
            })
            .min()
            .unwrap_or(0)
    }

    /// Distinct occurrence node sets.
    ///
    /// Automorphic embeddings of a symmetric pattern (e.g. the two
    /// orderings of the muls feeding a commutative add) produce identical
    /// node sets; they are collapsed here so occurrence counts and the
    /// MIS-based utilization estimate are not inflated.
    pub fn occurrences(&self) -> Vec<Vec<NodeId>> {
        let mut occ: Vec<Vec<NodeId>> =
            (0..self.list.len()).map(|i| self.list.node_set(i)).collect();
        occ.sort();
        occ.dedup();
        occ
    }
}

/// Precomputed indices over a graph, shared across many embedding
/// searches.
#[derive(Debug)]
pub struct GraphIndex<'g> {
    graph: &'g Graph,
    fanouts: Vec<Vec<NodeId>>,
    by_label: BTreeMap<OpKind, Vec<NodeId>>,
    /// Per-label membership bitsets over the dense node-id space: one
    /// probe answers "is this node a compute node with that label".
    label_bits: BTreeMap<OpKind, Bitset>,
}

impl<'g> GraphIndex<'g> {
    /// Indexes the compute region of `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        let fanouts = graph.fanouts();
        let mut by_label: BTreeMap<OpKind, Vec<NodeId>> = BTreeMap::new();
        for id in graph.compute_nodes() {
            by_label.entry(graph.op(id).kind()).or_default().push(id);
        }
        let label_bits = by_label
            .iter()
            .map(|(&k, nodes)| {
                let mut bits = Bitset::with_capacity(graph.len());
                for &n in nodes {
                    bits.insert(n.index());
                }
                (k, bits)
            })
            .collect();
        GraphIndex {
            graph,
            fanouts,
            by_label,
            label_bits,
        }
    }

    /// The indexed graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Compute nodes with the given label.
    pub fn nodes_with_label(&self, label: OpKind) -> &[NodeId] {
        self.by_label.get(&label).map_or(&[], Vec::as_slice)
    }

    /// O(1): is `id` a compute node carrying `label`?
    #[inline]
    pub fn has_label(&self, id: NodeId, label: OpKind) -> bool {
        self.label_bits
            .get(&label)
            .is_some_and(|b| b.contains(id.index()))
    }

    /// Consumers of a node.
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// Consumers of every node, indexed by node id (one shared table — the
    /// miner's extension enumeration must not rebuild it per embedding).
    pub fn fanouts(&self) -> &[Vec<NodeId>] {
        &self.fanouts
    }

    /// How many distinct compute labels exist.
    pub fn label_count(&self) -> usize {
        self.by_label.len()
    }

    /// Iterate labels with their node lists.
    pub fn labels(&self) -> impl Iterator<Item = (OpKind, &[NodeId])> + '_ {
        self.by_label.iter().map(|(k, v)| (*k, v.as_slice()))
    }
}

/// Enumerates embeddings of `pattern` into the indexed graph, stopping at
/// `limit`.
pub fn find_embeddings(pattern: &Pattern, index: &GraphIndex<'_>, limit: usize) -> EmbeddingSet {
    let mut meter = StageBudget::unlimited().start();
    find_embeddings_metered(pattern, index, limit, &mut meter)
}

/// Like [`find_embeddings`], but accounts every backtracking step against
/// an external [`BudgetMeter`] (the miner's stage budget). When the meter
/// trips, the set found so far is returned with `truncated` set.
pub fn find_embeddings_metered(
    pattern: &Pattern,
    index: &GraphIndex<'_>,
    limit: usize,
    meter: &mut BudgetMeter,
) -> EmbeddingSet {
    let mut resource = ResourceMeter::unlimited();
    find_embeddings_budgeted(pattern, index, limit, meter, &mut resource)
}

/// Like [`find_embeddings_metered`], but additionally charges every stored
/// embedding row against a [`ResourceMeter`] (the miner's memory budget).
/// A rejected charge truncates the search exactly like hitting `limit`:
/// the embeddings found so far are returned with `truncated` set, so
/// memory exhaustion degrades to lower-bound statistics instead of an
/// OOM abort.
pub fn find_embeddings_budgeted(
    pattern: &Pattern,
    index: &GraphIndex<'_>,
    limit: usize,
    meter: &mut BudgetMeter,
    resource: &mut ResourceMeter,
) -> EmbeddingSet {
    let n = pattern.len();
    if n == 0 {
        return EmbeddingSet {
            list: EmbeddingList::new(0),
            truncated: false,
        };
    }
    // Matching order: BFS over the pattern's undirected adjacency so every
    // node after the first has a matched neighbour.
    let order = matching_order(pattern);
    // Per pattern node, its incident edges in `pattern.edges()` order:
    // (other endpoint, this node is the edge's destination, port). Scanning
    // this short list replaces re-walking every pattern edge at every
    // consistency check and candidate derivation.
    let mut incident: Vec<Vec<(u32, bool, Option<u8>)>> = vec![Vec::new(); n];
    for (s, d, port) in pattern.edges() {
        incident[d as usize].push((s, true, port));
        incident[s as usize].push((d, false, port));
    }
    let mut state = SearchState {
        pattern,
        index,
        order: &order,
        incident: &incident,
        assignment: vec![None; n],
        used: Bitset::with_capacity(index.graph().len()),
        scratch: vec![Vec::new(); n],
        row: Vec::with_capacity(n),
        out: EmbeddingList::new(n),
        limit,
        truncated: false,
        meter,
        resource,
    };
    state.recurse(0);
    EmbeddingSet {
        list: state.out,
        truncated: state.truncated,
    }
}

fn matching_order(pattern: &Pattern) -> Vec<u32> {
    let n = pattern.len();
    let mut adj = vec![Vec::new(); n];
    for (s, d, _) in pattern.edges() {
        adj[s as usize].push(d as usize);
        adj[d as usize].push(s as usize);
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0usize);
    seen[0] = true;
    while let Some(u) = queue.pop_front() {
        order.push(u as u32);
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    // patterns are connected, but be safe with stragglers
    for v in 0..n {
        if !seen[v] {
            order.push(v as u32);
        }
    }
    order
}

struct SearchState<'a, 'g> {
    pattern: &'a Pattern,
    index: &'a GraphIndex<'g>,
    order: &'a [u32],
    /// Incident pattern edges per pattern node (see
    /// [`find_embeddings_metered`]).
    incident: &'a [Vec<(u32, bool, Option<u8>)>],
    assignment: Vec<Option<NodeId>>,
    /// Injectivity bitset over graph node ids — O(1) membership instead of
    /// a linear scan of the partial assignment.
    used: Bitset,
    /// Per-depth candidate buffers, reused across the whole search so the
    /// inner loop never allocates.
    scratch: Vec<Vec<NodeId>>,
    row: Vec<NodeId>,
    out: EmbeddingList,
    limit: usize,
    truncated: bool,
    meter: &'a mut BudgetMeter,
    /// Byte accounting for the stored embeddings (the miner's memory
    /// budget); a rejected charge truncates like a hit `limit`.
    resource: &'a mut ResourceMeter,
}

impl SearchState<'_, '_> {
    fn recurse(&mut self, depth: usize) {
        if self.truncated {
            return;
        }
        if !self.meter.tick() {
            self.truncated = true;
            return;
        }
        if depth == self.order.len() {
            self.row.clear();
            for a in &self.assignment {
                match a {
                    Some(n) => self.row.push(*n),
                    // unreachable: every position is assigned at full depth
                    None => return,
                }
            }
            if ports_feasible(self.pattern, self.index.graph(), &self.row) {
                let bytes = (self.row.len() * std::mem::size_of::<NodeId>()) as u64;
                if !self.resource.charge(bytes) {
                    self.truncated = true;
                    return;
                }
                self.out.push(&self.row);
                if self.out.len() >= self.limit {
                    self.truncated = true;
                }
            }
            return;
        }
        let pnode = self.order[depth] as usize;
        let label = self.pattern.labels()[pnode];
        let mut candidates = std::mem::take(&mut self.scratch[depth]);
        self.collect_candidates(pnode, label, &mut candidates);
        for k in 0..candidates.len() {
            let cand = candidates[k];
            if self.used.contains(cand.index()) {
                continue;
            }
            if !self.locally_consistent(pnode, cand) {
                continue;
            }
            self.assignment[pnode] = Some(cand);
            self.used.insert(cand.index());
            self.recurse(depth + 1);
            self.used.remove(cand.index());
            self.assignment[pnode] = None;
            if self.truncated {
                break;
            }
        }
        self.scratch[depth] = candidates;
    }

    /// Candidate graph nodes for a pattern node, written into `out` in
    /// ascending, deduplicated order: derived from the first already
    /// matched neighbour (in pattern-edge order) when one exists,
    /// otherwise the full label bucket. Label and compute-region checks
    /// are single bitset probes.
    fn collect_candidates(&self, pnode: usize, label: OpKind, out: &mut Vec<NodeId>) {
        out.clear();
        for &(other, pnode_is_dst, _) in &self.incident[pnode] {
            let Some(img) = self.assignment[other as usize] else {
                continue;
            };
            if pnode_is_dst {
                // candidates = consumers of img with the right label
                out.extend(
                    self.index
                        .fanout(img)
                        .iter()
                        .copied()
                        .filter(|&v| self.index.has_label(v, label)),
                );
            } else {
                // candidates = producers feeding img with the right label
                out.extend(
                    self.index
                        .graph()
                        .node(img)
                        .inputs()
                        .iter()
                        .copied()
                        .filter(|&v| self.index.has_label(v, label)),
                );
            }
            out.sort();
            out.dedup();
            return;
        }
        out.extend_from_slice(self.index.nodes_with_label(label));
    }

    /// Checks every pattern edge between `pnode` and already-matched nodes
    /// for directed adjacency (port injectivity is verified at the end).
    fn locally_consistent(&self, pnode: usize, cand: NodeId) -> bool {
        let g = self.index.graph();
        for &(other, pnode_is_dst, port) in &self.incident[pnode] {
            let Some(img) = self.assignment[other as usize] else {
                continue;
            };
            let ok = if pnode_is_dst {
                edge_exists(g, img, cand, port)
            } else {
                edge_exists(g, cand, img, port)
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

fn edge_exists(g: &Graph, src: NodeId, dst: NodeId, port: Option<u8>) -> bool {
    let inputs = g.node(dst).inputs();
    match port {
        Some(p) => inputs.get(p as usize) == Some(&src),
        None => inputs.contains(&src),
    }
}

/// Verifies that, for every pattern node, the pattern's in-edges can be
/// injectively assigned to distinct input ports of the image node. Needed
/// for parallel edges into commutative operations (e.g. `x * x`).
fn ports_feasible(pattern: &Pattern, g: &Graph, mapping: &[NodeId]) -> bool {
    for d in 0..pattern.len() {
        let edges = pattern.in_edges(d);
        if edges.is_empty() {
            continue;
        }
        let img_inputs = g.node(mapping[d]).inputs();
        // tiny backtracking over port assignments (arity <= 3)
        let mut used = vec![false; img_inputs.len()];
        if !assign(edges, 0, img_inputs, mapping, &mut used) {
            return false;
        }
    }
    true
}

fn assign(
    edges: &[crate::pattern::PatternEdge],
    k: usize,
    img_inputs: &[NodeId],
    mapping: &[NodeId],
    used: &mut Vec<bool>,
) -> bool {
    if k == edges.len() {
        return true;
    }
    let e = edges[k];
    let want = mapping[e.src as usize];
    let range: Vec<usize> = match e.port {
        Some(p) => vec![p as usize],
        None => (0..img_inputs.len()).collect(),
    };
    for p in range {
        if p < img_inputs.len() && !used[p] && img_inputs[p] == want {
            used[p] = true;
            if assign(edges, k + 1, img_inputs, mapping, used) {
                used[p] = false;
                return true;
            }
            used[p] = false;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Reference matcher
// ---------------------------------------------------------------------------

/// The original scalar embedding search, retained as the executable
/// specification of [`find_embeddings`]: per-candidate `Vec` allocation,
/// linear `used` scans, row-major output. Property tests assert the SoA
/// search returns exactly the same embedding sequence; it is not used on
/// any production path.
pub fn find_embeddings_reference(
    pattern: &Pattern,
    index: &GraphIndex<'_>,
    limit: usize,
) -> (Vec<Embedding>, bool) {
    let n = pattern.len();
    if n == 0 {
        return (Vec::new(), false);
    }
    let order = matching_order(pattern);
    let mut state = RefSearch {
        pattern,
        index,
        order: &order,
        assignment: vec![None; n],
        used: Vec::new(),
        out: Vec::new(),
        limit,
        truncated: false,
    };
    state.recurse(0);
    (state.out, state.truncated)
}

struct RefSearch<'a, 'g> {
    pattern: &'a Pattern,
    index: &'a GraphIndex<'g>,
    order: &'a [u32],
    assignment: Vec<Option<NodeId>>,
    used: Vec<NodeId>,
    out: Vec<Embedding>,
    limit: usize,
    truncated: bool,
}

impl RefSearch<'_, '_> {
    fn recurse(&mut self, depth: usize) {
        if self.truncated {
            return;
        }
        if depth == self.order.len() {
            let mapping: Option<Vec<NodeId>> = self.assignment.iter().copied().collect();
            let Some(mapping) = mapping else { return };
            if ports_feasible(self.pattern, self.index.graph(), &mapping) {
                self.out.push(Embedding(mapping));
                if self.out.len() >= self.limit {
                    self.truncated = true;
                }
            }
            return;
        }
        let pnode = self.order[depth] as usize;
        let label = self.pattern.labels()[pnode];
        let mut candidates = self.candidates(pnode, label);
        candidates.sort();
        candidates.dedup();
        for cand in candidates {
            if self.used.contains(&cand) {
                continue;
            }
            if !self.locally_consistent(pnode, cand) {
                continue;
            }
            self.assignment[pnode] = Some(cand);
            self.used.push(cand);
            self.recurse(depth + 1);
            self.used.pop();
            self.assignment[pnode] = None;
            if self.truncated {
                return;
            }
        }
    }

    fn candidates(&self, pnode: usize, label: OpKind) -> Vec<NodeId> {
        for (s, d, _) in self.pattern.edges() {
            let (s, d) = (s as usize, d as usize);
            if d == pnode {
                if let Some(img) = self.assignment[s] {
                    return self
                        .index
                        .fanout(img)
                        .iter()
                        .copied()
                        .filter(|&v| {
                            self.index.graph().op(v).is_compute()
                                && self.index.graph().op(v).kind() == label
                        })
                        .collect();
                }
            }
            if s == pnode {
                if let Some(img) = self.assignment[d] {
                    return self
                        .index
                        .graph()
                        .node(img)
                        .inputs()
                        .iter()
                        .copied()
                        .filter(|&v| {
                            self.index.graph().op(v).is_compute()
                                && self.index.graph().op(v).kind() == label
                        })
                        .collect();
                }
            }
        }
        self.index.nodes_with_label(label).to_vec()
    }

    fn locally_consistent(&self, pnode: usize, cand: NodeId) -> bool {
        let g = self.index.graph();
        for (s, d, port) in self.pattern.edges() {
            let (s, d) = (s as usize, d as usize);
            if d == pnode {
                if let Some(src_img) = self.assignment[s] {
                    if !edge_exists(g, src_img, cand, port) {
                        return false;
                    }
                }
            } else if s == pnode {
                if let Some(dst_img) = self.assignment[d] {
                    if !edge_exists(g, cand, dst_img, port) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{Graph, Op};

    /// out = ((a*b)+(c*d)) ; plus an extra mul feeding a sub
    fn sample() -> Graph {
        let mut g = Graph::new("t");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let d = g.input();
        let m1 = g.add(Op::Mul, &[a, b]);
        let m2 = g.add(Op::Mul, &[c, d]);
        let s = g.add(Op::Add, &[m1, m2]);
        let m3 = g.add(Op::Mul, &[a, d]);
        let sub = g.add(Op::Sub, &[s, m3]);
        g.output(sub);
        g
    }

    #[test]
    fn single_node_embeddings_count_label_occurrences() {
        let g = sample();
        let idx = GraphIndex::new(&g);
        let p = Pattern::single(OpKind::Mul);
        let es = find_embeddings(&p, &idx, 1000);
        assert_eq!(es.len(), 3);
        assert_eq!(es.mni_support(1), 3);
    }

    #[test]
    fn mul_add_chain_embeddings() {
        let g = sample();
        let idx = GraphIndex::new(&g);
        let p = Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Add, true, None);
        let es = find_embeddings(&p, &idx, 1000);
        // m1->s and m2->s
        assert_eq!(es.len(), 2);
        assert_eq!(es.mni_support(2), 1, "only one distinct add image");
        assert_eq!(es.occurrences().len(), 2);
    }

    #[test]
    fn port_constraints_restrict_matches() {
        let g = sample();
        let idx = GraphIndex::new(&g);
        // mul feeding sub on port 1 exists (m3), on port 0 does not
        let p1 = Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Sub, true, Some(1));
        let p0 = Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Sub, true, Some(0));
        assert_eq!(find_embeddings(&p1, &idx, 10).len(), 1);
        assert_eq!(find_embeddings(&p0, &idx, 10).len(), 0);
    }

    #[test]
    fn parallel_edges_require_distinct_ports() {
        // square: mul(x, x)
        let mut g = Graph::new("sq");
        let a = g.input();
        let b = g.input();
        let s = g.add(Op::Add, &[a, b]);
        let sq = g.add(Op::Mul, &[s, s]);
        let other = g.add(Op::Mul, &[a, b]); // not a square
        let o = g.add(Op::Add, &[sq, other]);
        g.output(o);
        let idx = GraphIndex::new(&g);
        let p = Pattern::single(OpKind::Add)
            .extend_with_node(0, OpKind::Mul, true, None)
            .extend_with_edge(0, 1, None); // add feeds BOTH mul ports
        let es = find_embeddings(&p, &idx, 10);
        // only the true square matches; `other` takes two different sources
        let squares: Vec<usize> = (0..es.len())
            .filter(|&i| g.op(es.list.col(1)[i]) == Op::Mul)
            .collect();
        assert_eq!(squares.len(), 1);
        assert_eq!(es.list.col(1)[squares[0]], sq);
    }

    #[test]
    fn embeddings_are_injective() {
        let g = sample();
        let idx = GraphIndex::new(&g);
        let p = Pattern::single(OpKind::Mul)
            .extend_with_node(0, OpKind::Add, true, None)
            .extend_with_node(1, OpKind::Mul, false, None);
        let es = find_embeddings(&p, &idx, 100);
        for i in 0..es.len() {
            assert_ne!(
                es.list.col(0)[i],
                es.list.col(2)[i],
                "two pattern muls need two graph muls"
            );
        }
        // (m1, s, m2) and (m2, s, m1)
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn truncation_reports_flag() {
        let g = sample();
        let idx = GraphIndex::new(&g);
        let p = Pattern::single(OpKind::Mul);
        let es = find_embeddings(&p, &idx, 2);
        assert!(es.truncated);
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn labels_index_covers_compute_nodes() {
        let g = sample();
        let idx = GraphIndex::new(&g);
        let total: usize = idx.labels().map(|(_, v)| v.len()).sum();
        assert_eq!(total, g.compute_nodes().len());
    }

    #[test]
    fn soa_matches_reference_on_samples() {
        let g = sample();
        let idx = GraphIndex::new(&g);
        let patterns = [
            Pattern::single(OpKind::Mul),
            Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Add, true, None),
            Pattern::single(OpKind::Mul)
                .extend_with_node(0, OpKind::Add, true, None)
                .extend_with_node(1, OpKind::Mul, false, None),
        ];
        for p in &patterns {
            let fast = find_embeddings(p, &idx, 1000);
            let (rows, truncated) = find_embeddings_reference(p, &idx, 1000);
            assert_eq!(fast.truncated, truncated);
            assert_eq!(fast.len(), rows.len());
            for (i, e) in rows.iter().enumerate() {
                assert_eq!(fast.list.row(i), e.0, "row {i} differs for {p}");
            }
        }
    }

    #[test]
    fn embedding_list_row_column_round_trip() {
        let mut list = EmbeddingList::new(3);
        list.push(&[NodeId(5), NodeId(1), NodeId(9)]);
        list.push(&[NodeId(2), NodeId(2), NodeId(7)]);
        assert_eq!(list.len(), 2);
        assert_eq!(list.positions(), 3);
        assert_eq!(list.col(0), &[NodeId(5), NodeId(2)]);
        assert_eq!(list.row(1), vec![NodeId(2), NodeId(2), NodeId(7)]);
        assert_eq!(list.node_set(1), vec![NodeId(2), NodeId(7)]);
    }
}
