//! Maximal-independent-set analysis of subgraph occurrences
//! (paper Section 3.2, Fig. 4).
//!
//! Overlapping occurrences of a frequent subgraph cannot all be
//! accelerated by fully-utilized PEs. Each occurrence becomes a node of an
//! overlap graph (edge = two occurrences share an application node); the
//! size of a maximal independent set of that graph estimates how many
//! fully-utilized PEs implementing the subgraph the application can use.

use apex_ir::NodeId;

/// Builds the overlap graph: `adj[i]` lists occurrences sharing at least
/// one application node with occurrence `i`.
pub fn overlap_graph(occurrences: &[Vec<NodeId>]) -> Vec<Vec<usize>> {
    let n = occurrences.len();
    let mut adj = vec![Vec::new(); n];
    // occurrence node lists are sorted (they come from Embedding::node_set)
    for i in 0..n {
        for j in (i + 1)..n {
            if sorted_intersects(&occurrences[i], &occurrences[j]) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    adj
}

fn sorted_intersects(a: &[NodeId], b: &[NodeId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Greedy maximal independent set: repeatedly selects the remaining node
/// with the fewest remaining neighbours and removes its neighbourhood.
///
/// Returns the indices of the selected occurrences. The result is a
/// *maximal* independent set (cannot be grown), matching the paper's
/// definition; the min-degree heuristic makes it a good estimate of the
/// maximum.
pub fn maximal_independent_set(occurrences: &[Vec<NodeId>]) -> Vec<usize> {
    let adj = overlap_graph(occurrences);
    let n = occurrences.len();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut chosen = Vec::new();
    loop {
        let mut best: Option<usize> = None;
        for v in 0..n {
            if alive[v] && best.is_none_or(|b| degree[v] < degree[b]) {
                best = Some(v);
            }
        }
        let Some(v) = best else { break };
        chosen.push(v);
        alive[v] = false;
        for &u in &adj[v] {
            if alive[u] {
                alive[u] = false;
                for &w in &adj[u] {
                    degree[w] = degree[w].saturating_sub(1);
                }
            }
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Convenience: the MIS size of a set of occurrences.
pub fn mis_size(occurrences: &[Vec<NodeId>]) -> usize {
    maximal_independent_set(occurrences).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn disjoint_occurrences_all_selected() {
        let occ = vec![ids(&[0, 1]), ids(&[2, 3]), ids(&[4, 5])];
        assert_eq!(mis_size(&occ), 3);
    }

    #[test]
    fn fully_overlapping_occurrences_pick_one() {
        let occ = vec![ids(&[0, 1]), ids(&[1, 2]), ids(&[0, 2])];
        assert_eq!(mis_size(&occ), 1);
    }

    #[test]
    fn chain_overlap_picks_alternating() {
        // occurrences in a path: 0-1, 1-2, 2-3, 3-4 → MIS = {0-1, 2-3} or
        // similar, size 2
        let occ = vec![ids(&[0, 1]), ids(&[1, 2]), ids(&[2, 3]), ids(&[3, 4])];
        assert_eq!(mis_size(&occ), 2);
    }

    #[test]
    fn paper_fig4_example() {
        // Fig. 4: four occurrences of the two-add chain in a conv tree;
        // occurrences (a1,a2), (a2,a3), (a3,a4), (a4,a5) – MIS size 2
        let occ = vec![ids(&[10, 11]), ids(&[11, 12]), ids(&[12, 13]), ids(&[13, 14])];
        let mis = maximal_independent_set(&occ);
        assert_eq!(mis.len(), 2);
        // chosen occurrences must be pairwise disjoint
        for (i, &a) in mis.iter().enumerate() {
            for &b in &mis[i + 1..] {
                assert!(!super::sorted_intersects(&occ[a], &occ[b]));
            }
        }
    }

    #[test]
    fn result_is_independent_and_maximal() {
        let occ = vec![
            ids(&[0, 1]),
            ids(&[1, 2]),
            ids(&[3, 4]),
            ids(&[4, 5]),
            ids(&[6, 7]),
        ];
        let adj = overlap_graph(&occ);
        let mis = maximal_independent_set(&occ);
        // independent
        for (i, &a) in mis.iter().enumerate() {
            for &b in &mis[i + 1..] {
                assert!(!adj[a].contains(&b));
            }
        }
        // maximal: every non-member has a chosen neighbour
        for v in 0..occ.len() {
            if !mis.contains(&v) {
                assert!(adj[v].iter().any(|u| mis.contains(u)), "{v} could be added");
            }
        }
    }

    #[test]
    fn empty_input_gives_empty_set() {
        assert_eq!(mis_size(&[]), 0);
    }
}
