//! Maximal-independent-set analysis of subgraph occurrences
//! (paper Section 3.2, Fig. 4).
//!
//! Overlapping occurrences of a frequent subgraph cannot all be
//! accelerated by fully-utilized PEs. Each occurrence becomes a node of an
//! overlap graph (edge = two occurrences share an application node); the
//! size of a maximal independent set of that graph estimates how many
//! fully-utilized PEs implementing the subgraph the application can use.

use apex_fault::ResourceMeter;
use apex_ir::NodeId;

/// Builds the overlap graph: `adj[i]` lists occurrences sharing at least
/// one application node with occurrence `i` (each list sorted ascending,
/// duplicate-free).
///
/// Built from a node → occurrence inverted index rather than all-pairs
/// node-set intersection: every application node lists the occurrences
/// containing it, and exactly the pairs co-listed somewhere become edges.
/// Cost is proportional to the overlap actually present instead of
/// O(n²) pairwise scans, which dominated MIS analysis for patterns with
/// thousands of occurrences.
pub fn overlap_graph(occurrences: &[Vec<NodeId>]) -> Vec<Vec<usize>> {
    let n = occurrences.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    if n == 0 {
        return adj;
    }
    let max_node = occurrences
        .iter()
        .flatten()
        .map(|id| id.index())
        .max()
        .unwrap_or(0);
    let mut owners: Vec<Vec<u32>> = vec![Vec::new(); max_node + 1];
    for (i, occ) in occurrences.iter().enumerate() {
        for &node in occ {
            let slot = &mut owners[node.index()];
            // occurrence node sets are deduplicated, but stay correct for
            // callers that pass repeated nodes
            if slot.last() != Some(&(i as u32)) {
                slot.push(i as u32);
            }
        }
    }
    for list in &owners {
        for (k, &a) in list.iter().enumerate() {
            for &b in &list[k + 1..] {
                adj[a as usize].push(b as usize);
                adj[b as usize].push(a as usize);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

#[cfg(test)]
fn sorted_intersects(a: &[NodeId], b: &[NodeId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Like [`overlap_graph`], but charges the inverted index and the
/// adjacency lists against `resource` as they grow; `None` the moment a
/// charge is rejected (nothing partial escapes — a missing edge would let
/// overlapping occurrences masquerade as independent).
fn overlap_graph_charged(
    occurrences: &[Vec<NodeId>],
    resource: &mut ResourceMeter,
) -> Option<Vec<Vec<usize>>> {
    let n = occurrences.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    if n == 0 {
        return Some(adj);
    }
    let max_node = occurrences
        .iter()
        .flatten()
        .map(|id| id.index())
        .max()
        .unwrap_or(0);
    let index_bytes = ((max_node + 1) * std::mem::size_of::<Vec<u32>>()) as u64;
    if !resource.charge(index_bytes) {
        return None;
    }
    let mut owners: Vec<Vec<u32>> = vec![Vec::new(); max_node + 1];
    for (i, occ) in occurrences.iter().enumerate() {
        if !resource.charge((occ.len() * std::mem::size_of::<u32>()) as u64) {
            return None;
        }
        for &node in occ {
            let slot = &mut owners[node.index()];
            if slot.last() != Some(&(i as u32)) {
                slot.push(i as u32);
            }
        }
    }
    let edge_bytes = (2 * std::mem::size_of::<usize>()) as u64;
    for list in &owners {
        for (k, &a) in list.iter().enumerate() {
            for &b in &list[k + 1..] {
                if !resource.charge(edge_bytes) {
                    return None;
                }
                adj[a as usize].push(b as usize);
                adj[b as usize].push(a as usize);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    Some(adj)
}

/// Greedy maximal independent set: repeatedly selects the remaining node
/// with the fewest remaining neighbours and removes its neighbourhood.
///
/// Returns the indices of the selected occurrences. The result is a
/// *maximal* independent set (cannot be grown), matching the paper's
/// definition; the min-degree heuristic makes it a good estimate of the
/// maximum.
pub fn maximal_independent_set(occurrences: &[Vec<NodeId>]) -> Vec<usize> {
    let adj = overlap_graph(occurrences);
    greedy_mis(occurrences.len(), &adj)
}

/// Budgeted MIS analysis for the miner: accounts the overlap-analysis
/// scratch (inverted index + adjacency lists) against `resource`. When a
/// charge is rejected the analysis deterministically retries over the
/// first half of the occurrence list, repeatedly, until it fits — so
/// memory exhaustion degrades to a conservative utilization estimate over
/// an occurrence *prefix* instead of aborting. Returns the selected
/// indices and the prefix length analysed (`< occurrences.len()` exactly
/// when the budget truncated the analysis); the caller must shrink its
/// stored occurrence list to that prefix to stay verifier-consistent.
/// Scratch charges are released before returning (the structures are
/// dropped here).
pub fn maximal_independent_set_budgeted(
    occurrences: &[Vec<NodeId>],
    resource: &mut ResourceMeter,
) -> (Vec<usize>, usize) {
    let mut n = occurrences.len();
    loop {
        let before = resource.used();
        match overlap_graph_charged(&occurrences[..n], resource) {
            Some(adj) => {
                let mis = greedy_mis(n, &adj);
                resource.release(resource.used() - before);
                return (mis, n);
            }
            None => {
                resource.release(resource.used() - before);
                n /= 2;
            }
        }
    }
}

/// The greedy min-degree selection shared by the plain and budgeted
/// entry points.
fn greedy_mis(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut chosen = Vec::new();
    loop {
        let mut best: Option<usize> = None;
        for v in 0..n {
            if alive[v] && best.is_none_or(|b| degree[v] < degree[b]) {
                best = Some(v);
            }
        }
        let Some(v) = best else { break };
        chosen.push(v);
        alive[v] = false;
        for &u in &adj[v] {
            if alive[u] {
                alive[u] = false;
                for &w in &adj[u] {
                    degree[w] = degree[w].saturating_sub(1);
                }
            }
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Convenience: the MIS size of a set of occurrences.
pub fn mis_size(occurrences: &[Vec<NodeId>]) -> usize {
    maximal_independent_set(occurrences).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn disjoint_occurrences_all_selected() {
        let occ = vec![ids(&[0, 1]), ids(&[2, 3]), ids(&[4, 5])];
        assert_eq!(mis_size(&occ), 3);
    }

    #[test]
    fn fully_overlapping_occurrences_pick_one() {
        let occ = vec![ids(&[0, 1]), ids(&[1, 2]), ids(&[0, 2])];
        assert_eq!(mis_size(&occ), 1);
    }

    #[test]
    fn chain_overlap_picks_alternating() {
        // occurrences in a path: 0-1, 1-2, 2-3, 3-4 → MIS = {0-1, 2-3} or
        // similar, size 2
        let occ = vec![ids(&[0, 1]), ids(&[1, 2]), ids(&[2, 3]), ids(&[3, 4])];
        assert_eq!(mis_size(&occ), 2);
    }

    #[test]
    fn paper_fig4_example() {
        // Fig. 4: four occurrences of the two-add chain in a conv tree;
        // occurrences (a1,a2), (a2,a3), (a3,a4), (a4,a5) – MIS size 2
        let occ = vec![ids(&[10, 11]), ids(&[11, 12]), ids(&[12, 13]), ids(&[13, 14])];
        let mis = maximal_independent_set(&occ);
        assert_eq!(mis.len(), 2);
        // chosen occurrences must be pairwise disjoint
        for (i, &a) in mis.iter().enumerate() {
            for &b in &mis[i + 1..] {
                assert!(!super::sorted_intersects(&occ[a], &occ[b]));
            }
        }
    }

    #[test]
    fn result_is_independent_and_maximal() {
        let occ = vec![
            ids(&[0, 1]),
            ids(&[1, 2]),
            ids(&[3, 4]),
            ids(&[4, 5]),
            ids(&[6, 7]),
        ];
        let adj = overlap_graph(&occ);
        let mis = maximal_independent_set(&occ);
        // independent
        for (i, &a) in mis.iter().enumerate() {
            for &b in &mis[i + 1..] {
                assert!(!adj[a].contains(&b));
            }
        }
        // maximal: every non-member has a chosen neighbour
        for v in 0..occ.len() {
            if !mis.contains(&v) {
                assert!(adj[v].iter().any(|u| mis.contains(u)), "{v} could be added");
            }
        }
    }

    #[test]
    fn empty_input_gives_empty_set() {
        assert_eq!(mis_size(&[]), 0);
    }

    #[test]
    fn inverted_index_matches_pairwise_reference() {
        // deterministic xorshift RNG
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 1 + (rand() % 20) as usize;
            let occ: Vec<Vec<NodeId>> = (0..n)
                .map(|_| {
                    let k = 1 + (rand() % 5) as usize;
                    let mut v: Vec<NodeId> =
                        (0..k).map(|_| NodeId((rand() % 30) as u32)).collect();
                    v.sort();
                    v.dedup();
                    v
                })
                .collect();
            let got = overlap_graph(&occ);
            // all-pairs reference (the original implementation)
            let mut want = vec![Vec::new(); n];
            for i in 0..n {
                for j in (i + 1)..n {
                    if sorted_intersects(&occ[i], &occ[j]) {
                        want[i].push(j);
                        want[j].push(i);
                    }
                }
            }
            assert_eq!(got, want);
        }
    }

    #[test]
    fn budgeted_mis_with_room_matches_unbudgeted() {
        let occ = vec![ids(&[0, 1]), ids(&[1, 2]), ids(&[2, 3]), ids(&[3, 4])];
        let mut meter = apex_fault::ResourceBudget::unlimited().start();
        let (mis, analysed) = maximal_independent_set_budgeted(&occ, &mut meter);
        assert_eq!(analysed, occ.len());
        assert_eq!(mis, maximal_independent_set(&occ));
        assert!(!meter.exhausted());
        assert_eq!(meter.used(), 0, "scratch charges are released");
    }

    #[test]
    fn budgeted_mis_truncates_to_a_prefix_deterministically() {
        let occ: Vec<Vec<NodeId>> = (0..64).map(|i| ids(&[i, i + 1])).collect();
        let mut meter = apex_fault::ResourceBudget::with_max_bytes(600).start();
        let (mis, analysed) = maximal_independent_set_budgeted(&occ, &mut meter);
        assert!(meter.exhausted(), "a 600-byte budget cannot fit 64 occurrences");
        assert!(analysed < occ.len());
        assert_eq!(mis, maximal_independent_set(&occ[..analysed]));
        // deterministic: same inputs + budget → same truncation point
        let mut meter2 = apex_fault::ResourceBudget::with_max_bytes(600).start();
        let (mis2, analysed2) = maximal_independent_set_budgeted(&occ, &mut meter2);
        assert_eq!((mis, analysed), (mis2, analysed2));
    }

    #[test]
    fn zero_budget_mis_degrades_to_empty_not_panic() {
        let occ = vec![ids(&[0, 1]), ids(&[1, 2])];
        let mut meter = apex_fault::ResourceBudget::with_max_bytes(0).start();
        let (mis, analysed) = maximal_independent_set_budgeted(&occ, &mut meter);
        assert_eq!(analysed, 0);
        assert!(mis.is_empty());
    }

    #[test]
    fn repeated_nodes_within_an_occurrence_add_no_self_edges() {
        // defensive: callers outside the miner may pass un-deduplicated
        // node lists; the inverted index must not self-link an occurrence
        let occ = vec![ids(&[1, 1, 2]), ids(&[3, 4])];
        let adj = overlap_graph(&occ);
        assert!(adj[0].is_empty() && adj[1].is_empty());
        assert_eq!(mis_size(&occ), 2);
    }
}
