//! Pattern graphs: the small labelled digraphs the miner searches for.
//!
//! A [`Pattern`] is a connected DAG whose nodes carry [`OpKind`] labels and
//! whose edges optionally constrain the destination port. Port constraints
//! are recorded only for non-commutative destinations — `x - y` and
//! `y - x` are different computations, while `x + y` and `y + x` are not
//! (Section 3.3's destination-port matching rule).

use crate::MineError;
use apex_ir::{Graph, NodeId, OpKind, ValueType};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// An in-edge of a pattern node: source pattern node plus an optional
/// destination-port constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatternEdge {
    /// Source pattern-node index.
    pub src: u32,
    /// Destination port, or `None` when the destination is commutative.
    pub port: Option<u8>,
}

/// A connected, directed, labelled pattern graph.
///
/// The canonical code is memoized: the miner derives it once (at
/// de-duplication time) and every later consumer — ranking tie-breaks,
/// subgraph selection, the verifier — reuses the cached string instead of
/// re-running the permutation search. The cache is identity-transparent:
/// equality, hashing, and serialization ignore it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pattern {
    labels: Vec<OpKind>,
    /// Per destination node: its in-edges.
    in_edges: Vec<Vec<PatternEdge>>,
    /// Memoized [`Pattern::canonical_code`].
    code: OnceLock<String>,
}

impl PartialEq for Pattern {
    fn eq(&self, other: &Self) -> bool {
        self.labels == other.labels && self.in_edges == other.in_edges
    }
}

impl Eq for Pattern {}

impl Hash for Pattern {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.labels.hash(state);
        self.in_edges.hash(state);
    }
}

impl Pattern {
    /// Single-node pattern.
    pub fn single(label: OpKind) -> Self {
        Pattern {
            labels: vec![label],
            in_edges: vec![Vec::new()],
            code: OnceLock::new(),
        }
    }

    /// Node labels, indexed by pattern-node id.
    pub fn labels(&self) -> &[OpKind] {
        &self.labels
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the pattern has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.in_edges.iter().map(Vec::len).sum()
    }

    /// In-edges of node `d`.
    pub fn in_edges(&self, d: usize) -> &[PatternEdge] {
        &self.in_edges[d]
    }

    /// Iterates `(src, dst, port)` over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, Option<u8>)> + '_ {
        self.in_edges
            .iter()
            .enumerate()
            .flat_map(|(d, es)| es.iter().map(move |e| (e.src, d as u32, e.port)))
    }

    /// Extends with a fresh node and an edge between it and an existing
    /// node. `new_is_dst` picks the edge direction: `true` means
    /// `existing → new`, `false` means `new → existing`.
    ///
    /// Returns the extended pattern (the new node has the highest index).
    ///
    /// # Panics
    /// Panics if `existing` is out of range.
    pub fn extend_with_node(
        &self,
        existing: u32,
        new_label: OpKind,
        new_is_dst: bool,
        port: Option<u8>,
    ) -> Pattern {
        assert!((existing as usize) < self.len(), "node out of range");
        // fresh code cache: the extended pattern is a different graph
        let mut p = Pattern {
            labels: self.labels.clone(),
            in_edges: self.in_edges.clone(),
            code: OnceLock::new(),
        };
        p.labels.push(new_label);
        p.in_edges.push(Vec::new());
        let new_idx = (p.labels.len() - 1) as u32;
        if new_is_dst {
            p.in_edges[new_idx as usize].push(PatternEdge {
                src: existing,
                port,
            });
        } else {
            p.in_edges[existing as usize].push(PatternEdge { src: new_idx, port });
        }
        p
    }

    /// Extends with an edge between two existing nodes.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn extend_with_edge(&self, src: u32, dst: u32, port: Option<u8>) -> Pattern {
        assert!((src as usize) < self.len() && (dst as usize) < self.len());
        let mut p = Pattern {
            labels: self.labels.clone(),
            in_edges: self.in_edges.clone(),
            code: OnceLock::new(),
        };
        p.in_edges[dst as usize].push(PatternEdge { src, port });
        p
    }

    /// Whether the pattern is connected when edges are read undirected.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return false;
        }
        let n = self.len();
        let mut adj = vec![Vec::new(); n];
        for (s, d, _) in self.edges() {
            adj[s as usize].push(d as usize);
            adj[d as usize].push(s as usize);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// A topological order of the pattern nodes.
    ///
    /// # Panics
    /// Panics if the pattern has a cycle (impossible for patterns embedded
    /// in a DAG).
    pub fn topo_order(&self) -> Vec<u32> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for (_, d, _) in self.edges() {
            indeg[d as usize] += 1;
        }
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        while let Some(u) = ready.pop() {
            order.push(u);
            for (s, d, _) in self.edges() {
                if s == u {
                    indeg[d as usize] -= 1;
                    if indeg[d as usize] == 0 {
                        ready.push(d);
                    }
                }
            }
        }
        assert_eq!(order.len(), n, "pattern has a cycle");
        order
    }

    /// A canonical, permutation-invariant code for pattern isomorphism
    /// de-duplication.
    ///
    /// Nodes are partitioned into classes by `(label, in-degree,
    /// out-degree)`; all permutations within classes are tried and the
    /// lexicographically smallest edge encoding wins. Pattern sizes are
    /// small (the miner caps them), so the class-restricted permutation
    /// search is cheap.
    ///
    /// The result is memoized: repeated calls (ranking tie-breaks,
    /// selection sorts) return the cached string. The class prefix is
    /// permutation-invariant, so candidates are compared per sorted edge
    /// string — `','` sorts below every character an edge string can
    /// contain (digits, `-`, `:`, `>`), making element-wise comparison of
    /// the sorted edge lists equivalent to comparing the joined code
    /// strings the original single-pass implementation built.
    pub fn canonical_code(&self) -> String {
        self.code.get_or_init(|| self.compute_canonical_code()).clone()
    }

    /// Memoized [`Pattern::canonical_code`] without the `String` clone.
    pub fn canonical_code_ref(&self) -> &str {
        self.code.get_or_init(|| self.compute_canonical_code())
    }

    #[allow(clippy::expect_used)]
    fn compute_canonical_code(&self) -> String {
        let n = self.len();
        let mut outdeg = vec![0usize; n];
        for (s, _, _) in self.edges() {
            outdeg[s as usize] += 1;
        }
        // class key per node
        let keys: Vec<(OpKind, usize, usize)> = (0..n)
            .map(|i| (self.labels[i], self.in_edges[i].len(), outdeg[i]))
            .collect();
        // order classes canonically
        let mut class_of: BTreeMap<(OpKind, usize, usize), Vec<usize>> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            class_of.entry(*k).or_default().push(i);
        }
        let classes: Vec<Vec<usize>> = class_of.values().cloned().collect();

        // base position for every class in the canonical numbering
        let mut base = Vec::with_capacity(classes.len());
        let mut acc = 0;
        for c in &classes {
            base.push(acc);
            acc += c.len();
        }

        let raw_edges: Vec<(usize, usize, i32)> = self
            .edges()
            .map(|(s, d, p)| (s as usize, d as usize, p.map_or(-1i32, i32::from)))
            .collect();
        let mut best: Option<Vec<String>> = None;
        let mut scratch: Vec<String> = Vec::with_capacity(raw_edges.len());
        let mut perm = vec![0usize; n]; // original node -> canonical index
        permute_classes(&classes, &base, 0, &mut perm, &mut |perm| {
            scratch.clear();
            for &(s, d, p) in &raw_edges {
                scratch.push(format!("{}>{}:{}", perm[s], perm[d], p));
            }
            scratch.sort();
            match &best {
                Some(b) if b.as_slice() <= scratch.as_slice() => {}
                _ => best = Some(scratch.clone()),
            }
        });
        // invariant: permute_classes always visits the identity permutation,
        // so `best` is set for every non-empty pattern (and single() makes
        // empty patterns unconstructible from the public API)
        let edges = best.expect("at least one permutation");
        let mut code = String::new();
        for c in &classes {
            let (l, i, o) = keys[c[0]];
            code.push_str(&format!("[{l:?}/{i}/{o}x{}]", c.len()));
        }
        code.push('|');
        code.push_str(&edges.join(","));
        code
    }

    /// Materializes the pattern into an executable datapath [`Graph`].
    ///
    /// Each pattern node becomes an IR node whose concrete [`Op`] is taken
    /// from `occurrence` (so constant payloads and LUT tables survive);
    /// unconstrained ports receive fresh primary inputs and sink nodes get
    /// primary outputs. Pattern edges without a port constraint are
    /// assigned to free ports left-to-right.
    ///
    /// # Errors
    /// Fails when `occurrence` does not map every pattern node, the ops
    /// mismatch the labels, or the in-edges overflow the ops' ports.
    pub fn to_datapath(
        &self,
        source: &Graph,
        occurrence: &[NodeId],
        name: &str,
    ) -> Result<Graph, MineError> {
        if occurrence.len() != self.len() {
            return Err(MineError::OccurrenceSize {
                expected: self.len(),
                got: occurrence.len(),
            });
        }
        let mut g = Graph::new(name);
        let order = self.topo_order();
        let mut new_id: Vec<Option<NodeId>> = vec![None; self.len()];
        for &pi in &order {
            let op = source.op(occurrence[pi as usize]);
            if op.kind() != self.labels[pi as usize] {
                return Err(MineError::LabelMismatch { node: pi });
            }
            let arity = op.arity();
            let mut port_src: Vec<Option<NodeId>> = vec![None; arity];
            // constrained edges first
            for e in &self.in_edges[pi as usize] {
                if let Some(p) = e.port {
                    let src = new_id[e.src as usize]
                        .ok_or(MineError::UnplacedNode { node: e.src })?;
                    let slot = port_src
                        .get_mut(p as usize)
                        .ok_or(MineError::PortsExhausted { node: pi })?;
                    if slot.is_some() {
                        return Err(MineError::DuplicatePort { node: pi, port: p });
                    }
                    *slot = Some(src);
                }
            }
            for e in &self.in_edges[pi as usize] {
                if e.port.is_none() {
                    let free = port_src
                        .iter()
                        .position(Option::is_none)
                        .ok_or(MineError::PortsExhausted { node: pi })?;
                    port_src[free] = Some(
                        new_id[e.src as usize]
                            .ok_or(MineError::UnplacedNode { node: e.src })?,
                    );
                }
            }
            let tys = op.input_types();
            let inputs: Vec<NodeId> = port_src
                .into_iter()
                .enumerate()
                .map(|(slot, s)| {
                    s.unwrap_or_else(|| match tys[slot] {
                        ValueType::Word => g.input(),
                        ValueType::Bit => g.bit_input(),
                    })
                })
                .collect();
            new_id[pi as usize] = Some(g.add(op, &inputs));
        }
        // sinks become outputs
        let mut has_consumer = vec![false; self.len()];
        for (s, _, _) in self.edges() {
            has_consumer[s as usize] = true;
        }
        for i in 0..self.len() {
            if !has_consumer[i] {
                let id = new_id[i].ok_or(MineError::UnplacedNode { node: i as u32 })?;
                match g.op(id).output_type() {
                    ValueType::Word => g.output(id),
                    ValueType::Bit => g.bit_output(id),
                };
            }
        }
        Ok(g)
    }

    /// Builds the pattern corresponding to a concrete set of graph nodes:
    /// labels from the nodes, edges from every graph edge internal to the
    /// set (with port constraints for non-commutative destinations).
    ///
    /// Returns the pattern and the node order used (pattern index →
    /// graph node).
    pub fn from_occurrence(graph: &Graph, nodes: &[NodeId]) -> (Pattern, Vec<NodeId>) {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort();
        sorted.dedup();
        let index_of: BTreeMap<NodeId, u32> = sorted
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();
        let labels: Vec<OpKind> = sorted.iter().map(|&n| graph.op(n).kind()).collect();
        let mut in_edges: Vec<Vec<PatternEdge>> = vec![Vec::new(); sorted.len()];
        for (&gid, &pid) in &index_of {
            let op = graph.op(gid);
            for (port, &src) in graph.node(gid).inputs().iter().enumerate() {
                if let Some(&ps) = index_of.get(&src) {
                    let constraint = if op.commutative() {
                        None
                    } else {
                        Some(port as u8)
                    };
                    in_edges[pid as usize].push(PatternEdge {
                        src: ps,
                        port: constraint,
                    });
                }
            }
        }
        (
            Pattern {
                labels,
                in_edges,
                code: OnceLock::new(),
            },
            sorted,
        )
    }
}

fn permute_classes(
    classes: &[Vec<usize>],
    base: &[usize],
    ci: usize,
    perm: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if ci == classes.len() {
        visit(perm);
        return;
    }
    let members = &classes[ci];
    let mut order: Vec<usize> = (0..members.len()).collect();
    permute_within(&mut order, 0, &mut |o| {
        // assign canonical slots base[ci]..base[ci]+len
        // (perm entries for other classes are untouched)
        let mut p = perm.clone();
        for (slot, &mi) in o.iter().enumerate() {
            p[members[mi]] = base[ci] + slot;
        }
        *perm = p;
        permute_classes(classes, base, ci + 1, perm, visit);
    });
}

fn permute_within(arr: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&Vec<usize>)) {
    if k == arr.len() {
        visit(arr);
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute_within(arr, k + 1, visit);
        arr.swap(k, i);
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<String> = self.labels.iter().map(|l| l.to_string()).collect();
        write!(f, "{{{}; ", labels.join(","))?;
        let edges: Vec<String> = self
            .edges()
            .map(|(s, d, p)| match p {
                Some(p) => format!("{s}->{d}.{p}"),
                None => format!("{s}->{d}"),
            })
            .collect();
        write!(f, "{}}}", edges.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{evaluate, Op, Value};

    #[test]
    fn single_node_is_connected() {
        let p = Pattern::single(OpKind::Add);
        assert!(p.is_connected());
        assert_eq!(p.len(), 1);
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn extension_builds_mul_add_chain() {
        let p = Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Add, true, None);
        assert_eq!(p.len(), 2);
        assert_eq!(p.edge_count(), 1);
        assert!(p.is_connected());
        assert_eq!(p.labels(), &[OpKind::Mul, OpKind::Add]);
    }

    #[test]
    fn canonical_code_is_order_invariant() {
        // mul -> add built two different ways
        let a = Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Add, true, None);
        let b = Pattern::single(OpKind::Add).extend_with_node(0, OpKind::Mul, false, None);
        assert_eq!(a.canonical_code(), b.canonical_code());
    }

    #[test]
    fn canonical_code_distinguishes_port_constraints() {
        let a = Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Sub, true, Some(0));
        let b = Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Sub, true, Some(1));
        assert_ne!(a.canonical_code(), b.canonical_code());
    }

    #[test]
    fn canonical_code_distinguishes_direction() {
        let a = Pattern::single(OpKind::Add).extend_with_node(0, OpKind::Mul, true, None);
        let b = Pattern::single(OpKind::Add).extend_with_node(0, OpKind::Mul, false, None);
        assert_ne!(a.canonical_code(), b.canonical_code());
    }

    #[test]
    fn from_occurrence_round_trips_through_datapath() {
        // graph: out = (a*b) + c ; occurrence = {mul, add}
        let mut g = Graph::new("t");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        g.output(s);
        let (p, order) = Pattern::from_occurrence(&g, &[m, s]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.edge_count(), 1);
        let dp = p.to_datapath(&g, &order, "mac_pattern").unwrap();
        assert!(dp.try_validate().is_ok());
        assert_eq!(dp.primary_inputs().len(), 3);
        let out = evaluate(&dp, &[Value::Word(3), Value::Word(4), Value::Word(5)]);
        assert_eq!(out[0].word(), 17);
    }

    #[test]
    fn from_occurrence_records_ports_for_noncommutative() {
        let mut g = Graph::new("t");
        let a = g.input();
        let b = g.input();
        let m = g.add(Op::Mul, &[a, b]);
        let d = g.add(Op::Sub, &[a, m]); // mul feeds port 1 of sub
        g.output(d);
        let (p, _) = Pattern::from_occurrence(&g, &[m, d]);
        let e: Vec<_> = p.edges().collect();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].2, Some(1));
    }

    #[test]
    fn memoized_code_survives_clone_but_not_extension() {
        let p = Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Add, true, None);
        let first = p.canonical_code();
        // memoized: the borrow-returning accessor sees the same string
        assert_eq!(p.canonical_code_ref(), first);
        let cloned = p.clone();
        assert_eq!(cloned.canonical_code(), first);
        // extending must re-derive, not inherit the parent's cached code
        let bigger = p.extend_with_node(1, OpKind::Add, true, None);
        assert_ne!(bigger.canonical_code(), first);
        // cache is identity-transparent for equality and hashing
        let fresh = Pattern::single(OpKind::Mul).extend_with_node(0, OpKind::Add, true, None);
        assert_eq!(p, fresh, "cached vs uncached patterns compare equal");
    }

    #[test]
    fn topo_order_respects_edges() {
        let p = Pattern::single(OpKind::Mul)
            .extend_with_node(0, OpKind::Add, true, None)
            .extend_with_node(1, OpKind::Add, true, None);
        let order = p.topo_order();
        let pos = |x: u32| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn parallel_edges_to_commutative_node() {
        // x*x: one mul with the same source on both ports — as a pattern,
        // square = two edges from one node
        let mut g = Graph::new("t");
        let a = g.input();
        let x = g.add(Op::Add, &[a, a]);
        let sq = g.add(Op::Mul, &[x, x]);
        g.output(sq);
        let (p, order) = Pattern::from_occurrence(&g, &[x, sq]);
        assert_eq!(p.edge_count(), 2);
        let dp = p.to_datapath(&g, &order, "sq").unwrap();
        // both mul ports fed by the add; add has two fresh inputs
        assert_eq!(dp.primary_inputs().len(), 2);
        let out = evaluate(&dp, &[Value::Word(3), Value::Word(4)]);
        assert_eq!(out[0].word(), 49);
    }
}
