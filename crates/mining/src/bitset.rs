//! Fixed-size bitsets over dense node-index spaces.
//!
//! The embedding search tests label membership and injectivity millions of
//! times per mining run; a flat `Vec<u64>` bitset answers both in O(1)
//! with no allocation, replacing the linear `used.contains(..)` scans and
//! per-candidate `Vec` filters of the original VF2 loop.

/// A fixed-capacity bitset addressed by `usize` index.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    /// An empty bitset able to hold indices `0..capacity`.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Bitset {
            words: vec![0u64; capacity.div_ceil(64)],
        }
    }

    /// Whether `i` is set. Out-of-range indices read as unset.
    #[inline]
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w >> (i % 64) & 1 == 1)
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is beyond the capacity (an internal invariant: the
    /// miner sizes bitsets from the graph it indexes).
    #[inline]
    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub(crate) fn remove(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1 << (i % 64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_round_trip() {
        let mut b = Bitset::with_capacity(130);
        assert!(!b.contains(0));
        assert!(!b.contains(129));
        b.insert(0);
        b.insert(63);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(129));
        b.remove(64);
        assert!(!b.contains(64));
        assert!(b.contains(63) && b.contains(129));
    }

    #[test]
    fn out_of_range_reads_unset() {
        let b = Bitset::with_capacity(10);
        assert!(!b.contains(1000));
    }
}
