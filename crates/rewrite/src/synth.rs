//! Rewrite-rule synthesis (paper Section 4.1.1).
//!
//! Three rule sources:
//!
//! 1. **Stored configurations** — every subgraph merged into the PE
//!    datapath carries its configuration, which becomes a complex rule.
//! 2. **Structural single-op synthesis** — for every operation an
//!    application needs (optionally with constant operands), search the
//!    PE's configuration space for an implementation.
//! 3. **LUT fallback** — bit operations lower onto a 3-input LUT when no
//!    dedicated gate exists (how the baseline PE executes bit logic).
//!
//! Every candidate rule is validated by [`verify_rule`] before being
//! admitted — the bounded-equivalence substitute for the paper's SMT
//! check.

use crate::rule::{verify_rule, RewriteRule};
use apex_fault::{ApexError, Stage};
use apex_ir::{Graph, NodeId, Op, Value, ValueType};
use apex_merge::{DatapathConfig, DpSource, MergedDatapath, NodeConfig};
use std::collections::{BTreeMap, BTreeSet};

/// A prioritized set of verified rewrite rules for one PE.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    /// Rules sorted by coverage (largest first), as the greedy instruction
    /// selector consumes them.
    pub rules: Vec<RewriteRule>,
}

impl RuleSet {
    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Outcome of ruleset synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// Operation templates that could not be implemented on the PE
    /// (applications needing them cannot be mapped).
    pub missing: Vec<String>,
    /// Number of rules that failed post-synthesis verification (always 0
    /// unless the structural search has a bug).
    pub rejected: usize,
}

/// Verification trials per rule.
const VERIFY_TRIALS: usize = 64;

/// Builds rules from the datapath's stored configurations.
///
/// `sources[i]` must be the subgraph that produced `dp.configs[i]`.
///
/// # Panics
/// Panics if `sources` is not aligned with the stored configurations.
// invariant: merge_graph maps every source node into the datapath, so
// payload nodes are always present in the config's node_map
#[allow(clippy::expect_used)]
pub fn rules_from_configs(dp: &MergedDatapath, sources: &[Graph]) -> Vec<RewriteRule> {
    assert_eq!(
        sources.len(),
        dp.configs.len(),
        "one source graph per stored configuration"
    );
    let mut rules = Vec::new();
    for (cfg, src) in dp.configs.iter().zip(sources) {
        let node_map: BTreeMap<u32, u32> = cfg.node_map.iter().copied().collect();
        let mut payload_bindings = Vec::new();
        for (id, node) in src.iter() {
            if matches!(node.op(), Op::Const(_) | Op::BitConst(_) | Op::Lut(_)) {
                let dp_node = node_map
                    .get(&id.0)
                    .copied()
                    .expect("payload node mapped by merge");
                payload_bindings.push((id, dp_node));
            }
        }
        let rule = RewriteRule {
            name: src.name().to_owned(),
            pattern: src.clone(),
            config: cfg.clone(),
            payload_bindings,
            ops_covered: src.compute_nodes().len(),
        };
        if verify_rule(dp, &rule, VERIFY_TRIALS) {
            rules.push(rule);
        }
    }
    rules
}

/// Builds the pattern graph for an op template: `const_ports` lists the
/// operand indices fed by constant placeholders.
fn op_pattern(op: Op, const_ports: &[u8], name: &str) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new(name);
    let mut inputs = Vec::new();
    let mut consts = Vec::new();
    for (i, ty) in op.input_types().iter().enumerate() {
        let id = if const_ports.contains(&(i as u8)) {
            let c = match ty {
                ValueType::Word => g.add(Op::Const(0), &[]),
                ValueType::Bit => g.add(Op::BitConst(false), &[]),
            };
            consts.push(c);
            c
        } else {
            match ty {
                ValueType::Word => g.input(),
                ValueType::Bit => g.bit_input(),
            }
        };
        inputs.push(id);
    }
    let n = g.add(op, &inputs);
    match op.output_type() {
        ValueType::Word => g.output(n),
        ValueType::Bit => g.bit_output(n),
    };
    (g, consts)
}

fn empty_config(dp: &MergedDatapath, name: &str) -> DatapathConfig {
    DatapathConfig {
        name: name.to_owned(),
        node_cfg: vec![None; dp.nodes.len()],
        word_out_sel: Vec::new(),
        bit_out_sel: Vec::new(),
        word_input_map: Vec::new(),
        bit_input_map: Vec::new(),
        node_map: Vec::new(),
    }
}

/// Whether a datapath node can be configured to execute `op`.
fn supports(node: &apex_merge::DpNode, op: Op) -> bool {
    node.ops.iter().any(|o| match (o, &op) {
        (Op::Const(_), Op::Const(_)) => true,
        (Op::BitConst(_), Op::BitConst(_)) => true,
        (Op::Lut(_), Op::Lut(_)) => true,
        (a, b) => a == b,
    })
}

/// Is this datapath node a free-standing constant register?
fn is_const_reg(node: &apex_merge::DpNode, ty: ValueType) -> bool {
    node.output_type() == ty
        && node
            .ops
            .iter()
            .all(|o| matches!(o, Op::Const(_) | Op::BitConst(_)))
}

/// Structurally synthesizes a rule executing a single operation, with the
/// given operand indices bound to constant registers. Returns a verified
/// rule or `None`.
// invariant: the operand-placement loop assigns every port before the
// `expect`s that read them back
#[allow(clippy::expect_used)]
pub fn synthesize_op_rule(
    dp: &MergedDatapath,
    op: Op,
    const_ports: &[u8],
) -> Option<RewriteRule> {
    let arity = op.arity();
    let orders: Vec<Vec<usize>> = if arity == 2 && op.commutative() {
        vec![vec![0, 1], vec![1, 0]]
    } else {
        vec![(0..arity).collect()]
    };
    for (n_idx, node) in dp.nodes.iter().enumerate() {
        if !supports(node, op) || node.arity() < arity {
            continue;
        }
        'order: for order in &orders {
            let mut port_sel = vec![0u32; arity];
            let mut used_word: BTreeSet<u16> = BTreeSet::new();
            let mut used_bit: BTreeSet<u16> = BTreeSet::new();
            let mut claimed: Vec<u32> = Vec::new(); // const reg nodes
            let mut operand_source: Vec<Option<DpSource>> = vec![None; arity];
            for i in 0..arity {
                let p = order[i];
                let want_ty = op.input_types()[i];
                let cands = &node.port_candidates[p];
                let found = if const_ports.contains(&(i as u8)) {
                    cands.iter().position(|c| match c {
                        DpSource::Node(j) => {
                            is_const_reg(&dp.nodes[*j as usize], want_ty)
                                && !claimed.contains(j)
                        }
                        _ => false,
                    })
                } else {
                    cands.iter().position(|c| match (c, want_ty) {
                        (DpSource::WordInput(k), ValueType::Word) => !used_word.contains(k),
                        (DpSource::BitInput(k), ValueType::Bit) => !used_bit.contains(k),
                        _ => false,
                    })
                };
                let Some(sel) = found else { continue 'order };
                let src = cands[sel];
                match src {
                    DpSource::WordInput(k) => {
                        used_word.insert(k);
                    }
                    DpSource::BitInput(k) => {
                        used_bit.insert(k);
                    }
                    DpSource::Node(j) => claimed.push(j),
                }
                port_sel[p] = sel as u32;
                operand_source[i] = Some(src);
            }
            // build pattern + config
            let name = rule_name(op, const_ports);
            let (pattern, pattern_consts) = op_pattern(op, const_ports, &name);
            let mut cfg = empty_config(dp, &name);
            cfg.node_cfg[n_idx] = Some(NodeConfig { op, port_sel });
            let mut payload_bindings = Vec::new();
            let mut const_iter = pattern_consts.iter();
            let mut word_input_map = Vec::new();
            let mut bit_input_map = Vec::new();
            for i in 0..arity {
                match operand_source[i].expect("operand placed") {
                    DpSource::WordInput(k) => word_input_map.push(k),
                    DpSource::BitInput(k) => bit_input_map.push(k),
                    DpSource::Node(j) => {
                        let pc = *const_iter.next().expect("const operand recorded");
                        let payload = match pattern.op(pc) {
                            Op::Const(_) => Op::Const(0),
                            other => other,
                        };
                        cfg.node_cfg[j as usize] = Some(NodeConfig {
                            op: payload,
                            port_sel: Vec::new(),
                        });
                        payload_bindings.push((pc, j));
                    }
                }
            }
            cfg.word_input_map = word_input_map;
            cfg.bit_input_map = bit_input_map;
            match op.output_type() {
                ValueType::Word => cfg.word_out_sel.push(DpSource::Node(n_idx as u32)),
                ValueType::Bit => cfg.bit_out_sel.push(DpSource::Node(n_idx as u32)),
            }
            let rule = RewriteRule {
                name,
                pattern,
                config: cfg,
                payload_bindings,
                ops_covered: 1 + const_ports.len(),
            };
            if verify_rule(dp, &rule, VERIFY_TRIALS) {
                return Some(rule);
            }
        }
    }
    None
}

/// Synthesizes a LUT-based rule for a bit operation (how the baseline PE
/// executes `BitAnd`/`BitOr`/etc., Section 2.1's "look up table for bit
/// operations").
pub fn lut_rule_for_bit_op(dp: &MergedDatapath, op: Op) -> Option<RewriteRule> {
    if op.output_type() != ValueType::Bit
        || op.input_types().iter().any(|t| *t != ValueType::Bit)
    {
        return None;
    }
    let arity = op.arity();
    if arity > 3 {
        return None;
    }
    // truth table as a function of the operand bits only
    let mut table = 0u8;
    for idx in 0..8u8 {
        let bits: Vec<Value> = (0..arity)
            .map(|i| Value::Bit((idx >> i) & 1 == 1))
            .collect();
        if op.eval(&bits).bit() {
            table |= 1 << idx;
        }
    }
    for (n_idx, node) in dp.nodes.iter().enumerate() {
        if !node.ops.iter().any(|o| matches!(o, Op::Lut(_))) {
            continue;
        }
        let mut port_sel = vec![0u32; 3];
        let mut used: BTreeSet<u16> = BTreeSet::new();
        let mut bit_input_map = Vec::new();
        let mut ok = true;
        for p in 0..3 {
            let cands = &node.port_candidates[p];
            let found = if p < arity {
                cands.iter().position(|c| match c {
                    DpSource::BitInput(k) => !used.contains(k),
                    _ => false,
                })
            } else {
                // don't-care port: any always-live source
                cands
                    .iter()
                    .position(|c| matches!(c, DpSource::BitInput(_)))
            };
            let Some(sel) = found else {
                ok = false;
                break;
            };
            if p < arity {
                if let DpSource::BitInput(k) = cands[sel] {
                    used.insert(k);
                    bit_input_map.push(k);
                }
            }
            port_sel[p] = sel as u32;
        }
        if !ok {
            continue;
        }
        let name = rule_name(op, &[]);
        let (pattern, _) = op_pattern(op, &[], &name);
        let mut cfg = empty_config(dp, &name);
        cfg.node_cfg[n_idx] = Some(NodeConfig {
            op: Op::Lut(table),
            port_sel,
        });
        cfg.bit_out_sel.push(DpSource::Node(n_idx as u32));
        cfg.bit_input_map = bit_input_map;
        let rule = RewriteRule {
            name,
            pattern,
            config: cfg,
            payload_bindings: Vec::new(),
            ops_covered: 1,
        };
        if verify_rule(dp, &rule, VERIFY_TRIALS) {
            return Some(rule);
        }
    }
    None
}

/// Rule that outputs a bare constant (covers application constants no
/// other rule folds).
pub fn const_passthrough_rule(dp: &MergedDatapath) -> Option<RewriteRule> {
    let j = dp
        .nodes
        .iter()
        .position(|n| is_const_reg(n, ValueType::Word))?;
    let mut g = Graph::new("const");
    let c = g.add(Op::Const(0), &[]);
    g.output(c);
    let mut cfg = empty_config(dp, "const");
    cfg.node_cfg[j] = Some(NodeConfig {
        op: Op::Const(0),
        port_sel: Vec::new(),
    });
    cfg.word_out_sel.push(DpSource::Node(j as u32));
    let rule = RewriteRule {
        name: "const".into(),
        pattern: g,
        config: cfg,
        payload_bindings: vec![(c, j as u32)],
        ops_covered: 1,
    };
    verify_rule(dp, &rule, 16).then_some(rule)
}

fn rule_name(op: Op, const_ports: &[u8]) -> String {
    if const_ports.is_empty() {
        format!("{}", op.kind())
    } else {
        let ports: Vec<String> = const_ports.iter().map(u8::to_string).collect();
        format!("{}_c{}", op.kind(), ports.join(""))
    }
}

/// Operation templates an application graph needs: `(op, const operand
/// indices)` for every compute node, plus the plain variant.
pub fn needed_templates(apps: &[&Graph]) -> BTreeSet<(Op, Vec<u8>)> {
    let mut need = BTreeSet::new();
    for g in apps {
        for (_, node) in g.iter() {
            let op = node.op();
            if !op.is_compute() || matches!(op, Op::Const(_) | Op::BitConst(_)) {
                continue;
            }
            let op = normalize(op);
            let const_ports: Vec<u8> = node
                .inputs()
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(g.op(**s), Op::Const(_) | Op::BitConst(_)))
                .map(|(p, _)| p as u8)
                .collect();
            need.insert((op, Vec::new()));
            if !const_ports.is_empty() {
                need.insert((op, const_ports));
            }
        }
    }
    need
}

/// Strips payloads so templates deduplicate by kind.
fn normalize(op: Op) -> Op {
    match op {
        Op::Lut(_) => Op::Lut(0),
        other => other,
    }
}

/// Synthesizes the full ruleset for a PE: complex rules from its stored
/// configurations (`sources` aligned with `dp.configs`) plus single-op and
/// LUT-fallback rules for everything `apps` need.
///
/// Template synthesis fans out over the bounded [`apex_par`] pool (at most
/// [`apex_par::default_jobs`] workers, instead of one thread per template)
/// and results are consumed in template order, so the ruleset is
/// deterministic regardless of scheduling.
///
/// # Errors
/// A panicking synthesis worker (only reachable through fault injection
/// today) is caught by the pool and surfaces as a [`Stage::Rewrite`] error
/// with the panic payload on the cause chain — it never unwinds the caller.
pub fn standard_ruleset(
    dp: &MergedDatapath,
    sources: &[Graph],
    apps: &[&Graph],
) -> Result<(RuleSet, SynthesisReport), ApexError> {
    let mut rules = rules_from_configs(dp, sources);
    let mut missing = Vec::new();
    // template synthesis (search + verification) is independent per
    // template: fan out across the pool, keeping deterministic order
    let templates: Vec<(Op, Vec<u8>)> = needed_templates(apps).into_iter().collect();
    let synthesized = apex_par::par_map_stage(
        apex_par::default_jobs(),
        Stage::Rewrite,
        &templates,
        |_, (op, const_ports)| {
            #[cfg(feature = "fault-injection")]
            {
                if apex_fault::failpoints::should_fire("rewrite::synth_panic") {
                    panic!("injected panic at rewrite::synth_panic");
                }
            }
            synthesize_op_rule(dp, *op, const_ports).or_else(|| {
                if const_ports.is_empty() {
                    lut_rule_for_bit_op(dp, *op)
                } else {
                    // fall back to the const-free variant; the
                    // constant is then covered by the passthrough
                    // rule on another PE
                    None
                }
            })
        },
    );
    for ((op, const_ports), rule) in templates.iter().zip(synthesized) {
        match rule? {
            Some(r) => rules.push(r),
            None if const_ports.is_empty() => {
                missing.push(rule_name(*op, const_ports));
            }
            None => {}
        }
    }
    if let Some(r) = const_passthrough_rule(dp) {
        rules.push(r);
    }
    rules.sort_by(|a, b| {
        b.ops_covered
            .cmp(&a.ops_covered)
            .then_with(|| a.name.cmp(&b.name))
    });
    Ok((
        RuleSet { rules },
        SynthesisReport {
            missing,
            rejected: 0,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_pe::{baseline_pe, baseline_op_kinds, baseline_pe_with_ops};

    #[test]
    fn baseline_supports_plain_alu_ops() {
        let pe = baseline_pe();
        for op in [Op::Add, Op::Sub, Op::Mul, Op::Smax, Op::Lshr, Op::Ult] {
            let rule = synthesize_op_rule(&pe.datapath, op, &[]);
            assert!(rule.is_some(), "baseline should execute {op}");
        }
    }

    #[test]
    fn baseline_folds_constants() {
        let pe = baseline_pe();
        for (op, ports) in [(Op::Mul, vec![1u8]), (Op::Add, vec![0]), (Op::Lshr, vec![1])] {
            let rule = synthesize_op_rule(&pe.datapath, op, &ports);
            assert!(rule.is_some(), "{op} with const {ports:?}");
            let r = rule.unwrap();
            assert_eq!(r.ops_covered, 2);
            assert_eq!(r.payload_bindings.len(), 1);
        }
    }

    #[test]
    fn baseline_executes_bit_ops_via_lut() {
        let pe = baseline_pe();
        for op in [Op::BitAnd, Op::BitOr, Op::BitXor, Op::BitNot, Op::BitMux] {
            // no dedicated gate exists...
            assert!(synthesize_op_rule(&pe.datapath, op, &[]).is_none());
            // ...but the LUT covers it
            let rule = lut_rule_for_bit_op(&pe.datapath, op);
            assert!(rule.is_some(), "LUT should cover {op}");
        }
    }

    #[test]
    fn mux_rule_uses_bit_select() {
        let pe = baseline_pe();
        let rule = synthesize_op_rule(&pe.datapath, Op::Mux, &[]).expect("mux");
        assert_eq!(rule.config.bit_input_map.len(), 1);
        assert_eq!(rule.config.word_input_map.len(), 2);
    }

    #[test]
    fn restricted_pe_rejects_absent_ops() {
        let kinds = [apex_ir::OpKind::Add, apex_ir::OpKind::Const]
            .into_iter()
            .collect();
        let pe = baseline_pe_with_ops("adder", &kinds);
        assert!(synthesize_op_rule(&pe.datapath, Op::Add, &[]).is_some());
        assert!(synthesize_op_rule(&pe.datapath, Op::Mul, &[]).is_none());
        assert!(lut_rule_for_bit_op(&pe.datapath, Op::BitAnd).is_none());
    }

    #[test]
    fn const_passthrough_exists_on_baseline() {
        let pe = baseline_pe();
        assert!(const_passthrough_rule(&pe.datapath).is_some());
    }

    #[test]
    fn standard_ruleset_covers_a_small_app() {
        // app: out = (a*3) + b, threshold against 10
        let mut g = Graph::new("app");
        let a = g.input();
        let b = g.input();
        let w = g.constant(3);
        let m = g.add(Op::Mul, &[a, w]);
        let s = g.add(Op::Add, &[m, b]);
        let th = g.constant(10);
        let cmp = g.add(Op::Sgt, &[s, th]);
        g.output(s);
        g.bit_output(cmp);
        let pe = baseline_pe();
        let (rules, report) = standard_ruleset(&pe.datapath, &[], &[&g]).unwrap();
        assert!(report.missing.is_empty(), "missing: {:?}", report.missing);
        assert!(rules.len() >= 4, "plain + const variants + passthrough");
        // sorted by coverage
        assert!(rules
            .rules
            .windows(2)
            .all(|w| w[0].ops_covered >= w[1].ops_covered));
    }

    #[test]
    fn full_baseline_ruleset_handles_every_advertised_kind() {
        let pe = baseline_pe();
        let kinds = baseline_op_kinds();
        // build a probe graph exercising each kind once
        let mut g = Graph::new("probe");
        let a = g.input();
        let b = g.input();
        let s = g.bit_input();
        let t = g.bit_input();
        for k in &kinds {
            use apex_ir::OpKind as K;
            match k {
                K::Add => { g.add(Op::Add, &[a, b]); }
                K::Sub => { g.add(Op::Sub, &[a, b]); }
                K::Mul => { g.add(Op::Mul, &[a, b]); }
                K::Abs => { g.add(Op::Abs, &[a]); }
                K::Smin => { g.add(Op::Smin, &[a, b]); }
                K::Smax => { g.add(Op::Smax, &[a, b]); }
                K::Umin => { g.add(Op::Umin, &[a, b]); }
                K::Umax => { g.add(Op::Umax, &[a, b]); }
                K::Shl => { g.add(Op::Shl, &[a, b]); }
                K::Lshr => { g.add(Op::Lshr, &[a, b]); }
                K::Ashr => { g.add(Op::Ashr, &[a, b]); }
                K::And => { g.add(Op::And, &[a, b]); }
                K::Or => { g.add(Op::Or, &[a, b]); }
                K::Xor => { g.add(Op::Xor, &[a, b]); }
                K::Not => { g.add(Op::Not, &[a]); }
                K::Mux => { g.add(Op::Mux, &[a, b, s]); }
                K::Eq => { g.add(Op::Eq, &[a, b]); }
                K::Ult => { g.add(Op::Ult, &[a, b]); }
                K::BitAnd => { g.add(Op::BitAnd, &[s, t]); }
                K::BitOr => { g.add(Op::BitOr, &[s, t]); }
                K::BitXor => { g.add(Op::BitXor, &[s, t]); }
                K::BitNot => { g.add(Op::BitNot, &[s]); }
                K::BitMux => { g.add(Op::BitMux, &[s, t, s]); }
                _ => {}
            }
        }
        let (rules, report) = standard_ruleset(&pe.datapath, &[], &[&g]).unwrap();
        assert!(report.missing.is_empty(), "missing: {:?}", report.missing);
        assert!(!rules.is_empty());
    }
}
