//! # apex-rewrite — rewrite-rule synthesis
//!
//! Our substitute for the paper's SMT-based rewrite-rule synthesis
//! (Section 4.1.1, after Daly et al. FMCAD'22): given a PE specification,
//! produce the verified set of [`RewriteRule`]s the application mapper
//! uses for instruction selection.
//!
//! The SMT query `∃x ∀y: P(x, y) = Op(y)` is answered constructively —
//! configurations are built by structural search over the PE's finite
//! configuration space — and every rule is then validated against the IR
//! golden model over corner + random input vectors ([`verify_rule`]),
//! our bounded-equivalence substitute for Boolector (DESIGN.md §3).
//!
//! # Examples
//!
//! ```
//! use apex_pe::baseline_pe;
//! use apex_rewrite::{standard_ruleset, synthesize_op_rule};
//! use apex_ir::{Graph, Op};
//!
//! let pe = baseline_pe();
//! // the baseline PE can execute an add...
//! assert!(synthesize_op_rule(&pe.datapath, Op::Add, &[]).is_some());
//! // ...and fold a constant multiplicand into a constant register
//! assert!(synthesize_op_rule(&pe.datapath, Op::Mul, &[1]).is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod rule;
mod synth;

pub use rule::{verify_rule, RewriteRule};
pub use synth::{
    const_passthrough_rule, lut_rule_for_bit_op, needed_templates, rules_from_configs,
    standard_ruleset, synthesize_op_rule, RuleSet, SynthesisReport,
};
