//! # apex-rewrite — rewrite-rule synthesis
//!
//! Our substitute for the paper's SMT-based rewrite-rule synthesis
//! (Section 4.1.1, after Daly et al. FMCAD'22): given a PE specification,
//! produce the verified set of [`RewriteRule`]s the application mapper
//! uses for instruction selection.
//!
//! The SMT query `∃x ∀y: P(x, y) = Op(y)` is answered constructively —
//! configurations are built by structural search over the PE's finite
//! configuration space — and every rule is then validated against the IR
//! golden model over corner + random input vectors ([`verify_rule`]),
//! our bounded-equivalence substitute for Boolector (DESIGN.md §3).
//!
//! # Examples
//!
//! ```
//! use apex_pe::baseline_pe;
//! use apex_rewrite::{standard_ruleset, synthesize_op_rule};
//! use apex_ir::{Graph, Op};
//!
//! let pe = baseline_pe();
//! // the baseline PE can execute an add...
//! assert!(synthesize_op_rule(&pe.datapath, Op::Add, &[]).is_some());
//! // ...and fold a constant multiplicand into a constant register
//! assert!(synthesize_op_rule(&pe.datapath, Op::Mul, &[1]).is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use apex_fault::{ApexError, Stage};
use apex_ir::Graph;
use apex_merge::MergedDatapath;
use std::fmt;

mod rule;
mod synth;

pub use rule::{verify_rule, RewriteRule};
pub use synth::{
    const_passthrough_rule, lut_rule_for_bit_op, needed_templates, rules_from_configs,
    standard_ruleset, synthesize_op_rule, RuleSet, SynthesisReport,
};

/// Errors raised by the rewrite-rule synthesis stage.
///
/// Synthesis itself is total (missing templates are reported, not fatal),
/// so today the only failure mode is an injected test fault; the type
/// exists so the rewrite stage participates in the workspace-wide
/// [`ApexError`] hierarchy like every other stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteError {
    /// A deterministic fault-injection site fired (tests only).
    Injected(&'static str),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<RewriteError> for ApexError {
    fn from(e: RewriteError) -> Self {
        ApexError::with_source(Stage::Rewrite, e)
    }
}

/// Fallible synthesis entry point used by the resilient DSE driver; same
/// result as [`standard_ruleset`] but carries the stage's fault-injection
/// site.
///
/// # Errors
/// Fails when the `rewrite::start` fault-injection site is armed, or when
/// a synthesis worker panics (see [`standard_ruleset`]).
pub fn try_standard_ruleset(
    dp: &MergedDatapath,
    sources: &[Graph],
    apps: &[&Graph],
) -> Result<(RuleSet, SynthesisReport), ApexError> {
    apex_fault::fail_point!(
        "rewrite::start",
        RewriteError::Injected("rewrite::start").into()
    );
    standard_ruleset(dp, sources, apps)
}
