//! Rewrite rules: how a PE must be configured to perform an operation or
//! subgraph from an application (paper Section 4.1.1).
//!
//! A rule pairs a *pattern* (a small datapath graph over the IR) with a
//! *configuration template* of the target PE. Constant nodes in the
//! pattern are placeholders: at mapping time the matched application
//! constant is loaded into the bound constant register.

use apex_ir::{evaluate as ir_eval, Graph, NodeId, Op, Value};
use apex_merge::{DatapathConfig, MergedDatapath};
use serde::{Deserialize, Serialize};

/// A mapper rewrite rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewriteRule {
    /// Rule name (e.g. "add", "mul_const1", or a merged subgraph's name).
    pub name: String,
    /// The application-side pattern this rule covers.
    pub pattern: Graph,
    /// PE configuration template implementing the pattern.
    pub config: DatapathConfig,
    /// Payload bindings: pattern constant/LUT node → datapath node whose
    /// configuration receives the matched payload.
    pub payload_bindings: Vec<(NodeId, u32)>,
    /// Application nodes covered per match (mapping priority: larger
    /// rules are tried first, LLVM-style).
    pub ops_covered: usize,
}

impl RewriteRule {
    /// Builds the concrete configuration for a match whose pattern
    /// constants take the given payloads (`payloads[i]` corresponds to
    /// `payload_bindings[i]`).
    ///
    /// # Panics
    /// Panics if `payloads` does not match the bindings, or a binding
    /// points at a node the template leaves inactive.
    // invariant: documented panic — payload bindings are built against
    // the same template configuration, so bound nodes are active
    #[allow(clippy::expect_used)]
    pub fn instantiate(&self, payloads: &[Op]) -> DatapathConfig {
        assert_eq!(payloads.len(), self.payload_bindings.len());
        let mut cfg = self.config.clone();
        for ((_, dp_node), payload) in self.payload_bindings.iter().zip(payloads) {
            let nc = cfg.node_cfg[*dp_node as usize]
                .as_mut()
                .expect("payload binding targets an active node");
            assert_eq!(
                std::mem::discriminant(&nc.op),
                std::mem::discriminant(payload),
                "payload kind mismatch on node {dp_node}"
            );
            nc.op = *payload;
        }
        cfg
    }

    /// The payload ops currently in the pattern, in binding order.
    pub fn pattern_payloads(&self) -> Vec<Op> {
        self.payload_bindings
            .iter()
            .map(|(pn, _)| self.pattern.op(*pn))
            .collect()
    }
}

/// Verifies a rule against the IR golden model: for a battery of corner
/// and random inputs (and random constant payloads), the configured PE
/// must produce exactly the pattern's outputs.
///
/// This is our bounded-equivalence substitute for the paper's SMT query
/// `∃x ∀y: P(x, y) = Op(y)` (DESIGN.md §3): the configuration `x` is
/// constructed structurally, and `∀y` is checked over corner values plus
/// `trials` random vectors.
// invariant: the word/bit vectors are sized from the pattern's own
// input counts two lines above the iterators that consume them
#[allow(clippy::expect_used)]
pub fn verify_rule(dp: &MergedDatapath, rule: &RewriteRule, trials: usize) -> bool {
    let mut seed = 0xDEAD_BEEF_CAFE_1234u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    const CORNERS: [u16; 6] = [0, 1, 2, 0x7FFF, 0x8000, 0xFFFF];

    let word_n = rule
        .pattern
        .node_ids()
        .filter(|&i| rule.pattern.op(i) == Op::Input)
        .count();
    let bit_n = rule
        .pattern
        .node_ids()
        .filter(|&i| rule.pattern.op(i) == Op::BitInput)
        .count();

    for t in 0..trials.max(CORNERS.len() * CORNERS.len()) {
        // payloads: cycle corners, then random
        let payloads: Vec<Op> = rule
            .pattern_payloads()
            .iter()
            .map(|op| match op {
                Op::Const(_) => Op::Const(if t < CORNERS.len() {
                    CORNERS[t]
                } else {
                    next() as u16
                }),
                Op::BitConst(_) => Op::BitConst(next() & 1 == 1),
                Op::Lut(_) => Op::Lut(next() as u8),
                other => *other,
            })
            .collect();
        let cfg = rule.instantiate(&payloads);
        // concrete pattern with the same payloads
        let mut pattern = rule.pattern.clone();
        let concrete = substitute_payloads(&pattern, &rule.payload_bindings, &payloads);
        pattern = concrete;

        let words: Vec<u16> = (0..word_n)
            .map(|k| {
                if t < CORNERS.len() * CORNERS.len() {
                    CORNERS[(t + k) % CORNERS.len()]
                } else {
                    next() as u16
                }
            })
            .collect();
        let bits: Vec<bool> = (0..bit_n).map(|_| next() & 1 == 1).collect();

        let mut wi = words.iter();
        let mut bi = bits.iter();
        let golden_inputs: Vec<Value> = pattern
            .primary_inputs()
            .iter()
            .map(|&pi| match pattern.op(pi) {
                Op::Input => Value::Word(*wi.next().expect("enough words")),
                Op::BitInput => Value::Bit(*bi.next().expect("enough bits")),
                _ => unreachable!(),
            })
            .collect();
        let golden = ir_eval(&pattern, &golden_inputs);
        let Ok((got_w, got_b)) = dp.evaluate_as_source(&cfg, &words, &bits) else {
            return false;
        };
        let mut gw = got_w.into_iter();
        let mut gb = got_b.into_iter();
        for (po, g) in pattern.primary_outputs().iter().zip(golden) {
            let ok = match pattern.op(*po) {
                Op::Output => gw.next() == Some(g.word()),
                Op::BitOutput => gb.next() == Some(g.bit()),
                _ => unreachable!(),
            };
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Returns a copy of `pattern` with payload nodes replaced.
fn substitute_payloads(pattern: &Graph, bindings: &[(NodeId, u32)], payloads: &[Op]) -> Graph {
    let mut g = Graph::new(pattern.name());
    let mut payload_of: std::collections::BTreeMap<NodeId, Op> = std::collections::BTreeMap::new();
    for ((pn, _), op) in bindings.iter().zip(payloads) {
        payload_of.insert(*pn, *op);
    }
    for (id, node) in pattern.iter() {
        let op = payload_of.get(&id).copied().unwrap_or(node.op());
        let new_id = g.add(op, node.inputs());
        debug_assert_eq!(new_id, id, "structure-preserving rebuild");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_merge::MergedDatapath;

    fn scale_rule() -> (MergedDatapath, RewriteRule) {
        // pattern/PE: out = a * C
        let mut g = Graph::new("scale");
        let a = g.input();
        let c = g.constant(7);
        let m = g.add(Op::Mul, &[a, c]);
        g.output(m);
        let dp = MergedDatapath::from_graph(&g);
        let const_dp_node = dp.configs[0]
            .node_map
            .iter()
            .find(|(src, _)| *src == c.0)
            .map(|(_, dpn)| *dpn)
            .expect("const mapped");
        let rule = RewriteRule {
            name: "mul_const".into(),
            pattern: g,
            config: dp.configs[0].clone(),
            payload_bindings: vec![(c, const_dp_node)],
            ops_covered: 2,
        };
        (dp, rule)
    }

    #[test]
    fn instantiate_reloads_constant() {
        let (dp, rule) = scale_rule();
        let cfg = rule.instantiate(&[Op::Const(11)]);
        let (w, _) = dp.evaluate_as_source(&cfg, &[5], &[]).unwrap();
        assert_eq!(w[0], 55);
    }

    #[test]
    fn verify_accepts_correct_rule() {
        let (dp, rule) = scale_rule();
        assert!(verify_rule(&dp, &rule, 100));
    }

    #[test]
    fn verify_rejects_wrong_rule() {
        let (dp, mut rule) = scale_rule();
        // claim the PE computes a + C instead
        let mut g = Graph::new("lie");
        let a = g.input();
        let c = g.constant(7);
        let s = g.add(Op::Add, &[a, c]);
        g.output(s);
        let binding_node = rule.payload_bindings[0].1;
        rule.pattern = g;
        rule.payload_bindings = vec![(c, binding_node)];
        assert!(!verify_rule(&dp, &rule, 100));
    }

    #[test]
    #[should_panic(expected = "payload kind mismatch")]
    fn instantiate_rejects_wrong_payload_kind() {
        let (_, rule) = scale_rule();
        let _ = rule.instantiate(&[Op::BitConst(true)]);
    }
}
