//! Property tests on rewrite-rule synthesis: rules synthesized for
//! randomly merged PEs must verify, instantiate with arbitrary payloads,
//! and remain faithful to the IR semantics.

use apex_ir::{Graph, Op};
use apex_merge::{merge_all, MergeOptions};
use apex_rewrite::{standard_ruleset, synthesize_op_rule, verify_rule};
use apex_tech::TechModel;
use proptest::prelude::*;

fn arb_subgraph(name: &'static str) -> impl Strategy<Value = Graph> {
    let spec = prop::collection::vec((0u8..5, any::<u16>(), any::<u16>()), 2..8);
    spec.prop_map(move |ops| {
        let mut g = Graph::new(name);
        let mut pool = vec![g.input(), g.input()];
        for (sel, x, y) in ops {
            let a = pool[(x as usize) % pool.len()];
            let b = pool[(y as usize) % pool.len()];
            let n = match sel {
                0 => g.add(Op::Add, &[a, b]),
                1 => g.add(Op::Mul, &[a, b]),
                2 => g.add(Op::Sub, &[a, b]),
                3 => {
                    let c = g.constant(x);
                    g.add(Op::Mul, &[a, c])
                }
                _ => g.add(Op::Smax, &[a, b]),
            };
            pool.push(n);
        }
        let last = *pool.last().unwrap();
        g.output(last);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn rulesets_for_random_merged_pes_all_verify(
        g1 in arb_subgraph("p1"),
        g2 in arb_subgraph("p2")
    ) {
        let tech = TechModel::default();
        let (dp, _) = merge_all(
            &[g1.clone(), g2.clone()],
            &tech,
            &MergeOptions::default(),
        )
        .unwrap();
        let (rules, _) = standard_ruleset(&dp, &[g1.clone(), g2.clone()], &[&g1, &g2]).unwrap();
        // every admitted rule re-verifies with a fresh battery
        for r in &rules.rules {
            prop_assert!(verify_rule(&dp, r, 48), "rule {} must verify", r.name);
        }
        // the two complex rules from the merged configs are present
        prop_assert!(rules.rules.iter().any(|r| r.name == "p1"));
        prop_assert!(rules.rules.iter().any(|r| r.name == "p2"));
        // priority order is respected
        prop_assert!(rules
            .rules
            .windows(2)
            .all(|w| w[0].ops_covered >= w[1].ops_covered));
    }

    #[test]
    fn instantiation_reloads_any_payload(value: u16, input: u16) {
        // PE: out = x * C ; rule must compute x * value for every value
        let mut g = Graph::new("scale");
        let x = g.input();
        let c = g.constant(1);
        let m = g.add(Op::Mul, &[x, c]);
        g.output(m);
        let dp = apex_merge::MergedDatapath::from_graph(&g);
        let rule = synthesize_op_rule(&dp, Op::Mul, &[1]).expect("const-mul rule");
        let cfg = rule.instantiate(&[Op::Const(value)]);
        let (out, _) = dp.evaluate_as_source(&cfg, &[input], &[]).unwrap();
        prop_assert_eq!(out[0], input.wrapping_mul(value));
    }
}

#[test]
fn verification_is_adversarial_not_vacuous() {
    // sanity: a deliberately corrupted rule must fail verification — the
    // bounded-equivalence check has teeth
    let mut g = Graph::new("aff");
    let x = g.input();
    let c = g.constant(3);
    let m = g.add(Op::Mul, &[x, c]);
    g.output(m);
    let dp = apex_merge::MergedDatapath::from_graph(&g);
    let mut rule = synthesize_op_rule(&dp, Op::Mul, &[1]).expect("rule");
    // lie about the pattern: claim it computes an add
    let mut lie = Graph::new("lie");
    let x = lie.input();
    let c = lie.add(Op::Const(0), &[]);
    let s = lie.add(Op::Add, &[x, c]);
    lie.output(s);
    let binding = rule.payload_bindings[0].1;
    rule.pattern = lie.clone();
    rule.payload_bindings = vec![(
        lie.node_ids().find(|&i| matches!(lie.op(i), Op::Const(_))).unwrap(),
        binding,
    )];
    assert!(!verify_rule(&dp, &rule, 64));
}
