//! Shape tests: the qualitative claims of the paper's evaluation, locked
//! in as assertions over the regenerated experiments (EXPERIMENTS.md's
//! verdict column, kept true by CI).
//!
//! Only post-mapping experiments run here (they are the paper's
//! "minutes-scale" signal and keep the suite fast); the full
//! post-place-and-route tables are exercised by the report binary and the
//! benches.

use apex_eval::experiments::{fig10, fig11, fig12, fig13, fig14, table1};

#[test]
fn table1_shape() {
    let t = table1().unwrap();
    assert_eq!(t.rows.len(), 6);
    assert_eq!(
        t.rows.iter().filter(|r| r[1] == "IP").count(),
        4,
        "four image-processing applications"
    );
}

#[test]
fn fig10_shape_conv_apps_mine_mac_trees() {
    let t = fig10().unwrap();
    // gaussian's top subgraph is a multiply/adder tree
    let row = (0..t.rows.len())
        .find(|&r| t.cell(r, "Application") == Some("gaussian") && t.cell(r, "Rank") == Some("1"))
        .expect("gaussian has a top subgraph");
    let pattern = t.cell(row, "Subgraph").unwrap();
    assert!(
        pattern.contains("mul") && pattern.contains("add"),
        "gaussian's top subgraph is a MAC tree: {pattern}"
    );
    // camera's selections include the min/max median network
    let camera_patterns: Vec<&str> = (0..t.rows.len())
        .filter(|&r| t.cell(r, "Application") == Some("camera"))
        .map(|r| t.cell(r, "Subgraph").unwrap())
        .collect();
    assert!(
        camera_patterns.iter().any(|p| p.contains("umin") || p.contains("umax")),
        "camera mines its median network: {camera_patterns:?}"
    );
}

#[test]
fn fig11_shape_specialization_monotonically_helps() {
    let t = fig11().unwrap();
    // PE count never increases down the ladder
    let pes: Vec<f64> = (0..t.rows.len())
        .map(|r| t.cell_f64(r, "#PEs").unwrap())
        .collect();
    assert!(pes.windows(2).all(|w| w[1] <= w[0]), "{pes:?}");
    // every specialized variant beats the baseline on area and energy
    for r in 1..t.rows.len() {
        assert!(t.cell_f64(r, "Area vs base").unwrap() < 1.0);
        assert!(t.cell_f64(r, "Energy vs base").unwrap() < 1.0);
    }
    // the paper's headline: up to ~68% PE energy reduction for camera
    let last = t.rows.len() - 1;
    assert!(
        t.cell_f64(last, "Energy vs base").unwrap() < 0.45,
        "deep specialization cuts PE energy by more than half"
    );
}

#[test]
fn fig12_shape_unbalanced_merging_never_wins() {
    let t = fig12().unwrap();
    // PE IP3 (unbalanced toward camera) is never better than PE IP for
    // the non-camera applications
    for app in ["harris", "gaussian", "unsharp"] {
        let ip = (0..t.rows.len())
            .find(|&r| t.cell(r, "Application") == Some(app) && t.cell(r, "Variant") == Some("pe_ip"))
            .unwrap();
        let ip3 = (0..t.rows.len())
            .find(|&r| t.cell(r, "Application") == Some(app) && t.cell(r, "Variant") == Some("pe_ip3"))
            .unwrap();
        let a_ip = t.cell_f64(ip, "Energy vs base").unwrap();
        let a_ip3 = t.cell_f64(ip3, "Energy vs base").unwrap();
        assert!(
            a_ip3 >= a_ip - 0.02,
            "{app}: unbalanced IP3 must not beat balanced IP ({a_ip3} vs {a_ip})"
        );
    }
}

#[test]
fn fig13_shape_domain_energy_generalizes() {
    let t = fig13().unwrap();
    // the paper's core claim: even unseen applications get large energy
    // reductions from the domain PE
    for r in 0..t.rows.len() {
        let e = t.cell_f64(r, "Energy vs base").unwrap();
        assert!(
            e < 0.5,
            "{}: unseen app should halve PE energy, got {e}",
            t.cell(r, "Application").unwrap()
        );
    }
    // at least one unseen app also wins on area (laplacian shares the
    // blur structure)
    assert!((0..t.rows.len()).any(|r| t.cell_f64(r, "Area vs base").unwrap() < 0.8));
}

#[test]
fn fig14_shape_bands() {
    let t = fig14().unwrap();
    for r in 0..t.rows.len() {
        let variant = t.cell(r, "Variant").unwrap().to_owned();
        let area = t.cell_f64(r, "Area vs base").unwrap();
        if variant == "pe_base" {
            assert_eq!(area, 1.0);
            continue;
        }
        assert!(area < 1.0, "{variant} must beat the baseline ({area})");
        if variant == "pe_ml" {
            // the paper: 74-80% reduction for ML; we require > 55%
            assert!(area < 0.45, "PE ML area {area}");
        }
        if variant.starts_with("pe_spec") {
            // per-app specialization is at least as good as the domain PE
            let app = t.cell(r, "Application").unwrap().to_owned();
            let domain_row = (0..t.rows.len())
                .find(|&d| {
                    t.cell(d, "Application") == Some(app.as_str())
                        && matches!(t.cell(d, "Variant"), Some("pe_ip") | Some("pe_ml"))
                })
                .unwrap();
            let domain_area = t.cell_f64(domain_row, "Area vs base").unwrap();
            assert!(
                area <= domain_area + 0.02,
                "{app}: PE Spec ({area}) must not lose to the domain PE ({domain_area})"
            );
        }
    }
}
