//! One generator per table and figure of the paper's Section 5.
//!
//! Each function regenerates its table/figure from the live flow (mining,
//! merging, rule synthesis, mapping, pipelining, place-and-route) and
//! returns a [`Table`] whose rows mirror the paper's. Absolute values
//! differ from the paper's testbed; EXPERIMENTS.md records the
//! paper-vs-measured comparison for every row.
//!
//! The heavyweight generators (Table 2/3, Figs. 15–18) fan their
//! place-and-route evaluations out over [`run_batch`]'s job pool; rows
//! are assembled serially from the in-order results, so the emitted
//! tables are bit-identical at any worker count.

use crate::baselines::{asic, fpga, simba};
use crate::context::{
    all_apps, app, baseline, camera_ladder, pe_ip, pe_ip2, pe_ip3, pe_ml, pe_spec, run_batch,
    tech,
};
use crate::table::Table;
use apex_apps::{ip_apps, ml_apps, unseen_apps, Application, Domain};
use apex_core::{select_subgraphs, PeVariant, SubgraphSelection};
use apex_fault::{ApexError, Stage};
use apex_map::{map_application, NetKind};
use apex_mining::MinerConfig;

/// Table 1: the applications used for DSE evaluation.
///
/// # Errors
/// Infallible today; `Result` for uniformity with the other generators.
pub fn table1() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Table 1: Applications used for the DSE framework evaluation",
        &["Application", "Domain", "Description"],
    );
    for a in all_apps().iter().take(6) {
        t.push(vec![
            a.info.name.clone(),
            a.info.domain.to_string(),
            a.info.description.clone(),
        ]);
    }
    Ok(t)
}

/// Fig. 10: the frequent subgraphs selected for merging, per application,
/// in MIS order.
///
/// # Errors
/// Propagates mining failures.
pub fn fig10() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Fig. 10: Subgraphs selected for PE construction (MIS order)",
        &["Application", "Rank", "Subgraph", "Nodes", "MIS"],
    );
    let miner = MinerConfig::default();
    for a in all_apps().iter().take(6) {
        let (subs, _) = select_subgraphs(a, &miner, &SubgraphSelection {
            per_app: 4,
            ..SubgraphSelection::default()
        })
        .map_err(|e| {
            ApexError::new(Stage::Mine, format!("mining {}: {e}", a.info.name))
        })?;
        for (k, m) in subs.iter().enumerate() {
            t.push(vec![
                a.info.name.clone(),
                (k + 1).to_string(),
                m.pattern.to_string(),
                m.pattern.len().to_string(),
                m.mis_size.to_string(),
            ]);
        }
    }
    Ok(t)
}

/// Post-mapping PE-core totals (no place-and-route): the quick estimate of
/// Section 5.3.1.
///
/// # Errors
/// Propagates mapping failures as a [`Stage::Map`] error naming the
/// application.
pub fn post_mapping(
    variant: &PeVariant,
    application: &Application,
) -> Result<(usize, f64, f64), ApexError> {
    let design = map_application(&application.graph, &variant.spec.datapath, &variant.rules)
        .map_err(|e| {
            ApexError::new(Stage::Map, format!("{}: {e}", application.info.name))
        })?;
    let pe_area = variant.spec.area(tech()).total();
    let mut energy = 0.0;
    for node in &design.netlist.nodes {
        if let NetKind::Pe(inst) = &node.kind {
            let rule = &variant.rules.rules[inst.rule as usize];
            energy += variant.spec.energy(&rule.instantiate(&inst.payloads), tech());
        }
    }
    Ok((
        design.stats.pe_count,
        design.stats.pe_count as f64 * pe_area,
        energy,
    ))
}

/// Fig. 11: camera-pipeline PE specialization sweep (baseline, PE 1..4) —
/// total PE area and PE energy.
///
/// # Errors
/// Propagates variant-construction and mapping failures.
pub fn fig11() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Fig. 11: Camera-pipeline specialization (PE core level)",
        &["Variant", "#PEs", "Area/PE um2", "Total PE area um2", "PE energy pJ/cycle", "Area vs base", "Energy vs base"],
    );
    let camera = app("camera")?;
    let mut rows: Vec<(String, usize, f64, f64)> = Vec::new();
    {
        let (n, area, energy) = post_mapping(baseline()?, camera)?;
        rows.push(("pe_base".into(), n, area, energy));
    }
    for v in camera_ladder()? {
        let (n, area, energy) = post_mapping(v, camera)?;
        rows.push((v.spec.name.clone(), n, area, energy));
    }
    let (base_area, base_energy) = (rows[0].2, rows[0].3);
    for (name, n, area, energy) in rows {
        t.push(vec![
            name,
            n.to_string(),
            format!("{:.1}", area / n as f64),
            format!("{area:.0}"),
            format!("{energy:.1}"),
            format!("{:.2}x", area / base_area),
            format!("{:.2}x", energy / base_energy),
        ]);
    }
    Ok(t)
}

/// Table 2: camera-pipeline performance per mm² across the ladder
/// (pipelined designs at the 1.1 ns clock, 1920×1080 frames).
///
/// # Errors
/// Propagates variant-construction and evaluation failures.
pub fn table2() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Table 2: Camera pipeline on each PE variant (1.1 ns clock)",
        &["PE Variant", "#PEs", "Area/PE um2", "Total Area um2", "Frames/ms/mm2"],
    );
    let camera = app("camera")?;
    let mut variants: Vec<(&str, &PeVariant)> = vec![("PE Base", baseline()?)];
    let ladder = camera_ladder()?;
    let names = ["PE 1", "PE 2", "PE 3", "PE 4"];
    for (n, v) in names.iter().zip(ladder.iter()) {
        variants.push((n, v));
    }
    let batch: Vec<(&PeVariant, &Application, bool)> =
        variants.iter().map(|(_, v)| (*v, camera, true)).collect();
    for ((name, _), e) in variants.iter().zip(run_batch(&batch)?) {
        let area_per_pe = e.pe_core_area / e.pnr.pe_tiles as f64;
        t.push(vec![
            (*name).to_owned(),
            e.pnr.pe_tiles.to_string(),
            format!("{area_per_pe:.2}"),
            format!("{:.0}", e.pe_core_area),
            format!("{:.2}", e.perf_per_pe_mm2()),
        ]);
    }
    Ok(t)
}

/// Fig. 12: PE IP vs PE IP2 vs PE IP3 across the four IP applications
/// (post-mapping PE area and energy, normalized to the baseline PE).
///
/// # Errors
/// Propagates variant-construction and mapping failures.
pub fn fig12() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Fig. 12: Degree of merging across IP applications (vs baseline)",
        &["Application", "Variant", "#PEs", "Area vs base", "Energy vs base"],
    );
    for a in ip_apps() {
        let (_, base_area, base_energy) = post_mapping(baseline()?, &a)?;
        for v in [pe_ip()?, pe_ip2()?, pe_ip3()?] {
            let (n, area, energy) = post_mapping(v, &a)?;
            t.push(vec![
                a.info.name.clone(),
                v.spec.name.clone(),
                n.to_string(),
                format!("{:.2}x", area / base_area),
                format!("{:.2}x", energy / base_energy),
            ]);
        }
    }
    Ok(t)
}

/// Fig. 13: applications *not* analyzed during PE IP creation, on the
/// baseline vs PE IP (domain generalization).
///
/// # Errors
/// Propagates variant-construction and mapping failures.
pub fn fig13() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Fig. 13: Unseen applications on PE IP (vs baseline PE)",
        &["Application", "#PEs base", "#PEs IP", "Area vs base", "Energy vs base"],
    );
    for a in unseen_apps() {
        let (nb, base_area, base_energy) = post_mapping(baseline()?, &a)?;
        let (ni, area, energy) = post_mapping(pe_ip()?, &a)?;
        t.push(vec![
            a.info.name.clone(),
            nb.to_string(),
            ni.to_string(),
            format!("{:.2}x", area / base_area),
            format!("{:.2}x", energy / base_energy),
        ]);
    }
    Ok(t)
}

/// The domain variant evaluated against an application in Figs. 14–16.
fn domain_variant(a: &Application) -> Result<&'static PeVariant, ApexError> {
    match a.info.domain {
        Domain::ImageProcessing => pe_ip(),
        Domain::MachineLearning => pe_ml(),
    }
}

/// Fig. 14: post-mapping comparison of baseline, PE IP/ML, and PE Spec
/// across all six analyzed applications (PE contributions only).
///
/// # Errors
/// Propagates variant-construction and mapping failures.
pub fn fig14() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Fig. 14: Post-mapping PE-core area (normalized to baseline)",
        &["Application", "Variant", "#PEs", "Area vs base"],
    );
    for a in all_apps().iter().take(6) {
        let (nb, base_area, _) = post_mapping(baseline()?, a)?;
        t.push(vec![
            a.info.name.clone(),
            "pe_base".into(),
            nb.to_string(),
            "1.00x".into(),
        ]);
        let domain = domain_variant(a)?;
        for v in [domain, pe_spec(&a.info.name)?] {
            let (n, area, _) = post_mapping(v, a)?;
            t.push(vec![
                a.info.name.clone(),
                v.spec.name.clone(),
                n.to_string(),
                format!("{:.2}x", area / base_area),
            ]);
        }
    }
    Ok(t)
}

/// Fig. 15: post-place-and-route CGRA area and energy including the
/// interconnect, normalized to the baseline CGRA.
///
/// # Errors
/// Propagates variant-construction and evaluation failures.
pub fn fig15() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Fig. 15: Post-PnR CGRA area/energy incl. interconnect (vs baseline)",
        &["Application", "Variant", "Area vs base", "Energy vs base", "SB area vs base", "CB area vs base"],
    );
    // per analyzed app: baseline, domain variant, per-app PE Spec
    let mut batch: Vec<(&PeVariant, &Application, bool)> = Vec::new();
    for a in all_apps().iter().take(6) {
        batch.push((baseline()?, a, false));
        batch.push((domain_variant(a)?, a, false));
        batch.push((pe_spec(&a.info.name)?, a, false));
    }
    let mut results = run_batch(&batch)?.into_iter();
    for a in all_apps().iter().take(6) {
        let (base, dom, spec) = match (results.next(), results.next(), results.next()) {
            (Some(b), Some(d), Some(s)) => (b, d, s),
            _ => unreachable!("run_batch returns one result per job"),
        };
        for (v, e) in [(domain_variant(a)?, dom), (pe_spec(&a.info.name)?, spec)] {
            t.push(vec![
                a.info.name.clone(),
                v.spec.name.clone(),
                format!("{:.2}x", e.area.total() / base.area.total()),
                format!(
                    "{:.2}x",
                    e.energy_per_cycle.total() / base.energy_per_cycle.total()
                ),
                format!("{:.2}x", e.area.sb / base.area.sb),
                format!("{:.2}x", e.area.cb / base.area.cb),
            ]);
        }
    }
    Ok(t)
}

/// Table 3: post-pipelining resource utilization of the CGRA per
/// application and variant.
///
/// # Errors
/// Propagates variant-construction and evaluation failures.
pub fn table3() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Table 3: Post-pipelining resource utilization",
        &["Variant", "Application", "#PE", "#MEM", "#RF", "#IO", "#Reg", "#Routing"],
    );
    let mut batch: Vec<(&PeVariant, &Application, bool)> = Vec::new();
    let mut labels: Vec<(&str, &Application)> = Vec::new();
    for a in all_apps().iter().take(6) {
        batch.push((baseline()?, a, true));
        labels.push(("baseline", a));
    }
    for a in ip_apps() {
        let a = app(&a.info.name)?;
        batch.push((pe_ip()?, a, true));
        labels.push(("pe_ip", a));
        batch.push((pe_spec(&a.info.name)?, a, true));
        labels.push(("pe_spec", a));
    }
    for a in ml_apps() {
        let a = app(&a.info.name)?;
        batch.push((pe_ml()?, a, true));
        labels.push(("pe_ml", a));
    }
    for ((variant_name, a), e) in labels.iter().zip(run_batch(&batch)?) {
        t.push(vec![
            (*variant_name).to_owned(),
            a.info.name.clone(),
            e.pnr.pe_tiles.to_string(),
            e.pnr.mem_tiles.to_string(),
            e.pnr.rf_tiles.to_string(),
            e.pnr.io_tiles.to_string(),
            e.pnr.sb_regs.to_string(),
            e.pnr.routing_tiles.to_string(),
        ]);
    }
    Ok(t)
}

/// Fig. 16: pre- vs post-pipelining area, energy, and performance/mm².
///
/// # Errors
/// Propagates variant-construction and evaluation failures.
pub fn fig16() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Fig. 16: Impact of PE and application pipelining",
        &["Application", "Variant", "Period pre ns", "Period post ns", "Perf/mm2 gain", "Area cost", "#RF", "#Reg"],
    );
    let mut batch: Vec<(&PeVariant, &Application, bool)> = Vec::new();
    for a in all_apps().iter().take(6) {
        for v in [baseline()?, domain_variant(a)?] {
            batch.push((v, a, false));
            batch.push((v, a, true));
        }
    }
    let mut results = run_batch(&batch)?.into_iter();
    for a in all_apps().iter().take(6) {
        for v in [baseline()?, domain_variant(a)?] {
            let (pre, post) = match (results.next(), results.next()) {
                (Some(pre), Some(post)) => (pre, post),
                _ => unreachable!("run_batch returns one result per job"),
            };
            t.push(vec![
                a.info.name.clone(),
                v.spec.name.clone(),
                format!("{:.2}", pre.period_ns),
                format!("{:.2}", post.period_ns),
                format!("{:.2}x", post.perf_per_mm2() / pre.perf_per_mm2()),
                format!("{:.2}x", post.area.total() / pre.area.total()),
                post.pnr.rf_tiles.to_string(),
                post.pnr.sb_regs.to_string(),
            ]);
        }
    }
    Ok(t)
}

/// Fig. 17: energy and runtime of the IP applications on an FPGA, the
/// baseline CGRA, the CGRA with PE IP, and an ASIC.
///
/// # Errors
/// Propagates variant-construction and evaluation failures.
pub fn fig17() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Fig. 17: FPGA vs baseline CGRA vs CGRA-IP vs ASIC (per frame)",
        &["Application", "Platform", "Energy uJ", "Runtime ms"],
    );
    let mut batch: Vec<(&PeVariant, &Application, bool)> = Vec::new();
    for a in ip_apps() {
        let a = app(&a.info.name)?;
        batch.push((baseline()?, a, true));
        batch.push((pe_ip()?, a, true));
    }
    let mut results = run_batch(&batch)?.into_iter();
    for a in ip_apps() {
        let a = app(&a.info.name)?;
        let f = fpga(a, tech());
        t.push(vec![
            a.info.name.clone(),
            "FPGA".into(),
            format!("{:.1}", f.energy_uj),
            format!("{:.3}", f.runtime_ms),
        ]);
        for name in ["CGRA base", "CGRA-IP"] {
            let Some(e) = results.next() else {
                unreachable!("run_batch returns one result per job")
            };
            t.push(vec![
                a.info.name.clone(),
                name.into(),
                format!("{:.1}", e.total_energy_uj()),
                format!("{:.3}", e.runtime_ms()),
            ]);
        }
        let s = asic(a, tech());
        t.push(vec![
            a.info.name.clone(),
            "ASIC".into(),
            format!("{:.1}", s.energy_uj),
            format!("{:.3}", s.runtime_ms),
        ]);
    }
    Ok(t)
}

/// Fig. 18: ML layers on an FPGA, the baseline CGRA, CGRA-ML, and Simba.
///
/// # Errors
/// Propagates variant-construction and evaluation failures.
pub fn fig18() -> Result<Table, ApexError> {
    let mut t = Table::new(
        "Fig. 18: ML applications vs FPGA and Simba (per layer)",
        &["Application", "Platform", "Energy uJ", "Runtime ms"],
    );
    let mut batch: Vec<(&PeVariant, &Application, bool)> = Vec::new();
    for a in ml_apps() {
        let a = app(&a.info.name)?;
        batch.push((baseline()?, a, true));
        batch.push((pe_ml()?, a, true));
    }
    let mut results = run_batch(&batch)?.into_iter();
    for a in ml_apps() {
        let a = app(&a.info.name)?;
        let f = fpga(a, tech());
        t.push(vec![
            a.info.name.clone(),
            "FPGA".into(),
            format!("{:.1}", f.energy_uj),
            format!("{:.3}", f.runtime_ms),
        ]);
        for name in ["CGRA base", "CGRA-ML"] {
            let Some(e) = results.next() else {
                unreachable!("run_batch returns one result per job")
            };
            t.push(vec![
                a.info.name.clone(),
                name.into(),
                format!("{:.1}", e.total_energy_uj()),
                format!("{:.3}", e.runtime_ms()),
            ]);
        }
        let s = simba(a, tech());
        t.push(vec![
            a.info.name.clone(),
            "Simba".into(),
            format!("{:.1}", s.energy_uj),
            format!("{:.3}", s.runtime_ms),
        ]);
    }
    Ok(t)
}

/// Every experiment, keyed by its paper identifier.
pub fn all_experiments() -> Vec<(&'static str, fn() -> Result<Table, ApexError>)> {
    vec![
        ("table1", table1 as fn() -> Result<Table, ApexError>),
        ("fig10", fig10),
        ("fig11", fig11),
        ("table2", table2),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("table3", table3),
        ("fig16", fig16),
        ("fig17", fig17),
        ("fig18", fig18),
    ]
}

// The experiment generators double as this crate's deep integration
// tests; the cheap ones run here, the heavyweight ones in `tests/`.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_six_apps() {
        let t = table1().unwrap();
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.cell(0, "Application"), Some("camera"));
        assert_eq!(t.cell(4, "Domain"), Some("ML"));
    }

    #[test]
    fn fig10_selects_ranked_subgraphs() {
        let t = fig10().unwrap();
        assert!(t.rows.len() >= 6, "every app contributes subgraphs");
        // MIS values are positive
        for r in 0..t.rows.len() {
            assert!(t.cell_f64(r, "MIS").unwrap() >= 1.0);
        }
    }

    #[test]
    fn unknown_app_is_a_parse_error_not_a_panic() {
        let e = app("nonexistent").unwrap_err();
        assert_eq!(e.stage(), Stage::Parse);
        let chain = e.render_chain();
        assert!(chain.contains("unknown application 'nonexistent'"), "{chain}");
        assert!(chain.contains("camera"), "lists known apps: {chain}");
    }

    #[test]
    fn eval_options_reduce_moves() {
        let o = crate::context::eval_options(false);
        assert!(o.place.moves < 40_000);
        assert!(!o.pipelined);
        assert!(crate::context::eval_options(true).pipelined);
    }
}
