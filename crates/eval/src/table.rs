//! Minimal aligned-column table rendering for experiment reports.

use std::fmt;

/// A rendered experiment result: title, column headers, and rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table/figure title (e.g. "Table 2: Camera pipeline performance").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Convenience for building a row from display values.
    pub fn row(&mut self, cells: &[&dyn fmt::Display]) {
        self.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Looks a cell up by row and column header (tests use this).
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row).map(|r| r[col].as_str())
    }

    /// Parses a cell as `f64`.
    pub fn cell_f64(&self, row: usize, header: &str) -> Option<f64> {
        self.cell(row, header)?.trim_end_matches('x').parse().ok()
    }

    /// Finds the first row whose first column equals `key`.
    pub fn row_by_key(&self, key: &str) -> Option<usize> {
        self.rows.iter().position(|r| r[0] == key)
    }
}

impl Table {
    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "\n=== {} ===", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::new();
            for (w, c) in widths.iter().zip(cells) {
                parts.push(format!("{c:>w$}", w = *w));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["long-name".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("long-name"));
        // every data line has the same width
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new("Demo", &["name", "ratio"]);
        t.push(vec!["a".into(), "0.78x".into()]);
        assert_eq!(t.cell(0, "name"), Some("a"));
        assert_eq!(t.cell_f64(0, "ratio"), Some(0.78));
        assert_eq!(t.row_by_key("a"), Some(0));
        assert_eq!(t.row_by_key("zzz"), None);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("Demo", &["name", "note"]);
        t.push(vec!["a".into(), "x, y".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,note\n"));
        assert!(csv.contains("\"x, y\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }
}
