//! Analytic comparator models for Figures 17 and 18: FPGA, HLS-compiled
//! ASIC, and the Simba ML accelerator.
//!
//! The paper runs these on physical implementations (Virtex Ultrascale+,
//! Catapult HLS + Design Compiler, Simba silicon); we model them as
//! scalings of the application's raw datapath cost using the constants in
//! [`apex_tech::ComparatorModel`] (DESIGN.md §3). The *ratios* between
//! platforms are the reproduced quantity.

use apex_apps::Application;
use apex_ir::OpKind;
use apex_tech::TechModel;

/// Energy/runtime/area of one platform running one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformResult {
    /// Energy per frame/layer, microjoules.
    pub energy_uj: f64,
    /// Runtime per frame/layer, milliseconds.
    pub runtime_ms: f64,
    /// Active silicon area, µm².
    pub area_um2: f64,
}

/// Raw datapath energy of one unrolled output set, pJ.
fn set_energy(app: &Application, tech: &TechModel) -> f64 {
    app.graph
        .iter()
        .filter(|(_, n)| n.op().is_compute())
        .map(|(_, n)| tech.energy(n.op().kind()))
        .sum()
}

fn set_area(app: &Application, tech: &TechModel) -> f64 {
    app.graph
        .iter()
        .filter(|(_, n)| n.op().is_compute())
        .map(|(_, n)| tech.area(n.op().kind()))
        .sum()
}

/// ASIC compiled directly from the application (Clockwork + Catapult HLS
/// in the paper): a fully spatial datapath with modest wiring/control
/// overhead, fully pipelined at the CGRA's clock.
pub fn asic(app: &Application, tech: &TechModel) -> PlatformResult {
    let c = &tech.comparators;
    let cycles = app.steady_state_cycles() as f64;
    let e_cycle = set_energy(app, tech) * c.asic_overhead_factor;
    PlatformResult {
        energy_uj: e_cycle * cycles * 1e-6,
        runtime_ms: cycles * tech.clock_period_ns * 1e-6,
        area_um2: set_area(app, tech) * 1.4,
    }
}

/// FPGA implementation (Virtex Ultrascale+ VU9P in the paper): LUT-fabric
/// energy overhead per op and a slower achievable clock.
pub fn fpga(app: &Application, tech: &TechModel) -> PlatformResult {
    let c = &tech.comparators;
    let base = asic(app, tech);
    PlatformResult {
        energy_uj: base.energy_uj * c.fpga_energy_factor,
        runtime_ms: base.runtime_ms * c.fpga_runtime_factor,
        area_um2: base.area_um2 * 18.0, // LUT fabric overhead
    }
}

/// Simba-like ML accelerator: a vector-MAC array executing only the
/// multiply-accumulate work of the layer at very low energy per MAC.
/// Only meaningful for the ML applications.
pub fn simba(app: &Application, tech: &TechModel) -> PlatformResult {
    let c = &tech.comparators;
    const N_PES: f64 = 16.0;
    let macs_per_set = app
        .graph
        .op_histogram()
        .get(&OpKind::Mul)
        .copied()
        .unwrap_or(0) as f64;
    let sets = app.steady_state_cycles() as f64;
    let total_macs = macs_per_set * sets;
    // 25% energy overhead for accumulation buffers and NoC
    let energy_pj = total_macs * c.simba_mac_energy * 1.25;
    let cycles = total_macs / (c.simba_macs_per_cycle * N_PES);
    PlatformResult {
        energy_uj: energy_pj * 1e-6,
        runtime_ms: cycles * tech.clock_period_ns * 1e-6,
        area_um2: N_PES * c.simba_pe_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_apps::{gaussian, resnet_layer};

    #[test]
    fn fpga_burns_far_more_energy_than_asic() {
        let tech = TechModel::default();
        let app = gaussian();
        let a = asic(&app, &tech);
        let f = fpga(&app, &tech);
        assert!(f.energy_uj > 30.0 * a.energy_uj);
        assert!(f.runtime_ms > a.runtime_ms);
    }

    #[test]
    fn simba_is_extremely_efficient_on_resnet() {
        let tech = TechModel::default();
        let app = resnet_layer();
        let s = simba(&app, &tech);
        let a = asic(&app, &tech);
        // Simba's specialized MAC arrays beat even the layer-specific ASIC
        // on energy (the paper reports 16x vs CGRA-ML)
        assert!(s.energy_uj < a.energy_uj);
        assert!(s.energy_uj > 0.0 && s.runtime_ms > 0.0);
    }

    #[test]
    fn results_scale_with_frame_size() {
        let tech = TechModel::default();
        let mut app = gaussian();
        let small = asic(&app, &tech);
        app.info.output_pixels *= 2;
        let big = asic(&app, &tech);
        assert!((big.energy_uj / small.energy_uj - 2.0).abs() < 0.01);
    }
}
