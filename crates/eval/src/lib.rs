//! # apex-eval — experiment harness regenerating the paper's evaluation
//!
//! One generator per table and figure of Section 5 (see
//! [`experiments::all_experiments`]), built on the shared, cached PE
//! variants of [`context`] and the analytic FPGA/ASIC/Simba comparators of
//! [`baselines`]. The `report` binary prints everything:
//!
//! ```bash
//! cargo run --release -p apex-eval --bin report            # all experiments
//! cargo run --release -p apex-eval --bin report -- fig11   # one experiment
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod context;
pub mod experiments;
pub mod table;

pub use baselines::{asic, fpga, simba, PlatformResult};
pub use context::{
    all_apps, app, baseline, camera_ladder, pe_ip, pe_ip2, pe_ip3, pe_ml, pe_spec, run,
    run_batch, tech,
};
pub use experiments::all_experiments;
pub use table::Table;
