//! Shared, lazily-built experiment context: the applications, the PE
//! variants of Section 5, and the evaluation options. Variants are
//! memoized per process (and, through [`apex_core::VariantCache`], on
//! disk), so the many experiments (and benches) that share them build
//! each one once — and a warm run skips mining/merge/synthesis entirely.
//!
//! Everything here returns `Result` instead of panicking: a missing
//! application or a failed variant build surfaces as an [`ApexError`]
//! with the standard `error:` chain, which the binaries render and turn
//! into a nonzero exit.

use apex_apps::{analyzed_apps, ip_apps, ml_apps, unseen_apps, Application};
use apex_core::{
    baseline_variant, evaluate_app, specialization_ladder, specialized_variant, AppEvaluation,
    EvalOptions, PeVariant, SubgraphSelection,
};
use apex_fault::{ApexError, Stage};
use apex_ir::OpKind;
use apex_merge::MergeOptions;
use apex_mining::MinerConfig;
use apex_tech::TechModel;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Faster backend knobs for experiment sweeps: fewer annealing moves and
/// a slightly smaller miner budget. Results stay deterministic.
pub fn eval_options(pipelined: bool) -> EvalOptions {
    let mut o = EvalOptions::default();
    o.place.moves = 8_000;
    o.pipelined = pipelined;
    o
}

/// The technology model all experiments share.
pub fn tech() -> &'static TechModel {
    static TECH: OnceLock<TechModel> = OnceLock::new();
    TECH.get_or_init(TechModel::default)
}

fn miner() -> MinerConfig {
    MinerConfig {
        max_patterns: 500,
        ..MinerConfig::default()
    }
}

/// All nine applications (six analyzed + three unseen).
pub fn all_apps() -> &'static Vec<Application> {
    static APPS: OnceLock<Vec<Application>> = OnceLock::new();
    APPS.get_or_init(|| {
        let mut v = analyzed_apps();
        v.extend(unseen_apps());
        v
    })
}

/// Looks up an application by name from the shared set.
///
/// # Errors
/// Unknown names are a [`Stage::Parse`] error listing the known
/// applications (rendered by the binaries as the standard `error:` chain
/// with a nonzero exit, instead of the panic this used to be).
pub fn app(name: &str) -> Result<&'static Application, ApexError> {
    all_apps().iter().find(|a| a.info.name == name).ok_or_else(|| {
        let known: Vec<&str> = all_apps().iter().map(|a| a.info.name.as_str()).collect();
        ApexError::new(
            Stage::Parse,
            format!("unknown application '{name}' (known: {})", known.join(", ")),
        )
    })
}

/// Clones a memoized build error out of a `OnceLock` cell. The boxed
/// cause chain cannot be cloned, so it is flattened into the message —
/// the rendered chain text is preserved verbatim.
fn reraise(e: &ApexError) -> ApexError {
    let mut msg = e.message().to_owned();
    let mut src = std::error::Error::source(e);
    while let Some(s) = src {
        let text = s.to_string();
        if !msg.contains(&text) {
            msg.push_str(": ");
            msg.push_str(&text);
        }
        src = s.source();
    }
    ApexError::new(e.stage(), msg)
}

type VariantCell = OnceLock<Result<PeVariant, ApexError>>;

fn memo(
    cell: &'static VariantCell,
    build: impl FnOnce() -> Result<PeVariant, ApexError>,
) -> Result<&'static PeVariant, ApexError> {
    cell.get_or_init(build).as_ref().map_err(reraise)
}

/// The baseline PE with rules for every application.
///
/// # Errors
/// Propagates the variant-construction error of the first build.
pub fn baseline() -> Result<&'static PeVariant, ApexError> {
    static V: VariantCell = OnceLock::new();
    memo(&V, || {
        let refs: Vec<&Application> = all_apps().iter().collect();
        baseline_variant(&refs)
    })
}

/// PE IP: specialized for the four image-processing applications, but
/// evaluated on (and given rules for) the unseen applications too. The
/// baseline's bit-operation LUT is retained so predicate logic from
/// outside the analysis set still maps (DESIGN.md §3).
///
/// # Errors
/// Propagates the variant-construction error of the first build.
pub fn pe_ip() -> Result<&'static PeVariant, ApexError> {
    static V: VariantCell = OnceLock::new();
    memo(&V, || {
        let analysis = ip_apps();
        let arefs: Vec<&Application> = analysis.iter().collect();
        let eval: Vec<&Application> = all_apps()
            .iter()
            .filter(|a| a.info.domain == apex_apps::Domain::ImageProcessing)
            .collect();
        let extra: BTreeSet<OpKind> =
            [OpKind::Lut, OpKind::BitConst, OpKind::Abs].into_iter().collect();
        specialized_variant(
            "pe_ip",
            &arefs,
            &eval,
            &miner(),
            &SubgraphSelection::default(),
            &MergeOptions::default(),
            tech(),
            &extra,
        )
    })
}

/// PE IP2: one more subgraph from each application than PE IP (Fig. 12's
/// over-merged variant).
///
/// # Errors
/// Propagates the variant-construction error of the first build.
pub fn pe_ip2() -> Result<&'static PeVariant, ApexError> {
    static V: VariantCell = OnceLock::new();
    memo(&V, || {
        let analysis = ip_apps();
        let arefs: Vec<&Application> = analysis.iter().collect();
        specialized_variant(
            "pe_ip2",
            &arefs,
            &arefs,
            &miner(),
            &SubgraphSelection {
                per_app: 6,
                min_mis: 2,
                rank: apex_core::SelectionRank::MisSize,
                ..SubgraphSelection::default()
            },
            &MergeOptions::default(),
            tech(),
            &BTreeSet::new(),
        )
    })
}

/// PE IP3: unbalanced — specializes more for camera pipeline than for the
/// other applications (Fig. 12).
///
/// # Errors
/// Propagates the variant-construction error of the first build.
pub fn pe_ip3() -> Result<&'static PeVariant, ApexError> {
    static V: VariantCell = OnceLock::new();
    memo(&V, || {
        let analysis = ip_apps();
        let arefs: Vec<&Application> = analysis.iter().collect();
        // camera: deep selection, others: a single subgraph
        let mut chosen: Vec<&Application> = Vec::new();
        chosen.push(arefs[0]); // camera, weighted by repeating
        chosen.push(arefs[0]);
        chosen.push(arefs[0]);
        chosen.extend(&arefs[1..]);
        specialized_variant(
            "pe_ip3",
            &chosen,
            &arefs,
            &miner(),
            &SubgraphSelection {
                per_app: 1,
                ..SubgraphSelection::default()
            },
            &MergeOptions::default(),
            tech(),
            &BTreeSet::new(),
        )
    })
}

/// PE ML: specialized for the two machine-learning layers.
///
/// # Errors
/// Propagates the variant-construction error of the first build.
pub fn pe_ml() -> Result<&'static PeVariant, ApexError> {
    static V: VariantCell = OnceLock::new();
    memo(&V, || {
        let analysis = ml_apps();
        let arefs: Vec<&Application> = analysis.iter().collect();
        specialized_variant(
            "pe_ml",
            &arefs,
            &arefs,
            &miner(),
            &SubgraphSelection {
                per_app: 2,
                ..SubgraphSelection::default()
            },
            &MergeOptions::default(),
            tech(),
            &BTreeSet::new(),
        )
    })
}

/// PE Spec: the most specialized per-application PE.
///
/// # Errors
/// Unknown application names and variant-construction failures propagate;
/// failed builds are not memoized, so a later call retries.
pub fn pe_spec(app_name: &str) -> Result<&'static PeVariant, ApexError> {
    static V: OnceLock<std::sync::Mutex<std::collections::BTreeMap<String, &'static PeVariant>>> =
        OnceLock::new();
    let cache = V.get_or_init(|| std::sync::Mutex::new(std::collections::BTreeMap::new()));
    let a = app(app_name)?;
    {
        let guard = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(v) = guard.get(app_name) {
            return Ok(v);
        }
    }
    // the paper's stopping rule: most specialized without increasing the
    // application's area or energy. Built outside the lock: concurrent
    // first calls may race to build, but every racer produces the
    // identical (cache-reproducible) variant and the map keeps whichever
    // lands first.
    let v = apex_core::most_specialized_variant(a, &miner(), &MergeOptions::default(), tech(), 4)?;
    let mut guard = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let leaked: &'static PeVariant = guard
        .entry(app_name.to_owned())
        .or_insert_with(|| Box::leak(Box::new(v)));
    Ok(leaked)
}

/// The camera-pipeline specialization ladder (PE 1 … PE 4, Fig. 11 /
/// Table 2).
///
/// # Errors
/// Propagates the ladder-construction error of the first build.
pub fn camera_ladder() -> Result<&'static Vec<PeVariant>, ApexError> {
    static V: OnceLock<Result<Vec<PeVariant>, ApexError>> = OnceLock::new();
    V.get_or_init(|| {
        specialization_ladder(
            app("camera")?,
            3,
            &miner(),
            &MergeOptions::default(),
            tech(),
        )
    })
    .as_ref()
    .map_err(reraise)
}

/// Evaluates a variant on an application with shared options.
///
/// # Errors
/// Flow failures surface as a [`Stage::Sweep`] error naming the
/// application and variant (experiments treat them as fatal).
pub fn run(
    variant: &PeVariant,
    application: &Application,
    pipelined: bool,
) -> Result<AppEvaluation, ApexError> {
    evaluate_app(variant, application, tech(), &eval_options(pipelined)).map_err(|e| {
        ApexError::new(
            Stage::Sweep,
            format!(
                "evaluating {} on {}: {e}",
                application.info.name, variant.spec.name
            ),
        )
    })
}

/// Runs a batch of `(variant, application, pipelined)` evaluations on the
/// shared job pool and returns the results in input order.
///
/// Each evaluation is independent and internally deterministic, so the
/// batch is bit-identical to calling [`run`] serially — the pool only
/// changes scheduling, never results. The heavy experiment loops
/// (Table 2/3, Figs. 15–18) all funnel through here.
///
/// # Errors
/// The first failed (or panicked — the pool catches worker panics)
/// evaluation in input order.
pub fn run_batch(
    batch: &[(&PeVariant, &Application, bool)],
) -> Result<Vec<AppEvaluation>, ApexError> {
    apex_par::par_map(apex_par::default_jobs(), batch, |_, (v, a, pipelined)| {
        run(v, a, *pipelined)
    })
    .into_iter()
    .map(|r| r.unwrap_or_else(|p| Err(p.into_apex(Stage::Sweep))))
    .collect()
}
