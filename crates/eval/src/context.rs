//! Shared, lazily-built experiment context: the applications, the PE
//! variants of Section 5, and the evaluation options. Variants are cached
//! so the many experiments (and benches) that share them build each one
//! once per process.

use apex_apps::{analyzed_apps, ip_apps, ml_apps, unseen_apps, Application};
use apex_core::{
    baseline_variant, evaluate_app, specialization_ladder, specialized_variant, AppEvaluation,
    EvalOptions, PeVariant, SubgraphSelection,
};
use apex_ir::OpKind;
use apex_merge::MergeOptions;
use apex_mining::MinerConfig;
use apex_tech::TechModel;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Faster backend knobs for experiment sweeps: fewer annealing moves and
/// a slightly smaller miner budget. Results stay deterministic.
pub fn eval_options(pipelined: bool) -> EvalOptions {
    let mut o = EvalOptions::default();
    o.place.moves = 8_000;
    o.pipelined = pipelined;
    o
}

/// The technology model all experiments share.
pub fn tech() -> &'static TechModel {
    static TECH: OnceLock<TechModel> = OnceLock::new();
    TECH.get_or_init(TechModel::default)
}

fn miner() -> MinerConfig {
    MinerConfig {
        max_patterns: 500,
        ..MinerConfig::default()
    }
}

/// All nine applications (six analyzed + three unseen).
pub fn all_apps() -> &'static Vec<Application> {
    static APPS: OnceLock<Vec<Application>> = OnceLock::new();
    APPS.get_or_init(|| {
        let mut v = analyzed_apps();
        v.extend(unseen_apps());
        v
    })
}

/// Looks up an application by name from the shared set.
pub fn app(name: &str) -> &'static Application {
    all_apps()
        .iter()
        .find(|a| a.info.name == name)
        .unwrap_or_else(|| panic!("unknown app {name}"))
}

/// The baseline PE with rules for every application.
pub fn baseline() -> &'static PeVariant {
    static V: OnceLock<PeVariant> = OnceLock::new();
    V.get_or_init(|| {
        let refs: Vec<&Application> = all_apps().iter().collect();
        baseline_variant(&refs).expect("baseline variant builds")
    })
}

/// PE IP: specialized for the four image-processing applications, but
/// evaluated on (and given rules for) the unseen applications too. The
/// baseline's bit-operation LUT is retained so predicate logic from
/// outside the analysis set still maps (DESIGN.md §3).
pub fn pe_ip() -> &'static PeVariant {
    static V: OnceLock<PeVariant> = OnceLock::new();
    V.get_or_init(|| {
        let analysis = ip_apps();
        let arefs: Vec<&Application> = analysis.iter().collect();
        let eval: Vec<&Application> = all_apps()
            .iter()
            .filter(|a| a.info.domain == apex_apps::Domain::ImageProcessing)
            .collect();
        let extra: BTreeSet<OpKind> =
            [OpKind::Lut, OpKind::BitConst, OpKind::Abs].into_iter().collect();
        specialized_variant(
            "pe_ip",
            &arefs,
            &eval,
            &miner(),
            &SubgraphSelection::default(),
            &MergeOptions::default(),
            tech(),
            &extra,
        )
        .expect("pe_ip builds")
    })
}

/// PE IP2: one more subgraph from each application than PE IP (Fig. 12's
/// over-merged variant).
pub fn pe_ip2() -> &'static PeVariant {
    static V: OnceLock<PeVariant> = OnceLock::new();
    V.get_or_init(|| {
        let analysis = ip_apps();
        let arefs: Vec<&Application> = analysis.iter().collect();
        specialized_variant(
            "pe_ip2",
            &arefs,
            &arefs,
            &miner(),
            &SubgraphSelection {
                per_app: 6,
                min_mis: 2,
                rank: apex_core::SelectionRank::MisSize,
                ..SubgraphSelection::default()
            },
            &MergeOptions::default(),
            tech(),
            &BTreeSet::new(),
        )
        .expect("pe_ip2 builds")
    })
}

/// PE IP3: unbalanced — specializes more for camera pipeline than for the
/// other applications (Fig. 12).
pub fn pe_ip3() -> &'static PeVariant {
    static V: OnceLock<PeVariant> = OnceLock::new();
    V.get_or_init(|| {
        let analysis = ip_apps();
        let arefs: Vec<&Application> = analysis.iter().collect();
        // camera: deep selection, others: a single subgraph
        let mut chosen: Vec<&Application> = Vec::new();
        chosen.push(arefs[0]); // camera, weighted by repeating
        chosen.push(arefs[0]);
        chosen.push(arefs[0]);
        chosen.extend(&arefs[1..]);
        specialized_variant(
            "pe_ip3",
            &chosen,
            &arefs,
            &miner(),
            &SubgraphSelection {
                per_app: 1,
                ..SubgraphSelection::default()
            },
            &MergeOptions::default(),
            tech(),
            &BTreeSet::new(),
        )
        .expect("pe_ip3 builds")
    })
}

/// PE ML: specialized for the two machine-learning layers.
pub fn pe_ml() -> &'static PeVariant {
    static V: OnceLock<PeVariant> = OnceLock::new();
    V.get_or_init(|| {
        let analysis = ml_apps();
        let arefs: Vec<&Application> = analysis.iter().collect();
        specialized_variant(
            "pe_ml",
            &arefs,
            &arefs,
            &miner(),
            &SubgraphSelection {
                per_app: 2,
                ..SubgraphSelection::default()
            },
            &MergeOptions::default(),
            tech(),
            &BTreeSet::new(),
        )
        .expect("pe_ml builds")
    })
}

/// PE Spec: the most specialized per-application PE.
pub fn pe_spec(app_name: &str) -> &'static PeVariant {
    static V: OnceLock<std::sync::Mutex<std::collections::BTreeMap<String, &'static PeVariant>>> =
        OnceLock::new();
    let cache = V.get_or_init(|| std::sync::Mutex::new(std::collections::BTreeMap::new()));
    let mut guard = cache.lock().expect("unpoisoned");
    if let Some(v) = guard.get(app_name) {
        return v;
    }
    let a = app(app_name);
    // the paper's stopping rule: most specialized without increasing the
    // application's area or energy
    let v = apex_core::most_specialized_variant(a, &miner(), &MergeOptions::default(), tech(), 4)
        .expect("pe_spec builds");
    let leaked: &'static PeVariant = Box::leak(Box::new(v));
    guard.insert(app_name.to_owned(), leaked);
    leaked
}

/// The camera-pipeline specialization ladder (PE 1 … PE 4, Fig. 11 /
/// Table 2).
pub fn camera_ladder() -> &'static Vec<PeVariant> {
    static V: OnceLock<Vec<PeVariant>> = OnceLock::new();
    V.get_or_init(|| {
        specialization_ladder(
            app("camera"),
            3,
            &miner(),
            &MergeOptions::default(),
            tech(),
        )
        .expect("camera ladder builds")
    })
}

/// Evaluates a variant on an application with shared options, panicking
/// with context on flow failures (experiments treat them as fatal).
pub fn run(variant: &PeVariant, application: &Application, pipelined: bool) -> AppEvaluation {
    evaluate_app(variant, application, tech(), &eval_options(pipelined)).unwrap_or_else(|e| {
        panic!(
            "evaluating {} on {}: {e}",
            application.info.name, variant.spec.name
        )
    })
}
