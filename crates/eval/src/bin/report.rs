//! Prints the reproduced tables and figures of the APEX paper.

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    args.retain(|a| a != "--csv");
    for (name, gen) in apex_eval::all_experiments() {
        if !args.is_empty() && !args.iter().any(|f| f == name) {
            continue;
        }
        eprintln!("[running {name} ...]");
        let t0 = std::time::Instant::now();
        let table = gen();
        if csv {
            println!("# {name}");
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
        eprintln!("[{name} done in {:.1?}]", t0.elapsed());
    }
}
