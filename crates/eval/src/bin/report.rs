//! Prints the reproduced tables and figures of the APEX paper.
//!
//! ```text
//! report [--csv] [--jobs N] [ids...]
//! ```
//!
//! Unknown experiment ids and flow failures exit nonzero with the
//! standard `error:` chain on stderr.

use apex_fault::{ApexError, Stage};

fn main() {
    if let Err(e) = run() {
        eprintln!("{}", e.render_chain());
        std::process::exit(1);
    }
}

fn run() -> Result<(), ApexError> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    args.retain(|a| a != "--csv");
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        let n: usize = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .filter(|n| *n >= 1)
            .ok_or_else(|| {
                ApexError::new(Stage::Cli, "--jobs expects a positive integer")
            })?;
        apex_par::set_jobs(n);
        args.drain(pos..pos + 2);
    }
    let experiments = apex_eval::all_experiments();
    for id in &args {
        if !experiments.iter().any(|(name, _)| name == id) {
            let known: Vec<&str> = experiments.iter().map(|(name, _)| *name).collect();
            return Err(ApexError::new(
                Stage::Cli,
                format!("unknown experiment '{id}' (known: {})", known.join(", ")),
            ));
        }
    }
    for (name, gen) in experiments {
        if !args.is_empty() && !args.iter().any(|f| f == name) {
            continue;
        }
        eprintln!("[running {name} ...]");
        let t0 = std::time::Instant::now();
        let table = gen()?;
        if csv {
            println!("# {name}");
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
        eprintln!("[{name} done in {:.1?}]", t0.elapsed());
    }
    Ok(())
}
