//! Ablation studies for the design choices DESIGN.md §5b calls out:
//!
//! 1. subgraph ranking: utilizable-savings vs the paper's raw MIS order,
//! 2. clique search: exact branch-and-bound vs greedy-only merging,
//! 3. register-file FIFO cutoff for application pipelining,
//! 4. merge breadth (subgraphs per application).
//!
//! ```bash
//! cargo run --release -p apex-eval --bin ablations
//! ```

use apex_core::{specialized_variant, SelectionRank, SubgraphSelection};
use apex_eval::experiments::post_mapping;
use apex_eval::Table;
use apex_fault::ApexError;
use apex_map::map_application;
use apex_merge::MergeOptions;
use apex_mining::MinerConfig;
use apex_pipeline::{pipeline_application, AppPipelineOptions};
use std::collections::BTreeSet;

fn main() {
    if let Err(e) = run() {
        eprintln!("{}", e.render_chain());
        std::process::exit(1);
    }
}

fn run() -> Result<(), ApexError> {
    let tech = apex_eval::tech();
    let apps = [apex_eval::app("gaussian")?, apex_eval::app("camera")?];

    // ---- 1. ranking ablation ------------------------------------------------
    let mut t = Table::new(
        "Ablation 1: subgraph ranking (post-mapping, vs baseline PE)",
        &["Application", "Ranking", "#PEs", "Total PE area um2"],
    );
    for app in apps {
        for (name, rank) in [
            ("savings (ours)", SelectionRank::SavingsPotential),
            ("raw MIS (paper)", SelectionRank::MisSize),
        ] {
            let v = specialized_variant(
                "ablate_rank",
                &[app],
                &[app],
                &MinerConfig::default(),
                &SubgraphSelection {
                    per_app: 3,
                    rank,
                    ..SubgraphSelection::default()
                },
                &MergeOptions::default(),
                tech,
                &BTreeSet::new(),
            )?;
            let (n, area, _) = post_mapping(&v, app)?;
            t.push(vec![
                app.info.name.clone(),
                name.into(),
                n.to_string(),
                format!("{area:.0}"),
            ]);
        }
    }
    println!("{t}");

    // ---- 2. clique budget ablation -------------------------------------------
    let mut t = Table::new(
        "Ablation 2: clique search budget (merged PE area)",
        &["Application", "Budget", "PE area um2", "Mux legs"],
    );
    for app in apps {
        for (name, budget) in [("greedy-only", 1usize), ("exact B&B", 500_000)] {
            let v = specialized_variant(
                "ablate_clique",
                &[app],
                &[app],
                &MinerConfig::default(),
                &SubgraphSelection::default(),
                &MergeOptions {
                    clique_budget: budget,
                    ..MergeOptions::default()
                },
                tech,
                &BTreeSet::new(),
            )?;
            t.push(vec![
                app.info.name.clone(),
                name.into(),
                format!("{:.0}", v.spec.area(tech).total()),
                v.spec.datapath.mux_leg_count().to_string(),
            ]);
        }
    }
    println!("{t}");

    // ---- 3. RF cutoff ablation ------------------------------------------------
    let mut t = Table::new(
        "Ablation 3: register-chain cutoff for the RF FIFO transform",
        &["Application", "Cutoff", "#Reg", "#RF"],
    );
    let base = apex_eval::baseline()?;
    for app in apps {
        let design = map_application(&app.graph, &base.spec.datapath, &base.rules)
            .expect("baseline maps everything");
        for cutoff in [0u32, 2, 8] {
            let (_, report) = pipeline_application(
                &design.netlist,
                &base.rules,
                2,
                &AppPipelineOptions {
                    rf_chain_cutoff: cutoff,
                },
            )
            .expect("pipelining succeeds");
            t.push(vec![
                app.info.name.clone(),
                cutoff.to_string(),
                report.regs_inserted.to_string(),
                report.fifos_inserted.to_string(),
            ]);
        }
    }
    println!("{t}");

    // ---- 4. merge breadth -------------------------------------------------------
    let mut t = Table::new(
        "Ablation 4: subgraphs merged per application (gaussian)",
        &["per_app", "#PEs", "PE area/PE um2", "Total PE area um2"],
    );
    let app = apex_eval::app("gaussian")?;
    for k in [0usize, 1, 2, 3, 4] {
        let v = specialized_variant(
            "ablate_breadth",
            &[app],
            &[app],
            &MinerConfig::default(),
            &SubgraphSelection {
                per_app: k,
                ..SubgraphSelection::default()
            },
            &MergeOptions::default(),
            tech,
            &BTreeSet::new(),
        )?;
        let (n, area, _) = post_mapping(&v, app)?;
        t.push(vec![
            k.to_string(),
            n.to_string(),
            format!("{:.0}", area / n as f64),
            format!("{area:.0}"),
        ]);
    }
    println!("{t}");
    Ok(())
}
