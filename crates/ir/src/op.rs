//! Operation set of the dataflow-graph IR.
//!
//! The IR models the word-level (16-bit) datapath of the AHA CGRA used by
//! the APEX paper, plus a 1-bit predicate datapath. Every operation has a
//! fixed signature (input port types and a single output type) and a pure
//! evaluation function.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Type of a value flowing along an IR edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 16-bit word (the CGRA's native datapath width).
    Word,
    /// 1-bit predicate.
    Bit,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Word => write!(f, "word"),
            ValueType::Bit => write!(f, "bit"),
        }
    }
}

/// A runtime value: either a 16-bit word or a single bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 16-bit word value.
    Word(u16),
    /// 1-bit value.
    Bit(bool),
}

impl Value {
    /// The type of this value.
    pub fn value_type(self) -> ValueType {
        match self {
            Value::Word(_) => ValueType::Word,
            Value::Bit(_) => ValueType::Bit,
        }
    }

    /// Extracts the word payload.
    ///
    /// # Panics
    /// Panics if the value is a [`Value::Bit`].
    pub fn word(self) -> u16 {
        match self {
            Value::Word(w) => w,
            Value::Bit(_) => panic!("expected word value, found bit"),
        }
    }

    /// Extracts the bit payload.
    ///
    /// # Panics
    /// Panics if the value is a [`Value::Word`].
    pub fn bit(self) -> bool {
        match self {
            Value::Bit(b) => b,
            Value::Word(_) => panic!("expected bit value, found word"),
        }
    }

    /// The canonical "zero" of a type, used to initialize registers.
    pub fn zero(ty: ValueType) -> Value {
        match ty {
            ValueType::Word => Value::Word(0),
            ValueType::Bit => Value::Bit(false),
        }
    }
}

impl From<u16> for Value {
    fn from(w: u16) -> Self {
        Value::Word(w)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bit(b)
    }
}

/// An IR operation.
///
/// Word operations compute on 16-bit operands with wrapping semantics;
/// `S`-prefixed operations reinterpret their operands as two's-complement
/// `i16`. Shift amounts use the low 4 bits of the shift operand, matching
/// a 16-bit barrel shifter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Op {
    // ---- structural -----------------------------------------------------
    /// Word-typed primary input (argument position is the graph's input
    /// ordering).
    Input,
    /// Bit-typed primary input.
    BitInput,
    /// Word-typed primary output (single word input).
    Output,
    /// Bit-typed primary output (single bit input).
    BitOutput,
    /// Compile-time word constant (e.g. a convolution kernel weight).
    Const(u16),
    /// Compile-time bit constant.
    BitConst(bool),
    /// Single-cycle pipeline register on the word datapath.
    Reg,
    /// Single-cycle pipeline register on the bit datapath.
    BitReg,
    /// Register file used as a FIFO with the given delay (Section 4.3 of
    /// the paper: long register chains become register-file FIFOs).
    Fifo(u8),

    // ---- word arithmetic -------------------------------------------------
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction (`in0 - in1`).
    Sub,
    /// Wrapping 16x16 -> low-16 multiplication.
    Mul,
    /// Signed absolute value.
    Abs,
    /// Signed minimum.
    Smin,
    /// Signed maximum.
    Smax,
    /// Unsigned minimum.
    Umin,
    /// Unsigned maximum.
    Umax,
    /// Logical left shift (`in0 << (in1 & 15)`).
    Shl,
    /// Logical right shift.
    Lshr,
    /// Arithmetic right shift.
    Ashr,
    /// Bitwise AND of words.
    And,
    /// Bitwise OR of words.
    Or,
    /// Bitwise XOR of words.
    Xor,
    /// Bitwise NOT of a word.
    Not,
    /// Word multiplexer: `if in2 { in1 } else { in0 }` (select on port 2).
    Mux,

    // ---- comparisons (word, word) -> bit ---------------------------------
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,

    // ---- bit datapath -----------------------------------------------------
    /// AND of two bits.
    BitAnd,
    /// OR of two bits.
    BitOr,
    /// XOR of two bits.
    BitXor,
    /// NOT of a bit.
    BitNot,
    /// Bit multiplexer: `if in2 { in1 } else { in0 }`.
    BitMux,
    /// Three-input look-up table; the table byte holds the output for each
    /// of the 8 input combinations (bit i = output for inputs `i2 i1 i0`).
    Lut(u8),
}

/// Payload-free operation label used by the subgraph miner and by the
/// technology model. Two nodes are "the same operation" for mining and
/// merging purposes iff their [`OpKind`]s are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpKind {
    Input,
    BitInput,
    Output,
    BitOutput,
    Const,
    BitConst,
    Reg,
    BitReg,
    Fifo,
    Add,
    Sub,
    Mul,
    Abs,
    Smin,
    Smax,
    Umin,
    Umax,
    Shl,
    Lshr,
    Ashr,
    And,
    Or,
    Xor,
    Not,
    Mux,
    Eq,
    Neq,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
    BitAnd,
    BitOr,
    BitXor,
    BitNot,
    BitMux,
    Lut,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = format!("{self:?}").to_lowercase();
        write!(f, "{s}")
    }
}

/// All operation kinds, in declaration order. Useful for building
/// technology tables and exhaustive tests.
pub const ALL_OP_KINDS: &[OpKind] = &[
    OpKind::Input,
    OpKind::BitInput,
    OpKind::Output,
    OpKind::BitOutput,
    OpKind::Const,
    OpKind::BitConst,
    OpKind::Reg,
    OpKind::BitReg,
    OpKind::Fifo,
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Abs,
    OpKind::Smin,
    OpKind::Smax,
    OpKind::Umin,
    OpKind::Umax,
    OpKind::Shl,
    OpKind::Lshr,
    OpKind::Ashr,
    OpKind::And,
    OpKind::Or,
    OpKind::Xor,
    OpKind::Not,
    OpKind::Mux,
    OpKind::Eq,
    OpKind::Neq,
    OpKind::Slt,
    OpKind::Sle,
    OpKind::Sgt,
    OpKind::Sge,
    OpKind::Ult,
    OpKind::Ule,
    OpKind::Ugt,
    OpKind::Uge,
    OpKind::BitAnd,
    OpKind::BitOr,
    OpKind::BitXor,
    OpKind::BitNot,
    OpKind::BitMux,
    OpKind::Lut,
];

use ValueType::{Bit, Word};

impl Op {
    /// The payload-free label of this operation.
    pub fn kind(self) -> OpKind {
        match self {
            Op::Input => OpKind::Input,
            Op::BitInput => OpKind::BitInput,
            Op::Output => OpKind::Output,
            Op::BitOutput => OpKind::BitOutput,
            Op::Const(_) => OpKind::Const,
            Op::BitConst(_) => OpKind::BitConst,
            Op::Reg => OpKind::Reg,
            Op::BitReg => OpKind::BitReg,
            Op::Fifo(_) => OpKind::Fifo,
            Op::Add => OpKind::Add,
            Op::Sub => OpKind::Sub,
            Op::Mul => OpKind::Mul,
            Op::Abs => OpKind::Abs,
            Op::Smin => OpKind::Smin,
            Op::Smax => OpKind::Smax,
            Op::Umin => OpKind::Umin,
            Op::Umax => OpKind::Umax,
            Op::Shl => OpKind::Shl,
            Op::Lshr => OpKind::Lshr,
            Op::Ashr => OpKind::Ashr,
            Op::And => OpKind::And,
            Op::Or => OpKind::Or,
            Op::Xor => OpKind::Xor,
            Op::Not => OpKind::Not,
            Op::Mux => OpKind::Mux,
            Op::Eq => OpKind::Eq,
            Op::Neq => OpKind::Neq,
            Op::Slt => OpKind::Slt,
            Op::Sle => OpKind::Sle,
            Op::Sgt => OpKind::Sgt,
            Op::Sge => OpKind::Sge,
            Op::Ult => OpKind::Ult,
            Op::Ule => OpKind::Ule,
            Op::Ugt => OpKind::Ugt,
            Op::Uge => OpKind::Uge,
            Op::BitAnd => OpKind::BitAnd,
            Op::BitOr => OpKind::BitOr,
            Op::BitXor => OpKind::BitXor,
            Op::BitNot => OpKind::BitNot,
            Op::BitMux => OpKind::BitMux,
            Op::Lut(_) => OpKind::Lut,
        }
    }

    /// Input port types of this operation, in port order.
    pub fn input_types(self) -> &'static [ValueType] {
        match self {
            Op::Input | Op::BitInput | Op::Const(_) | Op::BitConst(_) => &[],
            Op::Output | Op::Reg | Op::Fifo(_) | Op::Abs | Op::Not => &[Word],
            Op::BitOutput | Op::BitReg | Op::BitNot => &[Bit],
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Smin
            | Op::Smax
            | Op::Umin
            | Op::Umax
            | Op::Shl
            | Op::Lshr
            | Op::Ashr
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Eq
            | Op::Neq
            | Op::Slt
            | Op::Sle
            | Op::Sgt
            | Op::Sge
            | Op::Ult
            | Op::Ule
            | Op::Ugt
            | Op::Uge => &[Word, Word],
            Op::Mux => &[Word, Word, Bit],
            Op::BitAnd | Op::BitOr | Op::BitXor => &[Bit, Bit],
            Op::BitMux | Op::Lut(_) => &[Bit, Bit, Bit],
        }
    }

    /// Output type of this operation.
    pub fn output_type(self) -> ValueType {
        match self {
            Op::Input
            | Op::Const(_)
            | Op::Reg
            | Op::Fifo(_)
            | Op::Output
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Abs
            | Op::Smin
            | Op::Smax
            | Op::Umin
            | Op::Umax
            | Op::Shl
            | Op::Lshr
            | Op::Ashr
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Not
            | Op::Mux => Word,
            Op::BitInput
            | Op::BitConst(_)
            | Op::BitReg
            | Op::BitOutput
            | Op::Eq
            | Op::Neq
            | Op::Slt
            | Op::Sle
            | Op::Sgt
            | Op::Sge
            | Op::Ult
            | Op::Ule
            | Op::Ugt
            | Op::Uge
            | Op::BitAnd
            | Op::BitOr
            | Op::BitXor
            | Op::BitNot
            | Op::BitMux
            | Op::Lut(_) => Bit,
        }
    }

    /// Number of input ports.
    pub fn arity(self) -> usize {
        self.input_types().len()
    }

    /// Whether ports 0 and 1 are interchangeable (the destination-port
    /// matching rule during merging only applies to non-commutative
    /// operations, Section 3.3).
    pub fn commutative(self) -> bool {
        matches!(
            self,
            Op::Add
                | Op::Mul
                | Op::Smin
                | Op::Smax
                | Op::Umin
                | Op::Umax
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::Eq
                | Op::Neq
                | Op::BitAnd
                | Op::BitOr
                | Op::BitXor
        )
    }

    /// Whether the node participates in subgraph mining. Structural nodes
    /// (I/O, registers, FIFOs) do not; constants do, because merged PE
    /// datapaths contain constant registers (Fig. 2c, Fig. 5).
    pub fn is_compute(self) -> bool {
        !matches!(
            self,
            Op::Input
                | Op::BitInput
                | Op::Output
                | Op::BitOutput
                | Op::Reg
                | Op::BitReg
                | Op::Fifo(_)
        )
    }

    /// Cycles of delay this node contributes during cycle-accurate
    /// simulation (0 for combinational operations).
    pub fn latency(self) -> u32 {
        match self {
            Op::Reg | Op::BitReg => 1,
            Op::Fifo(d) => u32::from(d),
            _ => 0,
        }
    }

    /// Evaluates the operation on input values.
    ///
    /// Registers and FIFOs act as wires here; cycle-accurate delay is the
    /// simulator's job.
    ///
    /// # Panics
    /// Panics if `inputs` does not match [`Op::input_types`].
    pub fn eval(self, inputs: &[Value]) -> Value {
        let tys = self.input_types();
        assert_eq!(
            inputs.len(),
            tys.len(),
            "op {self:?} expects {} inputs, got {}",
            tys.len(),
            inputs.len()
        );
        for (i, (v, ty)) in inputs.iter().zip(tys).enumerate() {
            assert_eq!(v.value_type(), *ty, "op {self:?} port {i} type mismatch");
        }
        let w = |i: usize| inputs[i].word();
        let b = |i: usize| inputs[i].bit();
        let sw = |i: usize| inputs[i].word() as i16;
        match self {
            Op::Input | Op::BitInput => {
                panic!("primary inputs have no evaluation; bind them via the environment")
            }
            Op::Const(c) => Value::Word(c),
            Op::BitConst(c) => Value::Bit(c),
            Op::Output | Op::Reg | Op::Fifo(_) => Value::Word(w(0)),
            Op::BitOutput | Op::BitReg => Value::Bit(b(0)),
            Op::Add => Value::Word(w(0).wrapping_add(w(1))),
            Op::Sub => Value::Word(w(0).wrapping_sub(w(1))),
            Op::Mul => Value::Word(w(0).wrapping_mul(w(1))),
            Op::Abs => Value::Word(sw(0).wrapping_abs() as u16),
            Op::Smin => Value::Word(sw(0).min(sw(1)) as u16),
            Op::Smax => Value::Word(sw(0).max(sw(1)) as u16),
            Op::Umin => Value::Word(w(0).min(w(1))),
            Op::Umax => Value::Word(w(0).max(w(1))),
            Op::Shl => Value::Word(w(0) << (w(1) & 15)),
            Op::Lshr => Value::Word(w(0) >> (w(1) & 15)),
            Op::Ashr => Value::Word((sw(0) >> (w(1) & 15)) as u16),
            Op::And => Value::Word(w(0) & w(1)),
            Op::Or => Value::Word(w(0) | w(1)),
            Op::Xor => Value::Word(w(0) ^ w(1)),
            Op::Not => Value::Word(!w(0)),
            Op::Mux => Value::Word(if b(2) { w(1) } else { w(0) }),
            Op::Eq => Value::Bit(w(0) == w(1)),
            Op::Neq => Value::Bit(w(0) != w(1)),
            Op::Slt => Value::Bit(sw(0) < sw(1)),
            Op::Sle => Value::Bit(sw(0) <= sw(1)),
            Op::Sgt => Value::Bit(sw(0) > sw(1)),
            Op::Sge => Value::Bit(sw(0) >= sw(1)),
            Op::Ult => Value::Bit(w(0) < w(1)),
            Op::Ule => Value::Bit(w(0) <= w(1)),
            Op::Ugt => Value::Bit(w(0) > w(1)),
            Op::Uge => Value::Bit(w(0) >= w(1)),
            Op::BitAnd => Value::Bit(b(0) & b(1)),
            Op::BitOr => Value::Bit(b(0) | b(1)),
            Op::BitXor => Value::Bit(b(0) ^ b(1)),
            Op::BitNot => Value::Bit(!b(0)),
            Op::BitMux => Value::Bit(if b(2) { b(1) } else { b(0) }),
            Op::Lut(table) => {
                let idx = (b(0) as u8) | ((b(1) as u8) << 1) | ((b(2) as u8) << 2);
                Value::Bit((table >> idx) & 1 == 1)
            }
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Const(c) => write!(f, "const({c})"),
            Op::BitConst(c) => write!(f, "bitconst({c})"),
            Op::Fifo(d) => write!(f, "fifo({d})"),
            Op::Lut(t) => write!(f, "lut(0x{t:02x})"),
            other => write!(f, "{}", other.kind()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_are_consistent() {
        let ops = [
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Abs,
            Op::Smin,
            Op::Smax,
            Op::Umin,
            Op::Umax,
            Op::Shl,
            Op::Lshr,
            Op::Ashr,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Not,
            Op::Mux,
            Op::Eq,
            Op::Neq,
            Op::Slt,
            Op::Sle,
            Op::Sgt,
            Op::Sge,
            Op::Ult,
            Op::Ule,
            Op::Ugt,
            Op::Uge,
            Op::BitAnd,
            Op::BitOr,
            Op::BitXor,
            Op::BitNot,
            Op::BitMux,
            Op::Lut(0xAA),
            Op::Const(3),
            Op::BitConst(true),
            Op::Reg,
            Op::BitReg,
            Op::Fifo(3),
        ];
        for op in ops {
            assert_eq!(op.arity(), op.input_types().len());
            // kind round-trips through display without panicking
            let _ = format!("{op} {:?}", op.kind());
        }
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(Op::Add.eval(&[Value::Word(0xFFFF), Value::Word(1)]), Value::Word(0));
        assert_eq!(Op::Sub.eval(&[Value::Word(0), Value::Word(1)]), Value::Word(0xFFFF));
        assert_eq!(Op::Mul.eval(&[Value::Word(300), Value::Word(300)]), Value::Word(90000u32 as u16));
        assert_eq!(Op::Abs.eval(&[Value::Word((-5i16) as u16)]), Value::Word(5));
        assert_eq!(
            Op::Smin.eval(&[Value::Word((-5i16) as u16), Value::Word(3)]),
            Value::Word((-5i16) as u16)
        );
        assert_eq!(Op::Umin.eval(&[Value::Word((-5i16) as u16), Value::Word(3)]), Value::Word(3));
    }

    #[test]
    fn shift_masks_amount() {
        assert_eq!(Op::Shl.eval(&[Value::Word(1), Value::Word(17)]), Value::Word(2));
        assert_eq!(Op::Ashr.eval(&[Value::Word(0x8000), Value::Word(15)]), Value::Word(0xFFFF));
        assert_eq!(Op::Lshr.eval(&[Value::Word(0x8000), Value::Word(15)]), Value::Word(1));
    }

    #[test]
    fn mux_selects_port_by_bit() {
        let a = Value::Word(11);
        let b = Value::Word(22);
        assert_eq!(Op::Mux.eval(&[a, b, Value::Bit(false)]), a);
        assert_eq!(Op::Mux.eval(&[a, b, Value::Bit(true)]), b);
    }

    #[test]
    fn comparisons_signed_vs_unsigned() {
        let neg = Value::Word((-1i16) as u16);
        let one = Value::Word(1);
        assert_eq!(Op::Slt.eval(&[neg, one]), Value::Bit(true));
        assert_eq!(Op::Ult.eval(&[neg, one]), Value::Bit(false));
    }

    #[test]
    fn lut_truth_table() {
        // table 0b11101000 = majority(i2,i1,i0)
        let maj = Op::Lut(0b1110_1000);
        for i in 0u8..8 {
            let bits = [
                Value::Bit(i & 1 != 0),
                Value::Bit(i & 2 != 0),
                Value::Bit(i & 4 != 0),
            ];
            let expect = (i & 1 != 0) as u8 + (i & 2 != 0) as u8 + (i & 4 != 0) as u8 >= 2;
            assert_eq!(maj.eval(&bits), Value::Bit(expect), "input {i:03b}");
        }
    }

    #[test]
    fn commutativity_flags() {
        assert!(Op::Add.commutative());
        assert!(Op::Mul.commutative());
        assert!(!Op::Sub.commutative());
        assert!(!Op::Shl.commutative());
        assert!(!Op::Mux.commutative());
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn eval_checks_arity() {
        let _ = Op::Add.eval(&[Value::Word(1)]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn eval_checks_types() {
        let _ = Op::Add.eval(&[Value::Word(1), Value::Bit(true)]);
    }
}
