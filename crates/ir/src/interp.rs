//! Reference interpreter for dataflow graphs.
//!
//! Two modes are provided:
//!
//! * [`evaluate`] — combinational semantics. Registers and FIFOs act as
//!   wires. This is the *golden model* every downstream stage (rewrite-rule
//!   synthesis, mapping, pipelining, CGRA simulation) is checked against.
//! * [`simulate`] — cycle-accurate semantics. Registers delay one cycle,
//!   FIFOs delay `d` cycles. Used to validate branch-delay matching and the
//!   register-file FIFO transform.

use crate::graph::Graph;
use crate::op::{Op, Value};
use std::collections::VecDeque;

/// Evaluates a graph combinationally.
///
/// `inputs` are bound to the graph's primary inputs in
/// [`Graph::primary_inputs`] order. Returns output values in
/// [`Graph::primary_outputs`] order.
///
/// # Panics
/// Panics if `inputs` has the wrong length or a value's type does not match
/// its input node.
// invariant: sequential node ids are a topological order (enforced by
// `Graph::try_add`), so every operand is evaluated before its consumer
#[allow(clippy::expect_used)]
pub fn evaluate(graph: &Graph, inputs: &[Value]) -> Vec<Value> {
    let pis = graph.primary_inputs();
    assert_eq!(
        inputs.len(),
        pis.len(),
        "graph '{}' has {} primary inputs, got {}",
        graph.name(),
        pis.len(),
        inputs.len()
    );
    let mut values: Vec<Option<Value>> = vec![None; graph.len()];
    for (&pi, &v) in pis.iter().zip(inputs) {
        assert_eq!(
            v.value_type(),
            graph.op(pi).output_type(),
            "input {pi} type mismatch"
        );
        values[pi.index()] = Some(v);
    }
    let mut in_buf: Vec<Value> = Vec::with_capacity(3);
    for (id, node) in graph.iter() {
        if matches!(node.op(), Op::Input | Op::BitInput) {
            continue;
        }
        in_buf.clear();
        in_buf.extend(
            node.inputs()
                .iter()
                .map(|s| values[s.index()].expect("topological order violated")),
        );
        values[id.index()] = Some(node.op().eval(&in_buf));
    }
    graph
        .primary_outputs()
        .iter()
        .map(|po| values[po.index()].expect("unevaluated output"))
        .collect()
}

/// Per-node state used by the cycle-accurate simulator.
enum NodeState {
    /// Combinational node, or primary input.
    None,
    /// Register or FIFO contents (front = oldest value).
    Delay(VecDeque<Value>),
}

/// Cycle-accurate simulation.
///
/// `input_streams[i][c]` is the value of primary input `i` at cycle `c`.
/// All streams must have the same length; the simulation runs for that many
/// cycles plus enough extra cycles to drain registers, with inputs held at
/// zero during the drain. Returns one stream per primary output covering
/// every simulated cycle.
///
/// # Panics
/// Panics if stream counts or types do not match the graph's inputs.
pub fn simulate(graph: &Graph, input_streams: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let pis = graph.primary_inputs();
    assert_eq!(
        input_streams.len(),
        pis.len(),
        "graph '{}' has {} primary inputs, got {} streams",
        graph.name(),
        pis.len(),
        input_streams.len()
    );
    let n_cycles = input_streams.first().map_or(0, Vec::len);
    for s in input_streams {
        assert_eq!(s.len(), n_cycles, "ragged input streams");
    }
    let drain: u32 = graph
        .iter()
        .map(|(_, n)| n.op().latency())
        .sum();
    let total = n_cycles + drain as usize;

    let mut state: Vec<NodeState> = graph
        .iter()
        .map(|(_, n)| match n.op() {
            Op::Reg | Op::BitReg => {
                let mut q = VecDeque::with_capacity(1);
                q.push_back(Value::zero(n.op().output_type()));
                NodeState::Delay(q)
            }
            Op::Fifo(d) => {
                let mut q = VecDeque::with_capacity(d as usize);
                for _ in 0..d {
                    q.push_back(Value::zero(n.op().output_type()));
                }
                NodeState::Delay(q)
            }
            _ => NodeState::None,
        })
        .collect();

    let pos = graph.primary_outputs();
    let mut out_streams: Vec<Vec<Value>> = vec![Vec::with_capacity(total); pos.len()];
    let mut values: Vec<Value> = graph
        .iter()
        .map(|(_, n)| Value::zero(n.op().output_type()))
        .collect();

    for cycle in 0..total {
        for (slot, (&pi, stream)) in pis.iter().zip(input_streams).enumerate() {
            let v = if cycle < n_cycles {
                stream[cycle]
            } else {
                Value::zero(graph.op(pi).output_type())
            };
            assert_eq!(
                v.value_type(),
                graph.op(pi).output_type(),
                "input stream {slot} type mismatch at cycle {cycle}"
            );
            values[pi.index()] = v;
        }
        let mut in_buf: Vec<Value> = Vec::with_capacity(3);
        for (id, node) in graph.iter() {
            match node.op() {
                Op::Input | Op::BitInput => {}
                Op::Reg | Op::BitReg | Op::Fifo(_) => {
                    in_buf.clear();
                    in_buf.extend(node.inputs().iter().map(|s| values[s.index()]));
                    let incoming = in_buf[0];
                    if let NodeState::Delay(q) = &mut state[id.index()] {
                        match q.pop_front() {
                            // zero-depth FIFO acts as a wire
                            None => values[id.index()] = incoming,
                            Some(v) => {
                                values[id.index()] = v;
                                q.push_back(incoming);
                            }
                        }
                    }
                }
                op => {
                    in_buf.clear();
                    in_buf.extend(node.inputs().iter().map(|s| values[s.index()]));
                    values[id.index()] = op.eval(&in_buf);
                }
            }
        }
        for (slot, &po) in pos.iter().enumerate() {
            out_streams[slot].push(values[po.index()]);
        }
    }
    out_streams
}

/// Total input-to-output latency in cycles: the maximum over outputs of the
/// sum of register/FIFO delays along any path from an input.
pub fn pipeline_latency(graph: &Graph) -> u32 {
    let mut lat = vec![0u32; graph.len()];
    let mut max = 0;
    for (id, node) in graph.iter() {
        let arr = node
            .inputs()
            .iter()
            .map(|s| lat[s.index()])
            .max()
            .unwrap_or(0);
        lat[id.index()] = arr + node.op().latency();
        if matches!(node.op(), Op::Output | Op::BitOutput) {
            max = max.max(lat[id.index()]);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::op::{Op, Value};

    fn mac() -> Graph {
        let mut g = Graph::new("mac");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        g.output(s);
        g
    }

    #[test]
    fn evaluate_mac() {
        let g = mac();
        let out = evaluate(&g, &[Value::Word(3), Value::Word(4), Value::Word(5)]);
        assert_eq!(out, vec![Value::Word(17)]);
    }

    #[test]
    fn evaluate_treats_reg_as_wire() {
        let mut g = Graph::new("regwire");
        let a = g.input();
        let r = g.add(Op::Reg, &[a]);
        g.output(r);
        let out = evaluate(&g, &[Value::Word(42)]);
        assert_eq!(out, vec![Value::Word(42)]);
    }

    #[test]
    fn simulate_register_delays_one_cycle() {
        let mut g = Graph::new("d1");
        let a = g.input();
        let r = g.add(Op::Reg, &[a]);
        g.output(r);
        let streams = simulate(&g, &[vec![Value::Word(7), Value::Word(9)]]);
        assert_eq!(
            streams[0],
            vec![Value::Word(0), Value::Word(7), Value::Word(9)]
        );
    }

    #[test]
    fn simulate_fifo_delays_d_cycles() {
        let mut g = Graph::new("d3");
        let a = g.input();
        let f = g.add(Op::Fifo(3), &[a]);
        g.output(f);
        let inputs: Vec<Value> = (1..=4u16).map(Value::Word).collect();
        let streams = simulate(&g, &[inputs]);
        assert_eq!(streams[0].len(), 7);
        assert_eq!(&streams[0][3..7], &[1, 2, 3, 4].map(Value::Word));
        assert!(streams[0][..3].iter().all(|v| *v == Value::Word(0)));
    }

    #[test]
    fn simulate_matches_evaluate_for_combinational_graphs() {
        let g = mac();
        let inputs = [Value::Word(10), Value::Word(20), Value::Word(30)];
        let golden = evaluate(&g, &inputs);
        let streams = simulate(&g, &[vec![inputs[0]], vec![inputs[1]], vec![inputs[2]]]);
        assert_eq!(streams[0][0], golden[0]);
    }

    #[test]
    fn pipeline_latency_sums_longest_path() {
        let mut g = Graph::new("lat");
        let a = g.input();
        let r1 = g.add(Op::Reg, &[a]);
        let f = g.add(Op::Fifo(3), &[r1]);
        let b = g.input();
        let s = g.add(Op::Add, &[f, b]);
        g.output(s);
        assert_eq!(pipeline_latency(&g), 4);
    }

    #[test]
    fn zero_depth_fifo_is_wire() {
        let mut g = Graph::new("f0");
        let a = g.input();
        let f = g.add(Op::Fifo(0), &[a]);
        g.output(f);
        let streams = simulate(&g, &[vec![Value::Word(5)]]);
        assert_eq!(streams[0], vec![Value::Word(5)]);
    }
}
