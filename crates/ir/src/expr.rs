//! Expression builder: a small Halide-flavoured convenience layer for
//! constructing dataflow graphs with ordinary Rust operators.
//!
//! [`ExprGraph`] owns the graph under construction; [`Expr`] handles are
//! cheap clones tied to it (operators accept both owned and borrowed
//! handles, so values can be reused freely). Arithmetic operators build
//! nodes, and named methods cover the non-operator IR ops.
//!
//! # Examples
//!
//! ```
//! use apex_ir::{evaluate, ExprGraph, Value};
//!
//! let mut b = ExprGraph::new("sobel_x");
//! let l = b.input();
//! let r = b.input();
//! let gx = (&r - &l) * b.lit(2) + (&r - &l);
//! gx.output();
//!
//! let g = b.finish();
//! let out = evaluate(&g, &[Value::Word(1), Value::Word(4)]);
//! assert_eq!(out[0].word(), 9); // (4-1)*2 + (4-1)
//! ```

use crate::graph::{Graph, NodeId};
use crate::op::Op;
use std::cell::RefCell;
use std::ops;
use std::rc::Rc;

/// A graph being built through expressions.
///
/// Single-threaded by design (expression building is a construction-time
/// convenience); the finished [`Graph`] is freely shareable.
#[derive(Debug, Clone)]
pub struct ExprGraph {
    inner: Rc<RefCell<Graph>>,
}

/// A handle to a word-typed value in an [`ExprGraph`].
#[derive(Debug, Clone)]
pub struct Expr {
    graph: Rc<RefCell<Graph>>,
    id: NodeId,
}

/// A handle to a bit-typed value in an [`ExprGraph`].
#[derive(Debug, Clone)]
pub struct BitExpr {
    graph: Rc<RefCell<Graph>>,
    id: NodeId,
}

impl ExprGraph {
    /// Starts a new expression graph.
    pub fn new(name: impl Into<String>) -> Self {
        ExprGraph {
            inner: Rc::new(RefCell::new(Graph::new(name))),
        }
    }

    fn wrap(&self, id: NodeId) -> Expr {
        Expr {
            graph: Rc::clone(&self.inner),
            id,
        }
    }

    /// Adds a word input.
    pub fn input(&mut self) -> Expr {
        let id = self.inner.borrow_mut().input();
        self.wrap(id)
    }

    /// Adds a bit input.
    pub fn bit_input(&mut self) -> BitExpr {
        let id = self.inner.borrow_mut().bit_input();
        BitExpr {
            graph: Rc::clone(&self.inner),
            id,
        }
    }

    /// Adds a word constant.
    pub fn lit(&mut self, value: u16) -> Expr {
        let id = self.inner.borrow_mut().constant(value);
        self.wrap(id)
    }

    /// Finishes construction, returning the graph. Outstanding expression
    /// handles remain usable against the builder's copy but no longer
    /// affect the returned graph.
    pub fn finish(self) -> Graph {
        self.inner.borrow().clone()
    }
}

impl Expr {
    fn binary(&self, op: Op, rhs: &Expr) -> Expr {
        let id = self.graph.borrow_mut().add(op, &[self.id, rhs.id]);
        Expr {
            graph: Rc::clone(&self.graph),
            id,
        }
    }

    fn compare(&self, op: Op, rhs: &Expr) -> BitExpr {
        let id = self.graph.borrow_mut().add(op, &[self.id, rhs.id]);
        BitExpr {
            graph: Rc::clone(&self.graph),
            id,
        }
    }

    /// The underlying node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Marks this value as a primary output.
    pub fn output(&self) -> NodeId {
        self.graph.borrow_mut().output(self.id)
    }

    /// Signed maximum.
    pub fn smax(&self, rhs: &Expr) -> Expr {
        self.binary(Op::Smax, rhs)
    }

    /// Signed minimum.
    pub fn smin(&self, rhs: &Expr) -> Expr {
        self.binary(Op::Smin, rhs)
    }

    /// Unsigned maximum.
    pub fn umax(&self, rhs: &Expr) -> Expr {
        self.binary(Op::Umax, rhs)
    }

    /// Unsigned minimum.
    pub fn umin(&self, rhs: &Expr) -> Expr {
        self.binary(Op::Umin, rhs)
    }

    /// Logical right shift.
    pub fn lshr(&self, rhs: &Expr) -> Expr {
        self.binary(Op::Lshr, rhs)
    }

    /// Arithmetic right shift.
    pub fn ashr(&self, rhs: &Expr) -> Expr {
        self.binary(Op::Ashr, rhs)
    }

    /// Signed absolute value.
    pub fn abs(&self) -> Expr {
        let id = self.graph.borrow_mut().add(Op::Abs, &[self.id]);
        Expr {
            graph: Rc::clone(&self.graph),
            id,
        }
    }

    /// Signed clamp into `[lo, hi]` via constant registers.
    pub fn clamp(&self, lo: u16, hi: u16) -> Expr {
        let (lo_id, hi_id) = {
            let mut g = self.graph.borrow_mut();
            (g.constant(lo), g.constant(hi))
        };
        let lo_e = Expr {
            graph: Rc::clone(&self.graph),
            id: lo_id,
        };
        let hi_e = Expr {
            graph: Rc::clone(&self.graph),
            id: hi_id,
        };
        self.smax(&lo_e).smin(&hi_e)
    }

    /// Word multiplexer: `if cond { if_true } else { self }`.
    pub fn select(&self, if_true: &Expr, cond: &BitExpr) -> Expr {
        let id = self
            .graph
            .borrow_mut()
            .add(Op::Mux, &[self.id, if_true.id, cond.id]);
        Expr {
            graph: Rc::clone(&self.graph),
            id,
        }
    }

    /// Signed greater-than.
    pub fn gt(&self, rhs: &Expr) -> BitExpr {
        self.compare(Op::Sgt, rhs)
    }

    /// Signed less-than.
    pub fn lt(&self, rhs: &Expr) -> BitExpr {
        self.compare(Op::Slt, rhs)
    }

    /// Unsigned less-than.
    pub fn lt_u(&self, rhs: &Expr) -> BitExpr {
        self.compare(Op::Ult, rhs)
    }

    /// Unsigned greater-than.
    pub fn gt_u(&self, rhs: &Expr) -> BitExpr {
        self.compare(Op::Ugt, rhs)
    }
}

impl BitExpr {
    /// The underlying node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Marks this bit as a primary output.
    pub fn output(&self) -> NodeId {
        self.graph.borrow_mut().bit_output(self.id)
    }

    /// Bit AND.
    pub fn and(&self, rhs: &BitExpr) -> BitExpr {
        let id = self.graph.borrow_mut().add(Op::BitAnd, &[self.id, rhs.id]);
        BitExpr {
            graph: Rc::clone(&self.graph),
            id,
        }
    }

    /// Bit OR.
    pub fn or(&self, rhs: &BitExpr) -> BitExpr {
        let id = self.graph.borrow_mut().add(Op::BitOr, &[self.id, rhs.id]);
        BitExpr {
            graph: Rc::clone(&self.graph),
            id,
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                self.binary($op, &rhs)
            }
        }
        impl ops::$trait<&Expr> for Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                self.binary($op, rhs)
            }
        }
        impl ops::$trait<Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                self.binary($op, &rhs)
            }
        }
        impl ops::$trait<&Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                self.binary($op, rhs)
            }
        }
    };
}

impl_binop!(Add, add, Op::Add);
impl_binop!(Sub, sub, Op::Sub);
impl_binop!(Mul, mul, Op::Mul);
impl_binop!(BitAnd, bitand, Op::And);
impl_binop!(BitOr, bitor, Op::Or);
impl_binop!(BitXor, bitxor, Op::Xor);
impl_binop!(Shl, shl, Op::Shl);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::evaluate;
    use crate::op::Value;

    #[test]
    fn builds_and_evaluates_arithmetic() {
        let mut b = ExprGraph::new("t");
        let x = b.input();
        let y = b.input();
        let two = b.lit(2);
        let e = (&x + &y) * two - x;
        e.output();
        let g = b.finish();
        let out = evaluate(&g, &[Value::Word(3), Value::Word(4)]);
        assert_eq!(out[0].word(), 11);
    }

    #[test]
    fn comparison_and_select() {
        let mut b = ExprGraph::new("t");
        let x = b.input();
        let y = b.input();
        let bigger = x.select(&y, &y.gt(&x)); // max(x, y)
        bigger.output();
        let g = b.finish();
        assert_eq!(evaluate(&g, &[Value::Word(5), Value::Word(9)])[0].word(), 9);
        assert_eq!(evaluate(&g, &[Value::Word(12), Value::Word(9)])[0].word(), 12);
    }

    #[test]
    fn clamp_saturates() {
        let mut b = ExprGraph::new("t");
        let x = b.input();
        x.clamp(10, 20).output();
        let g = b.finish();
        assert_eq!(evaluate(&g, &[Value::Word(3)])[0].word(), 10);
        assert_eq!(evaluate(&g, &[Value::Word(15)])[0].word(), 15);
        assert_eq!(evaluate(&g, &[Value::Word(99)])[0].word(), 20);
    }

    #[test]
    fn bit_logic_and_outputs() {
        let mut b = ExprGraph::new("t");
        let x = b.input();
        let th_lo = b.lit(10);
        let th_hi = b.lit(100);
        let in_band = x.gt(&th_lo).and(&th_hi.gt(&x));
        in_band.output();
        let g = b.finish();
        assert!(evaluate(&g, &[Value::Word(50)])[0].bit());
        assert!(!evaluate(&g, &[Value::Word(500)])[0].bit());
    }

    #[test]
    fn shifts_and_word_logic() {
        let mut b = ExprGraph::new("t");
        let x = b.input();
        let one = b.lit(1);
        let mask = b.lit(0x00FF);
        ((&x << &one) & mask).output();
        let g = b.finish();
        assert_eq!(evaluate(&g, &[Value::Word(0x0180)])[0].word(), 0x0000);
        assert_eq!(evaluate(&g, &[Value::Word(0x0055)])[0].word(), 0x00AA);
    }

    #[test]
    fn expr_graphs_feed_the_normal_flow() {
        // an expression-built graph is a first-class IR graph
        let mut b = ExprGraph::new("expr_app");
        let x = b.input();
        let w = b.lit(3);
        (x * w).clamp(0, 255).output();
        let g = b.finish();
        assert!(g.try_validate().is_ok());
        assert!(g.compute_op_count() >= 3);
    }
}
