//! Dataflow graphs: the IR's central data structure.
//!
//! A [`Graph`] is a directed acyclic graph of [`Op`] nodes. Acyclicity is
//! guaranteed by construction: a node's inputs must already exist when the
//! node is added, so the node vector is always a valid topological order.

use crate::op::{Op, OpKind, ValueType};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node within one [`Graph`].
///
/// Node ids are dense indices; they are only meaningful relative to the
/// graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single node: an operation plus its input edges (one per port).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    op: Op,
    inputs: Vec<NodeId>,
}

impl Node {
    /// The node's operation.
    pub fn op(&self) -> Op {
        self.op
    }

    /// Source node feeding each input port, in port order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }
}

/// Errors returned when constructing or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An input id does not name an existing node of this graph.
    UnknownNode {
        /// The offending id.
        id: NodeId,
    },
    /// The number of inputs does not match the operation's arity.
    PortCountMismatch {
        /// The operation being added.
        op: Op,
        /// Arity the operation requires.
        expected: usize,
        /// Number of inputs supplied.
        got: usize,
    },
    /// An input's value type does not match the port's declared type.
    PortTypeMismatch {
        /// The operation being added.
        op: Op,
        /// The mismatching port index.
        port: usize,
        /// Type the port requires.
        expected: ValueType,
        /// Type the supplied source produces.
        got: ValueType,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { id } => write!(f, "unknown node {id}"),
            GraphError::PortCountMismatch { op, expected, got } => {
                write!(f, "operation {op} expects {expected} inputs, got {got}")
            }
            GraphError::PortTypeMismatch {
                op,
                port,
                expected,
                got,
            } => write!(
                f,
                "operation {op} port {port} expects {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// A named dataflow graph.
///
/// # Examples
///
/// ```
/// use apex_ir::{Graph, Op};
///
/// let mut g = Graph::new("mac");
/// let a = g.input();
/// let b = g.input();
/// let c = g.input();
/// let prod = g.add(Op::Mul, &[a, b]);
/// let sum = g.add(Op::Add, &[prod, c]);
/// g.output(sum);
/// assert_eq!(g.primary_inputs().len(), 3);
/// assert_eq!(g.primary_outputs().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes (including structural nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node, validating arity and port types.
    ///
    /// # Errors
    /// Returns a [`GraphError`] if an input id is foreign, the arity is
    /// wrong, or a port type mismatches.
    pub fn try_add(&mut self, op: Op, inputs: &[NodeId]) -> Result<NodeId, GraphError> {
        let tys = op.input_types();
        if inputs.len() != tys.len() {
            return Err(GraphError::PortCountMismatch {
                op,
                expected: tys.len(),
                got: inputs.len(),
            });
        }
        for (port, (&src, &ty)) in inputs.iter().zip(tys).enumerate() {
            let src_node = self
                .nodes
                .get(src.index())
                .ok_or(GraphError::UnknownNode { id: src })?;
            let got = src_node.op.output_type();
            if got != ty {
                return Err(GraphError::PortTypeMismatch {
                    op,
                    port,
                    expected: ty,
                    got,
                });
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            inputs: inputs.to_vec(),
        });
        Ok(id)
    }

    /// Adds a node.
    ///
    /// # Panics
    /// Panics on the conditions [`Graph::try_add`] reports as errors. Use
    /// this in builders where malformed graphs are programming errors.
    pub fn add(&mut self, op: Op, inputs: &[NodeId]) -> NodeId {
        match self.try_add(op, inputs) {
            Ok(id) => id,
            Err(e) => panic!("graph '{}': {e}", self.name),
        }
    }

    /// Adds a word-typed primary input.
    pub fn input(&mut self) -> NodeId {
        self.add(Op::Input, &[])
    }

    /// Adds a bit-typed primary input.
    pub fn bit_input(&mut self) -> NodeId {
        self.add(Op::BitInput, &[])
    }

    /// Adds a word constant.
    pub fn constant(&mut self, value: u16) -> NodeId {
        self.add(Op::Const(value), &[])
    }

    /// Marks `src` as a word primary output; returns the output node.
    pub fn output(&mut self, src: NodeId) -> NodeId {
        self.add(Op::Output, &[src])
    }

    /// Marks `src` as a bit primary output; returns the output node.
    pub fn bit_output(&mut self, src: NodeId) -> NodeId {
        self.add(Op::BitOutput, &[src])
    }

    /// The node behind an id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The operation of a node.
    pub fn op(&self, id: NodeId) -> Op {
        self.node(id).op
    }

    /// All node ids in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.node_ids().map(move |id| (id, self.node(id)))
    }

    /// Word-typed then bit-typed primary inputs, in insertion order.
    pub fn primary_inputs(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| matches!(self.op(id), Op::Input | Op::BitInput))
            .collect()
    }

    /// Primary outputs in insertion order.
    pub fn primary_outputs(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| matches!(self.op(id), Op::Output | Op::BitOutput))
            .collect()
    }

    /// Nodes that participate in subgraph mining (see [`Op::is_compute`]).
    pub fn compute_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.op(id).is_compute())
            .collect()
    }

    /// Consumers of each node, indexed by node id.
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut fan = vec![Vec::new(); self.nodes.len()];
        for (id, node) in self.iter() {
            for &src in node.inputs() {
                fan[src.index()].push(id);
            }
        }
        fan
    }

    /// Histogram of operation kinds.
    pub fn op_histogram(&self) -> BTreeMap<OpKind, usize> {
        let mut h = BTreeMap::new();
        for (_, node) in self.iter() {
            *h.entry(node.op.kind()).or_insert(0) += 1;
        }
        h
    }

    /// Number of compute operations (the paper's "primitive operations").
    pub fn compute_op_count(&self) -> usize {
        self.iter()
            .filter(|(_, n)| n.op.is_compute() && !matches!(n.op, Op::Const(_) | Op::BitConst(_)))
            .count()
    }

    /// Longest path length counted in compute nodes (unit-delay depth).
    pub fn logic_depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (id, node) in self.iter() {
            let in_depth = node
                .inputs()
                .iter()
                .map(|s| depth[s.index()])
                .max()
                .unwrap_or(0);
            let own = usize::from(node.op.is_compute() && !matches!(node.op, Op::Const(_) | Op::BitConst(_)));
            depth[id.index()] = in_depth + own;
            max = max.max(depth[id.index()]);
        }
        max
    }

    /// Assembles a graph from raw `(op, inputs)` rows **without any
    /// validation** — the ingestion point for untrusted graph data
    /// (hand-assembled tests, foreign serialization) that is expected to
    /// go through [`Graph::try_validate`] or the `apex-verify` IR pass
    /// before entering the flow. Everything else in this crate assumes
    /// validated graphs; feeding an unchecked corrupt graph to other
    /// APIs may panic.
    pub fn from_raw_parts(name: &str, rows: Vec<(Op, Vec<NodeId>)>) -> Graph {
        Graph {
            name: name.to_owned(),
            nodes: rows
                .into_iter()
                .map(|(op, inputs)| Node { op, inputs })
                .collect(),
        }
    }

    /// Validates every edge (arity, types, topological ordering) without
    /// panicking — the entry point for untrusted graphs (deserialized,
    /// parsed from text, or assembled by hand) before they enter the DSE
    /// flow. A forward or self reference surfaces as
    /// [`GraphError::UnknownNode`], which is how a cycle manifests in this
    /// sequential-id representation.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn try_validate(&self) -> Result<(), GraphError> {
        for (id, node) in self.iter() {
            let tys = node.op.input_types();
            if node.inputs.len() != tys.len() {
                return Err(GraphError::PortCountMismatch {
                    op: node.op,
                    expected: tys.len(),
                    got: node.inputs.len(),
                });
            }
            for (port, (&src, &ty)) in node.inputs.iter().zip(tys).enumerate() {
                if src.index() >= id.index() {
                    return Err(GraphError::UnknownNode { id: src });
                }
                let got = self.nodes[src.index()].op.output_type();
                if got != ty {
                    return Err(GraphError::PortTypeMismatch {
                        op: node.op,
                        port,
                        expected: ty,
                        got,
                    });
                }
            }
        }
        Ok(())
    }

    /// Extracts the subgraph induced by `keep` as a standalone graph.
    ///
    /// Edges internal to `keep` are preserved. Every edge from a node
    /// outside `keep` becomes a primary input of the appropriate type —
    /// one per *distinct* external source, so values feeding several kept
    /// nodes arrive on a single shared input. Kept nodes whose consumers
    /// are all outside `keep` are wired to fresh primary outputs.
    ///
    /// Returns the new graph and the mapping from old ids (in `keep`) to
    /// new ids.
    ///
    /// # Panics
    /// Panics if `keep` contains an id that is out of range.
    pub fn extract_subgraph(&self, keep: &[NodeId], name: &str) -> (Graph, BTreeMap<NodeId, NodeId>) {
        let keep_set: std::collections::BTreeSet<NodeId> = keep.iter().copied().collect();
        let mut out = Graph::new(name);
        let mut map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut external: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut sorted: Vec<NodeId> = keep_set.iter().copied().collect();
        sorted.sort(); // ids are topologically ordered
        for &id in &sorted {
            let node = self.node(id);
            let mut new_inputs = Vec::with_capacity(node.inputs.len());
            for (&src, &ty) in node.inputs.iter().zip(node.op.input_types()) {
                let new_src = if let Some(&m) = map.get(&src) {
                    m
                } else if let Some(&m) = external.get(&src) {
                    m
                } else {
                    let m = match ty {
                        ValueType::Word => out.input(),
                        ValueType::Bit => out.bit_input(),
                    };
                    external.insert(src, m);
                    m
                };
                new_inputs.push(new_src);
            }
            let new_id = out.add(node.op, &new_inputs);
            map.insert(id, new_id);
        }
        // Wire sinks: kept nodes with no kept consumer become outputs.
        let fan = self.fanouts();
        for &id in &sorted {
            if matches!(self.op(id), Op::Output | Op::BitOutput) {
                continue;
            }
            let has_internal_consumer = fan[id.index()].iter().any(|c| keep_set.contains(c));
            if !has_internal_consumer {
                let new_id = map[&id];
                match self.op(id).output_type() {
                    ValueType::Word => out.output(new_id),
                    ValueType::Bit => out.bit_output(new_id),
                };
            }
        }
        (out, map)
    }

    /// Renders the graph in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=TB;");
        for (id, node) in self.iter() {
            let shape = match node.op {
                Op::Input | Op::BitInput => "invtriangle",
                Op::Output | Op::BitOutput => "triangle",
                Op::Const(_) | Op::BitConst(_) => "box",
                Op::Reg | Op::BitReg | Op::Fifo(_) => "rect",
                _ => "ellipse",
            };
            let _ = writeln!(s, "  {id} [label=\"{}\", shape={shape}];", node.op);
        }
        for (id, node) in self.iter() {
            for (port, &src) in node.inputs().iter().enumerate() {
                let _ = writeln!(s, "  {src} -> {id} [label=\"{port}\"];");
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn mac_graph() -> (Graph, NodeId) {
        let mut g = Graph::new("mac");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        let o = g.output(s);
        (g, o)
    }

    #[test]
    fn build_and_inspect() {
        let (g, _) = mac_graph();
        assert_eq!(g.len(), 6);
        assert_eq!(g.primary_inputs().len(), 3);
        assert_eq!(g.primary_outputs().len(), 1);
        assert_eq!(g.compute_op_count(), 2);
        assert_eq!(g.logic_depth(), 2);
        assert!(g.try_validate().is_ok());
    }

    #[test]
    fn add_rejects_bad_arity() {
        let mut g = Graph::new("t");
        let a = g.input();
        let err = g.try_add(Op::Add, &[a]).unwrap_err();
        assert!(matches!(err, GraphError::PortCountMismatch { .. }));
    }

    #[test]
    fn add_rejects_type_mismatch() {
        let mut g = Graph::new("t");
        let a = g.input();
        let b = g.input();
        let cmp = g.add(Op::Slt, &[a, b]);
        let err = g.try_add(Op::Add, &[a, cmp]).unwrap_err();
        assert!(matches!(err, GraphError::PortTypeMismatch { port: 1, .. }));
    }

    #[test]
    fn add_rejects_foreign_node() {
        let mut g1 = Graph::new("g1");
        for _ in 0..10 {
            g1.input();
        }
        let mut g2 = Graph::new("g2");
        let err = g2.try_add(Op::Output, &[NodeId(5)]).unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode { .. }));
    }

    #[test]
    fn fanouts_are_consumers() {
        let (g, _) = mac_graph();
        let fan = g.fanouts();
        let a = NodeId(0);
        assert_eq!(fan[a.index()].len(), 1);
        assert_eq!(g.op(fan[a.index()][0]).kind(), crate::op::OpKind::Mul);
    }

    #[test]
    fn histogram_counts_kinds() {
        let (g, _) = mac_graph();
        let h = g.op_histogram();
        assert_eq!(h[&crate::op::OpKind::Input], 3);
        assert_eq!(h[&crate::op::OpKind::Mul], 1);
        assert_eq!(h[&crate::op::OpKind::Add], 1);
    }

    #[test]
    fn extract_subgraph_stubs_inputs_and_outputs() {
        let (g, _) = mac_graph();
        // keep only the adder: its two feeds become fresh inputs
        let add_id = g
            .node_ids()
            .find(|&id| g.op(id) == Op::Add)
            .unwrap();
        let (sub, map) = g.extract_subgraph(&[add_id], "just_add");
        assert!(sub.try_validate().is_ok());
        assert_eq!(sub.primary_inputs().len(), 2);
        assert_eq!(sub.primary_outputs().len(), 1);
        assert_eq!(sub.op(map[&add_id]), Op::Add);
    }

    #[test]
    fn extract_subgraph_keeps_internal_edges() {
        let (g, _) = mac_graph();
        let mul = g.node_ids().find(|&id| g.op(id) == Op::Mul).unwrap();
        let add = g.node_ids().find(|&id| g.op(id) == Op::Add).unwrap();
        let (sub, map) = g.extract_subgraph(&[mul, add], "mac_core");
        assert!(sub.try_validate().is_ok());
        // mul feeds add directly
        let add_new = map[&add];
        assert!(sub.node(add_new).inputs().contains(&map[&mul]));
        assert_eq!(sub.primary_inputs().len(), 3);
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let (g, _) = mac_graph();
        let dot = g.to_dot();
        for id in g.node_ids() {
            assert!(dot.contains(&format!("{id} ")), "missing {id}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let (g, _) = mac_graph();
        let json = serde_json_like(&g);
        assert!(json.contains("mac"));
    }

    // serde_json is not in the approved dependency list; round-trip through
    // the Debug representation as a cheap serialization smoke test.
    fn serde_json_like(g: &Graph) -> String {
        format!("{g:?}")
    }
}
