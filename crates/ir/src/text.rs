//! A small, line-oriented text format for dataflow graphs, so custom
//! applications can be written by hand, stored, and fed through the DSE
//! flow without recompiling.
//!
//! Format (one node per line, ids are implicit and sequential):
//!
//! ```text
//! graph mac
//! n0 = input
//! n1 = input
//! n2 = const 7
//! n3 = mul n0 n2
//! n4 = add n3 n1
//! n5 = output n4
//! ```
//!
//! Comments start with `#`; blank lines are ignored. [`to_text`] and
//! [`from_text`] round-trip exactly.

use crate::graph::{Graph, NodeId};
use crate::op::Op;
use std::fmt::Write as _;

/// Serializes a graph to the text format.
pub fn to_text(graph: &Graph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "graph {}", graph.name());
    for (id, node) in graph.iter() {
        let _ = write!(s, "{id} = {}", op_name(node.op()));
        if let Some(payload) = op_payload(node.op()) {
            let _ = write!(s, " {payload}");
        }
        for src in node.inputs() {
            let _ = write!(s, " {src}");
        }
        s.push('\n');
    }
    s
}

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a graph from the text format.
///
/// # Errors
/// Reports the first malformed line with its number.
pub fn from_text(text: &str) -> Result<Graph, ParseError> {
    let mut graph: Option<Graph> = None;
    let mut expected_id = 0u32;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseError {
            line: lineno + 1,
            message,
        };
        if let Some(name) = line.strip_prefix("graph ") {
            if graph.is_some() {
                return Err(err("duplicate graph header".into()));
            }
            graph = Some(Graph::new(name.trim()));
            continue;
        }
        let g = graph
            .as_mut()
            .ok_or_else(|| err("missing `graph <name>` header".into()))?;
        let (lhs, rhs) = line
            .split_once('=')
            .ok_or_else(|| err("expected `nK = op ...`".into()))?;
        let id = parse_node_id(lhs.trim()).ok_or_else(|| err(format!("bad node id '{lhs}'")))?;
        if id.0 != expected_id {
            return Err(err(format!(
                "node ids must be sequential: expected n{expected_id}, found {id}"
            )));
        }
        expected_id += 1;
        let mut toks = rhs.split_whitespace();
        let opname = toks
            .next()
            .ok_or_else(|| err("missing operation".into()))?;
        let rest: Vec<&str> = toks.collect();
        let (op, input_toks) = parse_op(opname, &rest).map_err(|m| err(m))?;
        let mut inputs = Vec::with_capacity(input_toks.len());
        for t in input_toks {
            let src = parse_node_id(t).ok_or_else(|| err(format!("bad input id '{t}'")))?;
            inputs.push(src);
        }
        g.try_add(op, &inputs)
            .map_err(|e| err(e.to_string()))?;
    }
    graph.ok_or(ParseError {
        line: 0,
        message: "empty input".into(),
    })
}

fn parse_node_id(s: &str) -> Option<NodeId> {
    s.strip_prefix('n')?.parse().ok().map(NodeId)
}

/// Serializes a single op as one whitespace-free token (`add`,
/// `const:7`, `lut:0xca`, …) — the payload-carrying counterpart of the
/// graph format's `op payload` columns, for line-oriented codecs that
/// store ops in space-separated lists (e.g. the variant cache).
pub fn op_to_token(op: Op) -> String {
    match op_payload(op) {
        Some(p) => format!("{}:{p}", op_name(op)),
        None => op_name(op).to_owned(),
    }
}

/// Inverse of [`op_to_token`]; `None` for malformed tokens.
pub fn op_from_token(token: &str) -> Option<Op> {
    let (name, payload) = match token.split_once(':') {
        Some((n, p)) => (n, vec![p]),
        None => (token, Vec::new()),
    };
    let (op, rest) = parse_op(name, &payload).ok()?;
    // a payload-less op must not carry one, and vice versa
    if !rest.is_empty() || (payload.is_empty() != op_payload(op).is_none()) {
        return None;
    }
    Some(op)
}

fn op_name(op: Op) -> &'static str {
    match op {
        Op::Input => "input",
        Op::BitInput => "bitinput",
        Op::Output => "output",
        Op::BitOutput => "bitoutput",
        Op::Const(_) => "const",
        Op::BitConst(_) => "bitconst",
        Op::Reg => "reg",
        Op::BitReg => "bitreg",
        Op::Fifo(_) => "fifo",
        Op::Add => "add",
        Op::Sub => "sub",
        Op::Mul => "mul",
        Op::Abs => "abs",
        Op::Smin => "smin",
        Op::Smax => "smax",
        Op::Umin => "umin",
        Op::Umax => "umax",
        Op::Shl => "shl",
        Op::Lshr => "lshr",
        Op::Ashr => "ashr",
        Op::And => "and",
        Op::Or => "or",
        Op::Xor => "xor",
        Op::Not => "not",
        Op::Mux => "mux",
        Op::Eq => "eq",
        Op::Neq => "neq",
        Op::Slt => "slt",
        Op::Sle => "sle",
        Op::Sgt => "sgt",
        Op::Sge => "sge",
        Op::Ult => "ult",
        Op::Ule => "ule",
        Op::Ugt => "ugt",
        Op::Uge => "uge",
        Op::BitAnd => "bitand",
        Op::BitOr => "bitor",
        Op::BitXor => "bitxor",
        Op::BitNot => "bitnot",
        Op::BitMux => "bitmux",
        Op::Lut(_) => "lut",
    }
}

fn op_payload(op: Op) -> Option<String> {
    match op {
        Op::Const(v) => Some(v.to_string()),
        Op::BitConst(b) => Some(u8::from(b).to_string()),
        Op::Fifo(d) => Some(d.to_string()),
        Op::Lut(t) => Some(format!("0x{t:02x}")),
        _ => None,
    }
}

/// Parses the op name plus payload, returning the op and the remaining
/// tokens (the input ids).
fn parse_op<'a>(name: &str, rest: &[&'a str]) -> Result<(Op, Vec<&'a str>), String> {
    let payload_first = |rest: &[&'a str]| -> Result<(&'a str, Vec<&'a str>), String> {
        let (head, tail) = rest
            .split_first()
            .ok_or_else(|| format!("'{name}' needs a payload"))?;
        Ok((head, tail.to_vec()))
    };
    let op = match name {
        "input" => Op::Input,
        "bitinput" => Op::BitInput,
        "output" => Op::Output,
        "bitoutput" => Op::BitOutput,
        "const" => {
            let (p, tail) = payload_first(rest)?;
            let v: u16 = p.parse().map_err(|_| format!("bad const '{p}'"))?;
            return Ok((Op::Const(v), tail));
        }
        "bitconst" => {
            let (p, tail) = payload_first(rest)?;
            let v: u8 = p.parse().map_err(|_| format!("bad bitconst '{p}'"))?;
            return Ok((Op::BitConst(v != 0), tail));
        }
        "fifo" => {
            let (p, tail) = payload_first(rest)?;
            let v: u8 = p.parse().map_err(|_| format!("bad fifo depth '{p}'"))?;
            return Ok((Op::Fifo(v), tail));
        }
        "lut" => {
            let (p, tail) = payload_first(rest)?;
            let hex = p.trim_start_matches("0x");
            let v = u8::from_str_radix(hex, 16).map_err(|_| format!("bad lut table '{p}'"))?;
            return Ok((Op::Lut(v), tail));
        }
        "reg" => Op::Reg,
        "bitreg" => Op::BitReg,
        "add" => Op::Add,
        "sub" => Op::Sub,
        "mul" => Op::Mul,
        "abs" => Op::Abs,
        "smin" => Op::Smin,
        "smax" => Op::Smax,
        "umin" => Op::Umin,
        "umax" => Op::Umax,
        "shl" => Op::Shl,
        "lshr" => Op::Lshr,
        "ashr" => Op::Ashr,
        "and" => Op::And,
        "or" => Op::Or,
        "xor" => Op::Xor,
        "not" => Op::Not,
        "mux" => Op::Mux,
        "eq" => Op::Eq,
        "neq" => Op::Neq,
        "slt" => Op::Slt,
        "sle" => Op::Sle,
        "sgt" => Op::Sgt,
        "sge" => Op::Sge,
        "ult" => Op::Ult,
        "ule" => Op::Ule,
        "ugt" => Op::Ugt,
        "uge" => Op::Uge,
        "bitand" => Op::BitAnd,
        "bitor" => Op::BitOr,
        "bitxor" => Op::BitXor,
        "bitnot" => Op::BitNot,
        "bitmux" => Op::BitMux,
        other => return Err(format!("unknown operation '{other}'")),
    };
    Ok((op, rest.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::evaluate;
    use crate::op::Value;

    fn mac() -> Graph {
        let mut g = Graph::new("mac");
        let a = g.input();
        let b = g.input();
        let c = g.constant(7);
        let m = g.add(Op::Mul, &[a, c]);
        let s = g.add(Op::Add, &[m, b]);
        g.output(s);
        g
    }

    #[test]
    fn round_trips_exactly() {
        let g = mac();
        let text = to_text(&g);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn parses_hand_written_source() {
        let src = "
# scale and threshold
graph thresh
n0 = input
n1 = const 3
n2 = mul n0 n1   # scaled
n3 = const 100
n4 = sgt n2 n3
n5 = bitoutput n4
";
        let g = from_text(src).unwrap();
        assert_eq!(g.name(), "thresh");
        let out = evaluate(&g, &[Value::Word(40)]);
        assert!(out[0].bit());
        let out = evaluate(&g, &[Value::Word(10)]);
        assert!(!out[0].bit());
    }

    #[test]
    fn payload_ops_round_trip() {
        let mut g = Graph::new("payloads");
        let a = g.input();
        let f = g.add(Op::Fifo(5), &[a]);
        g.output(f);
        let b0 = g.bit_input();
        let b1 = g.bit_input();
        let b2 = g.bit_input();
        let l = g.add(Op::Lut(0xCA), &[b0, b1, b2]);
        g.bit_output(l);
        let bc = g.add(Op::BitConst(true), &[]);
        g.bit_output(bc);
        let parsed = from_text(&to_text(&g)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "graph t\nn0 = input\nn1 = frobnicate n0\n";
        let err = from_text(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_non_sequential_ids() {
        let src = "graph t\nn0 = input\nn5 = output n0\n";
        let err = from_text(src).unwrap_err();
        assert!(err.message.contains("sequential"));
    }

    #[test]
    fn rejects_type_errors_with_location() {
        let src = "graph t\nn0 = input\nn1 = bitoutput n0\n";
        let err = from_text(src).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn every_benchmark_round_trips() {
        // exercised more broadly in apps' tests; here a dense graph
        let mut g = Graph::new("dense");
        let mut pool = vec![g.input(), g.input()];
        for i in 0..40u16 {
            let a = pool[i as usize % pool.len()];
            let b = pool[(i as usize * 7 + 1) % pool.len()];
            let n = match i % 5 {
                0 => g.add(Op::Add, &[a, b]),
                1 => g.add(Op::Mul, &[a, b]),
                2 => g.add(Op::Umax, &[a, b]),
                3 => {
                    let c = g.constant(i);
                    g.add(Op::Xor, &[a, c])
                }
                _ => g.add(Op::Sub, &[a, b]),
            };
            pool.push(n);
        }
        let last = *pool.last().unwrap();
        g.output(last);
        assert_eq!(from_text(&to_text(&g)).unwrap(), g);
    }
}
