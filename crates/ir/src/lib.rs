//! # apex-ir — dataflow-graph IR for the APEX reproduction
//!
//! This crate is our substitute for [CoreIR] in the APEX paper's flow: a
//! word-level (16-bit) dataflow-graph intermediate representation with a
//! 1-bit predicate datapath, a reference interpreter, and a cycle-accurate
//! simulator.
//!
//! Every later stage of the APEX pipeline consumes or produces these
//! graphs:
//!
//! * applications (`apex-apps`) are built as [`Graph`]s,
//! * the subgraph miner (`apex-mining`) mines them,
//! * the datapath merger (`apex-merge`) merges mined patterns into PE
//!   datapaths (also [`Graph`]s),
//! * the mapper (`apex-map`) rewrites application graphs into graphs of PE
//!   instances,
//! * the pipeliners (`apex-pipeline`) insert [`Op::Reg`]/[`Op::Fifo`]
//!   nodes, and
//! * the CGRA simulator (`apex-cgra`) checks fabric execution against
//!   [`evaluate`], the golden model.
//!
//! # Examples
//!
//! ```
//! use apex_ir::{evaluate, Graph, Op, Value};
//!
//! // out = (a * b) + c
//! let mut g = Graph::new("mac");
//! let a = g.input();
//! let b = g.input();
//! let c = g.input();
//! let m = g.add(Op::Mul, &[a, b]);
//! let s = g.add(Op::Add, &[m, c]);
//! g.output(s);
//!
//! let out = evaluate(&g, &[Value::Word(3), Value::Word(4), Value::Word(5)]);
//! assert_eq!(out, vec![Value::Word(17)]);
//! ```
//!
//! [CoreIR]: https://github.com/rdaly525/coreir

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod expr;
mod graph;
mod interp;
mod op;
mod text;

pub use expr::{BitExpr, Expr, ExprGraph};
pub use graph::{Graph, GraphError, Node, NodeId};
pub use interp::{evaluate, pipeline_latency, simulate};
pub use op::{Op, OpKind, Value, ValueType, ALL_OP_KINDS};
pub use text::{from_text, op_from_token, op_to_token, to_text, ParseError};
