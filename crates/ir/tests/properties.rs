//! Property tests on the IR: algebraic identities of the operation
//! semantics, interpreter/simulator agreement, and graph invariants.

use apex_ir::{evaluate, pipeline_latency, simulate, Graph, Op, Value};
use proptest::prelude::*;

proptest! {
    // ---- operation semantics ------------------------------------------------

    #[test]
    fn add_commutes_and_sub_inverts(a: u16, b: u16) {
        let ab = Op::Add.eval(&[Value::Word(a), Value::Word(b)]);
        let ba = Op::Add.eval(&[Value::Word(b), Value::Word(a)]);
        prop_assert_eq!(ab, ba);
        let diff = Op::Sub.eval(&[ab, Value::Word(b)]);
        prop_assert_eq!(diff, Value::Word(a));
    }

    #[test]
    fn min_max_partition(a: u16, b: u16) {
        let mn = Op::Umin.eval(&[Value::Word(a), Value::Word(b)]).word();
        let mx = Op::Umax.eval(&[Value::Word(a), Value::Word(b)]).word();
        prop_assert_eq!(mn.min(mx), mn);
        prop_assert_eq!([mn, mx], if a <= b { [a, b] } else { [b, a] });
        // signed variants agree with i16 ordering
        let smn = Op::Smin.eval(&[Value::Word(a), Value::Word(b)]).word() as i16;
        prop_assert_eq!(smn, (a as i16).min(b as i16));
    }

    #[test]
    fn shifts_match_reference(a: u16, s in 0u16..16) {
        prop_assert_eq!(
            Op::Shl.eval(&[Value::Word(a), Value::Word(s)]).word(),
            a << s
        );
        prop_assert_eq!(
            Op::Lshr.eval(&[Value::Word(a), Value::Word(s)]).word(),
            a >> s
        );
        prop_assert_eq!(
            Op::Ashr.eval(&[Value::Word(a), Value::Word(s)]).word(),
            ((a as i16) >> s) as u16
        );
    }

    #[test]
    fn comparisons_are_consistent(a: u16, b: u16) {
        let lt = Op::Ult.eval(&[Value::Word(a), Value::Word(b)]).bit();
        let ge = Op::Uge.eval(&[Value::Word(a), Value::Word(b)]).bit();
        prop_assert_ne!(lt, ge);
        let eq = Op::Eq.eval(&[Value::Word(a), Value::Word(b)]).bit();
        let le = Op::Ule.eval(&[Value::Word(a), Value::Word(b)]).bit();
        prop_assert_eq!(le, lt || eq);
    }

    #[test]
    fn mux_returns_one_of_its_operands(a: u16, b: u16, s: bool) {
        let out = Op::Mux
            .eval(&[Value::Word(a), Value::Word(b), Value::Bit(s)])
            .word();
        prop_assert_eq!(out, if s { b } else { a });
    }

    #[test]
    fn abs_is_idempotent(a: u16) {
        let one = Op::Abs.eval(&[Value::Word(a)]);
        let two = Op::Abs.eval(&[one]);
        prop_assert_eq!(one, two);
    }

    #[test]
    fn lut_matches_its_table(table: u8, b0: bool, b1: bool, b2: bool) {
        let out = Op::Lut(table)
            .eval(&[Value::Bit(b0), Value::Bit(b1), Value::Bit(b2)])
            .bit();
        let idx = (b0 as u8) | ((b1 as u8) << 1) | ((b2 as u8) << 2);
        prop_assert_eq!(out, (table >> idx) & 1 == 1);
    }
}

// ---- random graphs: interpreter vs simulator -------------------------------

fn arb_word_graph() -> impl Strategy<Value = Graph> {
    let spec = prop::collection::vec((0u8..8, any::<u16>(), any::<u16>(), any::<u16>()), 1..24);
    spec.prop_map(|ops| {
        let mut g = Graph::new("prop");
        let mut pool = vec![g.input(), g.input(), g.input()];
        for (sel, x, y, payload) in ops {
            let a = pool[(x as usize) % pool.len()];
            let b = pool[(y as usize) % pool.len()];
            let n = match sel {
                0 => g.add(Op::Add, &[a, b]),
                1 => g.add(Op::Sub, &[a, b]),
                2 => g.add(Op::Mul, &[a, b]),
                3 => g.add(Op::Umax, &[a, b]),
                4 => g.add(Op::Lshr, &[a, b]),
                5 => {
                    let c = g.constant(payload);
                    g.add(Op::Xor, &[a, c])
                }
                6 => g.add(Op::Reg, &[a]),
                _ => g.add(Op::Abs, &[a]),
            };
            pool.push(n);
        }
        let out = *pool.last().unwrap();
        g.output(out);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulator_agrees_with_interpreter_after_latency(
        g in arb_word_graph(),
        inputs in prop::collection::vec(any::<u16>(), 3)
    ) {
        // combinational evaluation treats registers as wires; the
        // cycle-accurate simulator must produce the same value exactly
        // `pipeline_latency` cycles after the input is presented, when the
        // input is held constant
        let lat = pipeline_latency(&g) as usize;
        let golden = evaluate(&g, &[
            Value::Word(inputs[0]),
            Value::Word(inputs[1]),
            Value::Word(inputs[2]),
        ]);
        let hold = lat + 1;
        let streams: Vec<Vec<Value>> = inputs
            .iter()
            .map(|&v| vec![Value::Word(v); hold])
            .collect();
        let out = simulate(&g, &streams);
        prop_assert_eq!(out[0][lat], golden[0]);
    }

    #[test]
    fn validate_accepts_generated_graphs(g in arb_word_graph()) {
        prop_assert!(g.try_validate().is_ok());
        // node vector is a topological order by construction
        for (id, node) in g.iter() {
            for src in node.inputs() {
                prop_assert!(src.index() < id.index());
            }
        }
    }

    #[test]
    fn extract_subgraph_preserves_validity(g in arb_word_graph(), pick: u8) {
        let compute = g.compute_nodes();
        if compute.is_empty() {
            return Ok(());
        }
        // take a contiguous chunk of compute nodes
        let start = (pick as usize) % compute.len();
        let keep = &compute[start..(start + 3).min(compute.len())];
        let (sub, map) = g.extract_subgraph(keep, "chunk");
        prop_assert!(sub.try_validate().is_ok());
        prop_assert_eq!(map.len(), keep.len());
    }

    #[test]
    fn logic_depth_bounded_by_compute_count(g in arb_word_graph()) {
        prop_assert!(g.logic_depth() <= g.compute_op_count());
    }
}
