//! Graceful-interrupt support for long sweeps.
//!
//! [`install`] registers SIGINT/SIGTERM handlers (std-only — the raw
//! `signal(2)` symbol is declared directly, no libc crate) that set a
//! process-wide [`AtomicBool`]. The sweep runtime fans that flag into
//! every [`crate::BudgetMeter`] and into the per-job watchdog, so the
//! first Ctrl-C stops dispatching new jobs and lets in-flight jobs drain
//! cooperatively; a **second** Ctrl-C hard-exits immediately (the only
//! async-signal-safe escape when a drain is itself wedged).
//!
//! Everything here is also usable without signals: tests and the
//! deterministic interrupt hooks call [`trigger`] to simulate a Ctrl-C.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// Exit code used by the second-signal hard exit (`128 + SIGINT` by Unix
/// convention).
pub const HARD_EXIT_CODE: i32 = 130;

/// Signal count; the handler hard-exits once this reaches 2.
static SIGNALS_SEEN: AtomicU32 = AtomicU32::new(0);

/// The shared flag. [`install`] initializes this *before* registering the
/// signal handlers, so the handler's `get()` fast-path never allocates or
/// locks (async-signal-safety).
static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

fn cell() -> &'static Arc<AtomicBool> {
    FLAG.get_or_init(|| Arc::new(AtomicBool::new(false)))
}

/// The process-wide interrupt flag, cloneable into stage budgets and
/// watchdog options. Reads `true` once an interrupt was requested.
pub fn flag() -> Arc<AtomicBool> {
    Arc::clone(cell())
}

/// Whether an interrupt (signal or [`trigger`]) has been requested.
pub fn interrupted() -> bool {
    cell().load(Ordering::SeqCst)
}

/// Requests a graceful interrupt exactly as the first Ctrl-C would
/// (deterministic replacement for a signal in tests and CI hooks).
pub fn trigger() {
    cell().store(true, Ordering::SeqCst);
}

/// Clears the interrupt state (test isolation only — a real process exits
/// shortly after an interrupt).
pub fn reset() {
    SIGNALS_SEEN.store(0, Ordering::SeqCst);
    cell().store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`. The return value (previous handler) is only
        /// used as an opaque word, so it is declared pointer-sized rather
        /// than as a function pointer.
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        /// POSIX `_exit(2)` — async-signal-safe, unlike `std::process::exit`.
        pub fn _exit(code: i32) -> !;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // async-signal-safe only: atomics and _exit. install() initializes
    // FLAG before registering this handler, so get() is always Some here
    // and never allocates.
    let seen = SIGNALS_SEEN.fetch_add(1, Ordering::SeqCst) + 1;
    if seen >= 2 {
        unsafe { sys::_exit(HARD_EXIT_CODE) };
    }
    if let Some(flag) = FLAG.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Registers the SIGINT/SIGTERM handlers (idempotent; no-op off Unix).
///
/// First signal: sets the interrupt flag so the sweep drains gracefully.
/// Second signal: `_exit(130)` immediately.
pub fn install() {
    #[cfg(unix)]
    {
        static INSTALLED: AtomicBool = AtomicBool::new(false);
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = cell(); // materialize before the handler can observe FLAG
        unsafe {
            sys::signal(sys::SIGINT, on_signal);
            sys::signal(sys::SIGTERM, on_signal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_sets_and_reset_clears() {
        reset();
        assert!(!interrupted());
        trigger();
        assert!(interrupted());
        assert!(flag().load(Ordering::SeqCst));
        reset();
        assert!(!interrupted());
    }

    #[test]
    fn flag_is_shared() {
        let a = flag();
        let b = flag();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
