//! Fault-tolerance primitives for the APEX DSE engine.
//!
//! A multi-application DSE sweep (mine → merge → rewrite → map → pipeline →
//! place → route) must degrade and keep reporting rather than abort when one
//! stage fails or exhausts its budget. This crate is the workspace's
//! bottom-most layer for that policy:
//!
//! * [`ApexError`] — the unified error type every stage error converts
//!   into, carrying the [`Stage`] it came from and an optional source chain.
//! * [`StageBudget`] / [`BudgetMeter`] — wall-clock deadlines, step budgets
//!   and cooperative cancellation for the search loops (clique
//!   branch-and-bound, embedding enumeration, PathFinder).
//! * [`Provenance`] — how a search result ended: ran to completion, was
//!   truncated by a step budget, hit its deadline, or was cancelled.
//! * [`Degradation`] / [`DseOutcome`] — per-application records of every
//!   fallback the resilient driver took, so reports can render partial
//!   sweeps honestly.
//! * [`fail_point!`] — a deterministic, feature-gated fault-injection
//!   macro (no external dependencies) used by the robustness test-suite to
//!   prove each stage fault degrades instead of panicking.
//! * [`FAILPOINT_CATALOG`] — the enumerable registry of every fail-point
//!   site in the workspace, so chaos campaigns can enumerate fault
//!   schedules instead of hand-picking them.
//! * [`ResourceBudget`] / [`ResourceMeter`] — approximate byte accounting
//!   for the memory-hungry search structures (embedding lists, overlap
//!   graphs, clique matrices), checked alongside [`StageBudget`] so
//!   exceeding a cap truncates with a [`Degradation`] instead of
//!   OOM-aborting.
//! * [`iofault`] — an injected-I/O-fault adapter for journal/cache writes
//!   (ENOSPC, short write, fsync failure), a plain passthrough without the
//!   `fault-injection` feature.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod interrupt;

/// The pipeline stage an error or degradation originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Input parsing / graph construction.
    Parse,
    /// Frequent-subgraph mining.
    Mine,
    /// Datapath merging (clique search included).
    Merge,
    /// Rewrite-rule synthesis.
    Rewrite,
    /// Instruction selection onto the PE.
    Map,
    /// PE or application pipelining.
    Pipeline,
    /// CGRA placement.
    Place,
    /// CGRA routing.
    Route,
    /// Post-route functional verification.
    Verify,
    /// Cost/area/energy reporting.
    Report,
    /// Parallel sweep execution (job pool, worker panics, cache I/O).
    Sweep,
    /// Command-line driver.
    Cli,
}

impl Stage {
    /// Lower-case stage name used in diagnostics and report columns.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Mine => "mine",
            Stage::Merge => "merge",
            Stage::Rewrite => "rewrite",
            Stage::Map => "map",
            Stage::Pipeline => "pipeline",
            Stage::Place => "place",
            Stage::Route => "route",
            Stage::Verify => "verify",
            Stage::Report => "report",
            Stage::Sweep => "sweep",
            Stage::Cli => "cli",
        }
    }

    /// Inverse of [`Stage::name`] (used by the on-disk variant-cache
    /// codec); `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        const ALL: [Stage; 12] = [
            Stage::Parse,
            Stage::Mine,
            Stage::Merge,
            Stage::Rewrite,
            Stage::Map,
            Stage::Pipeline,
            Stage::Place,
            Stage::Route,
            Stage::Verify,
            Stage::Report,
            Stage::Sweep,
            Stage::Cli,
        ];
        ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The unified workspace error: which stage failed and why.
///
/// Stage crates keep their own precise error enums; anything that crosses a
/// stage boundary converts into `ApexError` so drivers and the CLI handle a
/// single type. The `source` chain preserves the original error for
/// `error: <stage>: <cause>` rendering.
#[derive(Debug)]
pub struct ApexError {
    stage: Stage,
    message: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl ApexError {
    /// An error with a message and no underlying cause.
    pub fn new(stage: Stage, message: impl Into<String>) -> Self {
        ApexError {
            stage,
            message: message.into(),
            source: None,
        }
    }

    /// Wraps an underlying stage error, keeping it on the source chain.
    pub fn with_source(
        stage: Stage,
        source: impl Error + Send + Sync + 'static,
    ) -> Self {
        ApexError {
            stage,
            message: source.to_string(),
            source: Some(Box::new(source)),
        }
    }

    /// The stage this error belongs to.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The human-readable cause (without the stage prefix).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Renders the full `error: <stage>: <cause>` chain, one line,
    /// innermost cause last.
    pub fn render_chain(&self) -> String {
        let mut s = format!("error: {}: {}", self.stage, self.message);
        let mut src = self.source().and_then(Error::source);
        while let Some(cause) = src {
            s.push_str(&format!(": {cause}"));
            src = cause.source();
        }
        s
    }
}

impl fmt::Display for ApexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.stage, self.message)
    }
}

impl Error for ApexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn Error + 'static))
    }
}

/// Resource limits for a single search stage.
///
/// All limits are optional; [`StageBudget::unlimited`] never stops a
/// search. Budgets are checked cooperatively through a [`BudgetMeter`]
/// inside each stage's hot loop.
#[derive(Debug, Clone, Default)]
pub struct StageBudget {
    /// Wall-clock allowance for the stage.
    pub deadline: Option<Duration>,
    /// Maximum number of cooperative steps (loop iterations, search nodes).
    pub max_steps: Option<u64>,
    /// External cancellation flag (e.g. a sweep-wide abort).
    pub cancel: Option<Arc<AtomicBool>>,
}

// Manual equality so option structs embedding a budget can keep deriving
// `PartialEq`/`Eq`; cancellation flags compare by identity.
impl PartialEq for StageBudget {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
            && self.max_steps == other.max_steps
            && match (&self.cancel, &other.cancel) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for StageBudget {}

impl StageBudget {
    /// A budget that never interrupts the search.
    pub fn unlimited() -> Self {
        StageBudget::default()
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a step budget.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Attaches a cooperative cancellation flag.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Starts metering this budget (records the start instant).
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter {
            started: Instant::now(),
            deadline: self.deadline,
            max_steps: self.max_steps,
            cancel: self.cancel.clone(),
            steps: 0,
            stopped: None,
        }
    }
}

/// How often the meter consults the clock / cancellation flag; step-count
/// checks happen on every tick.
const CLOCK_CHECK_MASK: u64 = 0xFF;

/// A running budget check for one stage invocation.
///
/// Call [`BudgetMeter::tick`] once per unit of work; it returns `false`
/// once any limit trips, after which [`BudgetMeter::provenance`] reports
/// which limit it was. The clock is only consulted every 256 ticks so
/// metering stays out of the hot path; the cancellation flag is a single
/// relaxed atomic load and is consulted on **every** tick, so a watchdog
/// or Ctrl-C is observed within one unit of work rather than up to 255
/// (possibly slow) steps later.
#[derive(Debug)]
pub struct BudgetMeter {
    started: Instant,
    deadline: Option<Duration>,
    max_steps: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    steps: u64,
    stopped: Option<Provenance>,
}

impl BudgetMeter {
    /// Accounts one unit of work. Returns `true` while the search may
    /// continue. Once a limit trips the meter latches and keeps returning
    /// `false`.
    pub fn tick(&mut self) -> bool {
        if self.stopped.is_some() {
            return false;
        }
        self.steps += 1;
        if let Some(max) = self.max_steps {
            if self.steps > max {
                self.stopped = Some(Provenance::TruncatedByBudget);
                return false;
            }
        }
        // cancellation must propagate within one watchdog time-slice even
        // when individual steps are slow, so the flag (one relaxed load)
        // is checked every tick; only the clock read stays masked
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                self.stopped = Some(Provenance::Cancelled);
                return false;
            }
        }
        if self.steps & CLOCK_CHECK_MASK == 0 {
            return self.check_slow();
        }
        true
    }

    /// Forces a clock/cancellation check regardless of tick phase (used
    /// before committing to an expensive sub-search).
    pub fn check_slow(&mut self) -> bool {
        if self.stopped.is_some() {
            return false;
        }
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                self.stopped = Some(Provenance::Cancelled);
                return false;
            }
        }
        if let Some(d) = self.deadline {
            if self.started.elapsed() >= d {
                self.stopped = Some(Provenance::TimedOut);
                return false;
            }
        }
        true
    }

    /// Whether any limit has tripped.
    pub fn exhausted(&self) -> bool {
        self.stopped.is_some()
    }

    /// Units of work accounted so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The search outcome as seen by this meter.
    pub fn provenance(&self) -> Provenance {
        self.stopped.unwrap_or(Provenance::Completed)
    }
}

/// How a search stage's result came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// The search ran to natural completion; the result is exact (within
    /// the algorithm's own guarantees).
    Completed,
    /// A step budget truncated the search; the result is the incumbent.
    TruncatedByBudget,
    /// The wall-clock deadline expired; the result is the incumbent.
    TimedOut,
    /// An external cancellation stopped the search.
    Cancelled,
    /// A sweep-level result covering only part of its jobs (the sweep was
    /// interrupted and drained; completed jobs are journaled for resume).
    Partial,
}

impl Provenance {
    /// True unless the search completed naturally.
    pub fn is_partial(self) -> bool {
        self != Provenance::Completed
    }

    /// Merges two provenances, keeping the "worst" (most-interrupted) one.
    pub fn worst(self, other: Provenance) -> Provenance {
        use Provenance::*;
        match (self, other) {
            (Cancelled, _) | (_, Cancelled) => Cancelled,
            (Partial, _) | (_, Partial) => Partial,
            (TimedOut, _) | (_, TimedOut) => TimedOut,
            (TruncatedByBudget, _) | (_, TruncatedByBudget) => TruncatedByBudget,
            (Completed, Completed) => Completed,
        }
    }

    /// Short marker for reports (`ok` / `trunc` / `timeout` / `cancel` /
    /// `partial`).
    pub fn marker(self) -> &'static str {
        match self {
            Provenance::Completed => "ok",
            Provenance::TruncatedByBudget => "trunc",
            Provenance::TimedOut => "timeout",
            Provenance::Cancelled => "cancel",
            Provenance::Partial => "partial",
        }
    }

    /// Inverse of [`Provenance::marker`] (used by the on-disk sweep
    /// journal codec); `None` for unknown markers.
    pub fn from_marker(marker: &str) -> Option<Self> {
        const ALL: [Provenance; 5] = [
            Provenance::Completed,
            Provenance::TruncatedByBudget,
            Provenance::TimedOut,
            Provenance::Cancelled,
            Provenance::Partial,
        ];
        ALL.into_iter().find(|p| p.marker() == marker)
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.marker())
    }
}

/// The kind of corrective action the resilient driver took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradationKind {
    /// A search was truncated by a step budget but its incumbent was used.
    Truncated,
    /// A search hit its deadline but its incumbent was used.
    TimedOut,
    /// The stage failed and a cheaper substitute result was used.
    Fallback,
    /// The stage failed and succeeded on a retry with altered parameters.
    Retried,
    /// The stage was skipped entirely.
    Skipped,
}

impl DegradationKind {
    pub fn name(self) -> &'static str {
        match self {
            DegradationKind::Truncated => "truncated",
            DegradationKind::TimedOut => "timed-out",
            DegradationKind::Fallback => "fallback",
            DegradationKind::Retried => "retried",
            DegradationKind::Skipped => "skipped",
        }
    }

    /// Inverse of [`DegradationKind::name`] (used by the on-disk
    /// variant-cache codec); `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        const ALL: [DegradationKind; 5] = [
            DegradationKind::Truncated,
            DegradationKind::TimedOut,
            DegradationKind::Fallback,
            DegradationKind::Retried,
            DegradationKind::Skipped,
        ];
        ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One recorded deviation from the ideal flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Where it happened.
    pub stage: Stage,
    /// What the driver did about it.
    pub kind: DegradationKind,
    /// Free-form context ("greedy incumbent", "seed retry 2/4", ...).
    pub detail: String,
}

impl Degradation {
    pub fn new(stage: Stage, kind: DegradationKind, detail: impl Into<String>) -> Self {
        Degradation {
            stage,
            kind,
            detail: detail.into(),
        }
    }

    /// A degradation recording a partial search result; `None` when the
    /// provenance is [`Provenance::Completed`].
    pub fn from_provenance(stage: Stage, p: Provenance) -> Option<Self> {
        let kind = match p {
            Provenance::Completed => return None,
            Provenance::TruncatedByBudget => DegradationKind::Truncated,
            Provenance::TimedOut => DegradationKind::TimedOut,
            Provenance::Cancelled | Provenance::Partial => DegradationKind::Skipped,
        };
        Some(Degradation::new(stage, kind, format!("search {p}")))
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}({})", self.stage, self.kind.name(), self.detail)
    }
}

/// A per-application DSE result plus every degradation taken to reach it.
#[derive(Debug, Clone)]
pub struct DseOutcome<T> {
    /// The (possibly degraded) result.
    pub result: T,
    /// Everything that went wrong on the way, in order.
    pub degradations: Vec<Degradation>,
}

impl<T> DseOutcome<T> {
    /// An outcome produced by the ideal, degradation-free path.
    pub fn clean(result: T) -> Self {
        DseOutcome {
            result,
            degradations: Vec::new(),
        }
    }

    /// An outcome that required corrective action.
    pub fn degraded(result: T, degradations: Vec<Degradation>) -> Self {
        DseOutcome {
            result,
            degradations,
        }
    }

    /// Whether any fallback, retry or truncation occurred.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// Compact one-token-per-degradation summary for report columns; `-`
    /// when clean.
    pub fn degradation_summary(&self) -> String {
        if self.degradations.is_empty() {
            "-".to_string()
        } else {
            self.degradations
                .iter()
                .map(|d| format!("{}:{}", d.stage, d.kind.name()))
                .collect::<Vec<_>>()
                .join(",")
        }
    }

    /// Maps the result, keeping the degradation record.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> DseOutcome<U> {
        DseOutcome {
            result: f(self.result),
            degradations: self.degradations,
        }
    }
}

/// Deterministic fault-injection registry (compiled only with the
/// `fault-injection` feature). Tests arm a named site, run the flow, and
/// the corresponding [`fail_point!`] returns the injected error.
///
/// A site can be armed to fire on its *N*-th hit ([`arm_after`]): the
/// firing check, [`should_fire`], counts hits per site, and a site fires
/// from the configured hit onward until disarmed. `arm(name)` is
/// `arm_after(name, 1)` — fire on every hit — which preserves the
/// historical always-fire semantics for every existing caller.
#[cfg(feature = "fault-injection")]
pub mod failpoints {
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};

    /// Per-site arming state: fire from the `after`-th hit on.
    #[derive(Debug, Clone, Copy)]
    struct ArmState {
        after: u64,
        hits: u64,
    }

    fn registry() -> &'static Mutex<BTreeMap<String, ArmState>> {
        static REGISTRY: OnceLock<Mutex<BTreeMap<String, ArmState>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, ArmState>> {
        // a poisoned registry only happens if a test panicked mid-update;
        // the map itself is always in a consistent state
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arms a fail point; every `fail_point!($name)` hit returns its
    /// injected error until [`disarm`] is called.
    pub fn arm(name: &str) {
        arm_after(name, 1);
    }

    /// Arms a fail point to fire on its `nth` hit (1-based) and on every
    /// hit after that. `nth == 0` is treated as 1.
    pub fn arm_after(name: &str, nth: u64) {
        lock().insert(
            name.to_string(),
            ArmState {
                after: nth.max(1),
                hits: 0,
            },
        );
    }

    /// Disarms one fail point.
    pub fn disarm(name: &str) {
        lock().remove(name);
    }

    /// Disarms every fail point (test teardown).
    pub fn disarm_all() {
        lock().clear();
    }

    /// Whether a fail point is currently armed (a non-counting peek; the
    /// firing decision is [`should_fire`]).
    pub fn is_armed(name: &str) -> bool {
        lock().contains_key(name)
    }

    /// Counts one hit on `name` and reports whether the site fires now.
    /// Unarmed sites never fire and are not counted.
    pub fn should_fire(name: &str) -> bool {
        let mut reg = lock();
        match reg.get_mut(name) {
            Some(state) => {
                state.hits += 1;
                state.hits >= state.after
            }
            None => false,
        }
    }

    /// Hits counted against `name` so far (0 when unarmed).
    pub fn hits(name: &str) -> u64 {
        lock().get(name).map_or(0, |s| s.hits)
    }

    /// Names of all armed fail points (diagnostics).
    pub fn armed() -> Vec<String> {
        lock().keys().cloned().collect()
    }
}

/// Deterministic fault-injection site.
///
/// `fail_point!("site", expr)` returns `Err(expr)` from the enclosing
/// function when the site is armed via [`failpoints::arm`] (or when the
/// hit counter reaches the threshold set by [`failpoints::arm_after`]).
/// Without the `fault-injection` feature the macro expands to nothing, so
/// production builds carry zero overhead. The consuming crate must forward
/// its own `fault-injection` feature to `apex-fault/fault-injection`.
#[macro_export]
macro_rules! fail_point {
    ($name:expr, $err:expr) => {
        #[cfg(feature = "fault-injection")]
        {
            if $crate::failpoints::should_fire($name) {
                return Err($err);
            }
        }
    };
}

/// One registered fault-injection site: its name, the pipeline stage it
/// lives in, and what arming it simulates. See [`FAILPOINT_CATALOG`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailpointInfo {
    /// The name passed to `fail_point!` / `failpoints::arm`.
    pub name: &'static str,
    /// The stage whose code hosts the site.
    pub stage: Stage,
    /// What firing the site simulates.
    pub description: &'static str,
}

/// The enumerable catalog of every fail-point site in the workspace.
///
/// Chaos campaigns enumerate fault schedules from this table instead of
/// hand-picking sites, so a new `fail_point!` must be registered here (a
/// test in this crate scans the workspace sources and fails on any
/// unregistered site). The catalog is compiled unconditionally — only the
/// arming registry is feature-gated.
pub const FAILPOINT_CATALOG: &[FailpointInfo] = &[
    FailpointInfo {
        name: "pipeline::start",
        stage: Stage::Pipeline,
        description: "PE pipelining fails at entry",
    },
    FailpointInfo {
        name: "pipeline::app",
        stage: Stage::Pipeline,
        description: "application pipelining fails at entry",
    },
    FailpointInfo {
        name: "mine::start",
        stage: Stage::Mine,
        description: "frequent-subgraph mining fails at entry",
    },
    FailpointInfo {
        name: "map::start",
        stage: Stage::Map,
        description: "instruction selection fails at entry",
    },
    FailpointInfo {
        name: "place::start",
        stage: Stage::Place,
        description: "CGRA placement fails at entry",
    },
    FailpointInfo {
        name: "route::start",
        stage: Stage::Route,
        description: "CGRA routing fails at entry",
    },
    FailpointInfo {
        name: "merge::start",
        stage: Stage::Merge,
        description: "datapath merging fails at entry",
    },
    FailpointInfo {
        name: "rewrite::start",
        stage: Stage::Rewrite,
        description: "rewrite-rule synthesis fails at entry",
    },
    FailpointInfo {
        name: "rewrite::synth_panic",
        stage: Stage::Rewrite,
        description: "a rewrite-synthesis worker panics mid-job",
    },
    FailpointInfo {
        name: "core::mine_panic",
        stage: Stage::Mine,
        description: "a mining worker panics mid-job",
    },
    FailpointInfo {
        name: "sweep::journal_write",
        stage: Stage::Sweep,
        description: "a checkpoint-journal append fails",
    },
    FailpointInfo {
        name: "sweep::journal_replay",
        stage: Stage::Sweep,
        description: "journal replay sees an unreadable file",
    },
    FailpointInfo {
        name: "sweep::interrupt_midsweep",
        stage: Stage::Sweep,
        description: "Ctrl-C after the first executed job of a sweep",
    },
    FailpointInfo {
        name: "sweep::job_timeout",
        stage: Stage::Sweep,
        description: "a sweep job hangs until its watchdog cancels it",
    },
    FailpointInfo {
        name: "serve::slow_client",
        stage: Stage::Cli,
        description: "the submit client trickles one byte at a time",
    },
    FailpointInfo {
        name: "serve::accept_error",
        stage: Stage::Sweep,
        description: "the daemon's accept loop sees a transient error",
    },
    FailpointInfo {
        name: "serve::mid_job_kill",
        stage: Stage::Sweep,
        description: "SIGTERM the moment a daemon job starts",
    },
    FailpointInfo {
        name: "serve::cache_evict_race",
        stage: Stage::Sweep,
        description: "a cache entry vanishes between listing and eviction",
    },
    FailpointInfo {
        name: "io::journal_enospc",
        stage: Stage::Sweep,
        description: "journal append hits ENOSPC before any byte lands",
    },
    FailpointInfo {
        name: "io::journal_short_write",
        stage: Stage::Sweep,
        description: "journal append fails after writing half the record",
    },
    FailpointInfo {
        name: "io::journal_fsync",
        stage: Stage::Sweep,
        description: "journal fsync fails after the data was written",
    },
    FailpointInfo {
        name: "io::cache_enospc",
        stage: Stage::Sweep,
        description: "variant-cache write hits ENOSPC before any byte lands",
    },
    FailpointInfo {
        name: "io::cache_short_write",
        stage: Stage::Sweep,
        description: "variant-cache write fails after half the entry",
    },
    FailpointInfo {
        name: "fault::test",
        stage: Stage::Mine,
        description: "apex-fault's own macro self-test site",
    },
];

/// Looks up a [`FAILPOINT_CATALOG`] entry by site name.
pub fn failpoint_info(name: &str) -> Option<&'static FailpointInfo> {
    FAILPOINT_CATALOG.iter().find(|f| f.name == name)
}

/// An approximate byte budget for one memory-hungry search structure.
///
/// The search stages account the dominant allocations (embedding-list
/// rows, overlap-graph edges, clique compatibility matrices) against a
/// [`ResourceMeter`] started from this budget; a failed [`charge`]
/// truncates the search deterministically with a
/// [`Provenance::TruncatedByBudget`] record instead of OOM-aborting.
/// The default budget ([`ResourceBudget::from_env`]) reads
/// `APEX_MEM_BUDGET` (byte count, `k`/`m`/`g` suffixes); unset means
/// unlimited.
///
/// [`charge`]: ResourceMeter::charge
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    /// Approximate byte cap; `None` never stops a search.
    pub max_bytes: Option<u64>,
}

impl ResourceBudget {
    /// A budget that never stops a search.
    pub fn unlimited() -> Self {
        ResourceBudget::default()
    }

    /// Caps the accounted bytes.
    pub fn with_max_bytes(bytes: u64) -> Self {
        ResourceBudget {
            max_bytes: Some(bytes),
        }
    }

    /// The budget `APEX_MEM_BUDGET` requests (unlimited when unset or
    /// unparseable — a bad value must not abort production runs).
    pub fn from_env() -> Self {
        match std::env::var("APEX_MEM_BUDGET") {
            Ok(v) => ResourceBudget {
                max_bytes: parse_mem_budget(&v),
            },
            Err(_) => ResourceBudget::unlimited(),
        }
    }

    /// Starts accounting against this budget.
    pub fn start(&self) -> ResourceMeter {
        ResourceMeter {
            max_bytes: self.max_bytes,
            used: 0,
            exhausted: false,
        }
    }
}

/// Parses a byte count with optional `k`/`m`/`g` suffix (1024-based);
/// `None` on malformed input.
fn parse_mem_budget(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (digits, shift) = match s.as_bytes()[s.len() - 1].to_ascii_lowercase() {
        b'k' => (&s[..s.len() - 1], 10),
        b'm' => (&s[..s.len() - 1], 20),
        b'g' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_shl(shift)
}

/// Running byte accounting for one stage invocation.
///
/// [`charge`] approves or rejects an allocation *before* it happens: on
/// rejection nothing is accounted and the meter latches `exhausted`, so
/// the caller truncates its structure at a deterministic point (the same
/// point on every run with the same inputs and budget).
///
/// [`charge`]: ResourceMeter::charge
#[derive(Debug)]
pub struct ResourceMeter {
    max_bytes: Option<u64>,
    used: u64,
    exhausted: bool,
}

impl ResourceMeter {
    /// A meter that never rejects (for paths without a budget).
    pub fn unlimited() -> Self {
        ResourceBudget::unlimited().start()
    }

    /// Asks to account `bytes` more. Returns `true` (and accounts them)
    /// while the total stays within the cap; on `false` nothing was
    /// accounted and [`exhausted`](ResourceMeter::exhausted) latches.
    pub fn charge(&mut self, bytes: u64) -> bool {
        match self.max_bytes {
            Some(max) if self.used.saturating_add(bytes) > max => {
                self.exhausted = true;
                false
            }
            _ => {
                self.used = self.used.saturating_add(bytes);
                true
            }
        }
    }

    /// Returns previously-charged bytes (a freed scratch structure).
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes accounted so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Whether any charge was ever rejected.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// The outcome this meter implies for the enclosing search.
    pub fn provenance(&self) -> Provenance {
        if self.exhausted {
            Provenance::TruncatedByBudget
        } else {
            Provenance::Completed
        }
    }
}

/// Injected-I/O-fault adapter for durability-critical writes.
///
/// The journal and the variant cache route their writes through these
/// helpers so chaos campaigns can simulate ENOSPC (nothing lands), short
/// writes (a prefix lands, then the error), and fsync failure (data
/// landed, durability didn't). Without the `fault-injection` feature every
/// helper is a plain passthrough.
pub mod iofault {
    use std::io;

    /// The injected error for a firing site, `None` when the site is
    /// disarmed (or the feature is off).
    pub fn injected(site: &str) -> Option<io::Error> {
        #[cfg(feature = "fault-injection")]
        {
            if crate::failpoints::should_fire(site) {
                return Some(io::Error::new(
                    io::ErrorKind::Other,
                    format!("injected I/O fault at {site}"),
                ));
            }
        }
        let _ = site;
        None
    }

    /// Writes `bytes` to `w`, honoring two injection sites: `enospc_site`
    /// fails before any byte lands; `short_site` writes roughly half the
    /// bytes and then fails — the torn-write simulation durability code
    /// must recover from.
    pub fn write_all(
        w: &mut impl io::Write,
        bytes: &[u8],
        enospc_site: &str,
        short_site: &str,
    ) -> io::Result<()> {
        if let Some(e) = injected(enospc_site) {
            return Err(e);
        }
        match injected(short_site) {
            Some(e) => {
                w.write_all(&bytes[..bytes.len() / 2])?;
                w.flush()?;
                Err(e)
            }
            None => w.write_all(bytes),
        }
    }

    /// Syncs `f` to stable storage, failing at `site` *after* the data was
    /// written (the write succeeded; its durability didn't).
    pub fn sync_data(f: &std::fs::File, site: &str) -> io::Result<()> {
        f.sync_data()?;
        if let Some(e) = injected(site) {
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_chain_renders_stage_and_causes() {
        let inner = std::io::Error::new(std::io::ErrorKind::Other, "disk on fire");
        let e = ApexError::with_source(Stage::Route, inner);
        assert_eq!(e.stage(), Stage::Route);
        assert!(e.to_string().starts_with("route: "));
        assert!(e.render_chain().starts_with("error: route: "));
    }

    #[test]
    fn step_budget_truncates() {
        let mut m = StageBudget::unlimited().with_max_steps(10).start();
        let mut n = 0;
        while m.tick() {
            n += 1;
            assert!(n < 1000, "meter never tripped");
        }
        assert_eq!(n, 10);
        assert_eq!(m.provenance(), Provenance::TruncatedByBudget);
        assert!(!m.tick(), "meter latches");
    }

    #[test]
    fn zero_deadline_times_out() {
        let mut m = StageBudget::unlimited()
            .with_deadline(Duration::from_millis(0))
            .start();
        // the clock is only consulted every 256 ticks
        let mut n = 0u64;
        while m.tick() {
            n += 1;
            assert!(n <= 256, "deadline never observed");
        }
        assert_eq!(m.provenance(), Provenance::TimedOut);
    }

    #[test]
    fn cancellation_observed_on_next_tick_not_at_clock_boundary() {
        // regression: the cancel flag used to share the 256-tick clock
        // mask, so a cancel raised at tick 1 was not seen until tick 256 —
        // arbitrarily late when steps are slow. It must now trip on the
        // very next tick.
        let flag = Arc::new(AtomicBool::new(false));
        let mut m = StageBudget::unlimited()
            .with_cancel(Arc::clone(&flag))
            .start();
        for _ in 0..3 {
            assert!(m.tick());
        }
        flag.store(true, Ordering::Relaxed);
        assert!(!m.tick(), "cancel not observed within one tick");
        assert_eq!(m.steps(), 4);
        assert_eq!(m.provenance(), Provenance::Cancelled);
    }

    #[test]
    fn stage_names_round_trip() {
        // the journal serializes these names; drift is data corruption
        const ALL: [Stage; 12] = [
            Stage::Parse,
            Stage::Mine,
            Stage::Merge,
            Stage::Rewrite,
            Stage::Map,
            Stage::Pipeline,
            Stage::Place,
            Stage::Route,
            Stage::Verify,
            Stage::Report,
            Stage::Sweep,
            Stage::Cli,
        ];
        for s in ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s), "{s:?}");
        }
        assert_eq!(Stage::from_name("no-such-stage"), None);
        assert_eq!(Stage::from_name(""), None);
    }

    #[test]
    fn degradation_kind_names_round_trip() {
        const ALL: [DegradationKind; 5] = [
            DegradationKind::Truncated,
            DegradationKind::TimedOut,
            DegradationKind::Fallback,
            DegradationKind::Retried,
            DegradationKind::Skipped,
        ];
        for k in ALL {
            assert_eq!(DegradationKind::from_name(k.name()), Some(k), "{k:?}");
        }
        assert_eq!(DegradationKind::from_name("no-such-kind"), None);
    }

    #[test]
    fn provenance_markers_round_trip() {
        const ALL: [Provenance; 5] = [
            Provenance::Completed,
            Provenance::TruncatedByBudget,
            Provenance::TimedOut,
            Provenance::Cancelled,
            Provenance::Partial,
        ];
        for p in ALL {
            assert_eq!(Provenance::from_marker(p.marker()), Some(p), "{p:?}");
        }
        assert_eq!(Provenance::from_marker("no-such-marker"), None);
    }

    #[test]
    fn partial_is_worse_than_timeout_but_not_cancel() {
        use Provenance::*;
        assert_eq!(Partial.worst(TimedOut), Partial);
        assert_eq!(Partial.worst(Cancelled), Cancelled);
        assert_eq!(Completed.worst(Partial), Partial);
        assert!(Partial.is_partial());
    }

    #[test]
    fn cancellation_flag_stops_search() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut m = StageBudget::unlimited()
            .with_cancel(Arc::clone(&flag))
            .start();
        assert!(m.check_slow());
        flag.store(true, Ordering::Relaxed);
        assert!(!m.check_slow());
        assert_eq!(m.provenance(), Provenance::Cancelled);
    }

    #[test]
    fn unlimited_budget_never_stops() {
        let mut m = StageBudget::unlimited().start();
        for _ in 0..100_000 {
            assert!(m.tick());
        }
        assert_eq!(m.provenance(), Provenance::Completed);
    }

    #[test]
    fn provenance_worst_ordering() {
        use Provenance::*;
        assert_eq!(Completed.worst(TruncatedByBudget), TruncatedByBudget);
        assert_eq!(TimedOut.worst(TruncatedByBudget), TimedOut);
        assert_eq!(Cancelled.worst(TimedOut), Cancelled);
        assert_eq!(Completed.worst(Completed), Completed);
    }

    #[test]
    fn outcome_summary_formats() {
        let clean: DseOutcome<u32> = DseOutcome::clean(7);
        assert!(!clean.is_degraded());
        assert_eq!(clean.degradation_summary(), "-");
        let d = DseOutcome::degraded(
            7,
            vec![
                Degradation::new(Stage::Merge, DegradationKind::TimedOut, "greedy"),
                Degradation::new(Stage::Place, DegradationKind::Retried, "seed 2"),
            ],
        );
        assert_eq!(d.degradation_summary(), "merge:timed-out,place:retried");
    }

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        for (i, info) in FAILPOINT_CATALOG.iter().enumerate() {
            assert_eq!(failpoint_info(info.name), Some(info), "{}", info.name);
            assert!(
                !FAILPOINT_CATALOG[..i].iter().any(|f| f.name == info.name),
                "duplicate catalog entry: {}",
                info.name
            );
            assert!(!info.description.is_empty(), "{}", info.name);
        }
        assert_eq!(failpoint_info("no::such::site"), None);
    }

    #[test]
    fn resource_meter_charges_and_latches() {
        let mut m = ResourceBudget::with_max_bytes(100).start();
        assert!(m.charge(60));
        assert!(m.charge(40));
        assert_eq!(m.used(), 100);
        assert!(!m.charge(1), "over-cap charge must be rejected");
        assert!(m.exhausted(), "rejection latches");
        assert_eq!(m.used(), 100, "a rejected charge accounts nothing");
        assert_eq!(m.provenance(), Provenance::TruncatedByBudget);
        m.release(50);
        assert!(m.charge(30), "released bytes can be re-charged");
        assert!(m.exhausted(), "the latch survives later successes");
    }

    #[test]
    fn unlimited_resource_meter_never_rejects() {
        let mut m = ResourceMeter::unlimited();
        assert!(m.charge(u64::MAX));
        assert!(m.charge(u64::MAX));
        assert!(!m.exhausted());
        assert_eq!(m.provenance(), Provenance::Completed);
    }

    #[test]
    fn mem_budget_parses_suffixes() {
        assert_eq!(parse_mem_budget("1024"), Some(1024));
        assert_eq!(parse_mem_budget("4k"), Some(4 << 10));
        assert_eq!(parse_mem_budget("16M"), Some(16 << 20));
        assert_eq!(parse_mem_budget("2g"), Some(2 << 30));
        assert_eq!(parse_mem_budget(" 8 m "), Some(8 << 20));
        assert_eq!(parse_mem_budget(""), None);
        assert_eq!(parse_mem_budget("lots"), None);
        assert_eq!(parse_mem_budget("-3k"), None);
    }

    #[test]
    fn iofault_is_a_passthrough_when_disarmed() {
        let mut out = Vec::new();
        iofault::write_all(&mut out, b"hello", "io::journal_enospc", "io::journal_short_write")
            .expect("disarmed write");
        assert_eq!(out, b"hello");
        assert!(iofault::injected("io::journal_fsync").is_none());
    }

    /// The registry is process-global; tests that arm sites must not
    /// interleave.
    #[cfg(feature = "fault-injection")]
    fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn nth_hit_arming_counts_hits() {
        let _guard = registry_lock();
        failpoints::disarm_all();
        failpoints::arm_after("fault::test", 3);
        assert!(failpoints::is_armed("fault::test"));
        assert!(!failpoints::should_fire("fault::test"), "hit 1 must not fire");
        assert!(!failpoints::should_fire("fault::test"), "hit 2 must not fire");
        assert!(failpoints::should_fire("fault::test"), "hit 3 fires");
        assert!(failpoints::should_fire("fault::test"), "and stays firing");
        assert_eq!(failpoints::hits("fault::test"), 4);
        failpoints::disarm_all();
        assert!(!failpoints::should_fire("fault::test"));
        assert_eq!(failpoints::hits("fault::test"), 0);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_short_write_lands_a_prefix() {
        let _guard = registry_lock();
        failpoints::disarm_all();
        failpoints::arm("io::cache_short_write");
        let mut out = Vec::new();
        let err = iofault::write_all(&mut out, b"abcdefgh", "io::cache_enospc", "io::cache_short_write")
            .expect_err("armed short write fails");
        assert!(err.to_string().contains("io::cache_short_write"));
        assert_eq!(out, b"abcd", "exactly half the bytes land");
        failpoints::arm("io::cache_enospc");
        let mut out2 = Vec::new();
        let err = iofault::write_all(&mut out2, b"abcdefgh", "io::cache_enospc", "io::cache_short_write")
            .expect_err("armed enospc fails");
        assert!(err.to_string().contains("io::cache_enospc"));
        assert!(out2.is_empty(), "ENOSPC lands nothing");
        failpoints::disarm_all();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn fail_points_arm_and_disarm() {
        fn guarded() -> Result<u32, ApexError> {
            fail_point!(
                "fault::test",
                ApexError::new(Stage::Mine, "injected fault")
            );
            Ok(1)
        }
        let _guard = registry_lock();
        failpoints::disarm_all();
        assert_eq!(guarded().unwrap(), 1);
        failpoints::arm("fault::test");
        assert!(guarded().is_err());
        failpoints::disarm("fault::test");
        assert_eq!(guarded().unwrap(), 1);
    }
}
