//! Fault-tolerance primitives for the APEX DSE engine.
//!
//! A multi-application DSE sweep (mine → merge → rewrite → map → pipeline →
//! place → route) must degrade and keep reporting rather than abort when one
//! stage fails or exhausts its budget. This crate is the workspace's
//! bottom-most layer for that policy:
//!
//! * [`ApexError`] — the unified error type every stage error converts
//!   into, carrying the [`Stage`] it came from and an optional source chain.
//! * [`StageBudget`] / [`BudgetMeter`] — wall-clock deadlines, step budgets
//!   and cooperative cancellation for the search loops (clique
//!   branch-and-bound, embedding enumeration, PathFinder).
//! * [`Provenance`] — how a search result ended: ran to completion, was
//!   truncated by a step budget, hit its deadline, or was cancelled.
//! * [`Degradation`] / [`DseOutcome`] — per-application records of every
//!   fallback the resilient driver took, so reports can render partial
//!   sweeps honestly.
//! * [`fail_point!`] — a deterministic, feature-gated fault-injection
//!   macro (no external dependencies) used by the robustness test-suite to
//!   prove each stage fault degrades instead of panicking.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod interrupt;

/// The pipeline stage an error or degradation originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Input parsing / graph construction.
    Parse,
    /// Frequent-subgraph mining.
    Mine,
    /// Datapath merging (clique search included).
    Merge,
    /// Rewrite-rule synthesis.
    Rewrite,
    /// Instruction selection onto the PE.
    Map,
    /// PE or application pipelining.
    Pipeline,
    /// CGRA placement.
    Place,
    /// CGRA routing.
    Route,
    /// Post-route functional verification.
    Verify,
    /// Cost/area/energy reporting.
    Report,
    /// Parallel sweep execution (job pool, worker panics, cache I/O).
    Sweep,
    /// Command-line driver.
    Cli,
}

impl Stage {
    /// Lower-case stage name used in diagnostics and report columns.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Mine => "mine",
            Stage::Merge => "merge",
            Stage::Rewrite => "rewrite",
            Stage::Map => "map",
            Stage::Pipeline => "pipeline",
            Stage::Place => "place",
            Stage::Route => "route",
            Stage::Verify => "verify",
            Stage::Report => "report",
            Stage::Sweep => "sweep",
            Stage::Cli => "cli",
        }
    }

    /// Inverse of [`Stage::name`] (used by the on-disk variant-cache
    /// codec); `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        const ALL: [Stage; 12] = [
            Stage::Parse,
            Stage::Mine,
            Stage::Merge,
            Stage::Rewrite,
            Stage::Map,
            Stage::Pipeline,
            Stage::Place,
            Stage::Route,
            Stage::Verify,
            Stage::Report,
            Stage::Sweep,
            Stage::Cli,
        ];
        ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The unified workspace error: which stage failed and why.
///
/// Stage crates keep their own precise error enums; anything that crosses a
/// stage boundary converts into `ApexError` so drivers and the CLI handle a
/// single type. The `source` chain preserves the original error for
/// `error: <stage>: <cause>` rendering.
#[derive(Debug)]
pub struct ApexError {
    stage: Stage,
    message: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl ApexError {
    /// An error with a message and no underlying cause.
    pub fn new(stage: Stage, message: impl Into<String>) -> Self {
        ApexError {
            stage,
            message: message.into(),
            source: None,
        }
    }

    /// Wraps an underlying stage error, keeping it on the source chain.
    pub fn with_source(
        stage: Stage,
        source: impl Error + Send + Sync + 'static,
    ) -> Self {
        ApexError {
            stage,
            message: source.to_string(),
            source: Some(Box::new(source)),
        }
    }

    /// The stage this error belongs to.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The human-readable cause (without the stage prefix).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Renders the full `error: <stage>: <cause>` chain, one line,
    /// innermost cause last.
    pub fn render_chain(&self) -> String {
        let mut s = format!("error: {}: {}", self.stage, self.message);
        let mut src = self.source().and_then(Error::source);
        while let Some(cause) = src {
            s.push_str(&format!(": {cause}"));
            src = cause.source();
        }
        s
    }
}

impl fmt::Display for ApexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.stage, self.message)
    }
}

impl Error for ApexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn Error + 'static))
    }
}

/// Resource limits for a single search stage.
///
/// All limits are optional; [`StageBudget::unlimited`] never stops a
/// search. Budgets are checked cooperatively through a [`BudgetMeter`]
/// inside each stage's hot loop.
#[derive(Debug, Clone, Default)]
pub struct StageBudget {
    /// Wall-clock allowance for the stage.
    pub deadline: Option<Duration>,
    /// Maximum number of cooperative steps (loop iterations, search nodes).
    pub max_steps: Option<u64>,
    /// External cancellation flag (e.g. a sweep-wide abort).
    pub cancel: Option<Arc<AtomicBool>>,
}

// Manual equality so option structs embedding a budget can keep deriving
// `PartialEq`/`Eq`; cancellation flags compare by identity.
impl PartialEq for StageBudget {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
            && self.max_steps == other.max_steps
            && match (&self.cancel, &other.cancel) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for StageBudget {}

impl StageBudget {
    /// A budget that never interrupts the search.
    pub fn unlimited() -> Self {
        StageBudget::default()
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a step budget.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Attaches a cooperative cancellation flag.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Starts metering this budget (records the start instant).
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter {
            started: Instant::now(),
            deadline: self.deadline,
            max_steps: self.max_steps,
            cancel: self.cancel.clone(),
            steps: 0,
            stopped: None,
        }
    }
}

/// How often the meter consults the clock / cancellation flag; step-count
/// checks happen on every tick.
const CLOCK_CHECK_MASK: u64 = 0xFF;

/// A running budget check for one stage invocation.
///
/// Call [`BudgetMeter::tick`] once per unit of work; it returns `false`
/// once any limit trips, after which [`BudgetMeter::provenance`] reports
/// which limit it was. The clock is only consulted every 256 ticks so
/// metering stays out of the hot path; the cancellation flag is a single
/// relaxed atomic load and is consulted on **every** tick, so a watchdog
/// or Ctrl-C is observed within one unit of work rather than up to 255
/// (possibly slow) steps later.
#[derive(Debug)]
pub struct BudgetMeter {
    started: Instant,
    deadline: Option<Duration>,
    max_steps: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    steps: u64,
    stopped: Option<Provenance>,
}

impl BudgetMeter {
    /// Accounts one unit of work. Returns `true` while the search may
    /// continue. Once a limit trips the meter latches and keeps returning
    /// `false`.
    pub fn tick(&mut self) -> bool {
        if self.stopped.is_some() {
            return false;
        }
        self.steps += 1;
        if let Some(max) = self.max_steps {
            if self.steps > max {
                self.stopped = Some(Provenance::TruncatedByBudget);
                return false;
            }
        }
        // cancellation must propagate within one watchdog time-slice even
        // when individual steps are slow, so the flag (one relaxed load)
        // is checked every tick; only the clock read stays masked
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                self.stopped = Some(Provenance::Cancelled);
                return false;
            }
        }
        if self.steps & CLOCK_CHECK_MASK == 0 {
            return self.check_slow();
        }
        true
    }

    /// Forces a clock/cancellation check regardless of tick phase (used
    /// before committing to an expensive sub-search).
    pub fn check_slow(&mut self) -> bool {
        if self.stopped.is_some() {
            return false;
        }
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                self.stopped = Some(Provenance::Cancelled);
                return false;
            }
        }
        if let Some(d) = self.deadline {
            if self.started.elapsed() >= d {
                self.stopped = Some(Provenance::TimedOut);
                return false;
            }
        }
        true
    }

    /// Whether any limit has tripped.
    pub fn exhausted(&self) -> bool {
        self.stopped.is_some()
    }

    /// Units of work accounted so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The search outcome as seen by this meter.
    pub fn provenance(&self) -> Provenance {
        self.stopped.unwrap_or(Provenance::Completed)
    }
}

/// How a search stage's result came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// The search ran to natural completion; the result is exact (within
    /// the algorithm's own guarantees).
    Completed,
    /// A step budget truncated the search; the result is the incumbent.
    TruncatedByBudget,
    /// The wall-clock deadline expired; the result is the incumbent.
    TimedOut,
    /// An external cancellation stopped the search.
    Cancelled,
    /// A sweep-level result covering only part of its jobs (the sweep was
    /// interrupted and drained; completed jobs are journaled for resume).
    Partial,
}

impl Provenance {
    /// True unless the search completed naturally.
    pub fn is_partial(self) -> bool {
        self != Provenance::Completed
    }

    /// Merges two provenances, keeping the "worst" (most-interrupted) one.
    pub fn worst(self, other: Provenance) -> Provenance {
        use Provenance::*;
        match (self, other) {
            (Cancelled, _) | (_, Cancelled) => Cancelled,
            (Partial, _) | (_, Partial) => Partial,
            (TimedOut, _) | (_, TimedOut) => TimedOut,
            (TruncatedByBudget, _) | (_, TruncatedByBudget) => TruncatedByBudget,
            (Completed, Completed) => Completed,
        }
    }

    /// Short marker for reports (`ok` / `trunc` / `timeout` / `cancel` /
    /// `partial`).
    pub fn marker(self) -> &'static str {
        match self {
            Provenance::Completed => "ok",
            Provenance::TruncatedByBudget => "trunc",
            Provenance::TimedOut => "timeout",
            Provenance::Cancelled => "cancel",
            Provenance::Partial => "partial",
        }
    }

    /// Inverse of [`Provenance::marker`] (used by the on-disk sweep
    /// journal codec); `None` for unknown markers.
    pub fn from_marker(marker: &str) -> Option<Self> {
        const ALL: [Provenance; 5] = [
            Provenance::Completed,
            Provenance::TruncatedByBudget,
            Provenance::TimedOut,
            Provenance::Cancelled,
            Provenance::Partial,
        ];
        ALL.into_iter().find(|p| p.marker() == marker)
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.marker())
    }
}

/// The kind of corrective action the resilient driver took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradationKind {
    /// A search was truncated by a step budget but its incumbent was used.
    Truncated,
    /// A search hit its deadline but its incumbent was used.
    TimedOut,
    /// The stage failed and a cheaper substitute result was used.
    Fallback,
    /// The stage failed and succeeded on a retry with altered parameters.
    Retried,
    /// The stage was skipped entirely.
    Skipped,
}

impl DegradationKind {
    pub fn name(self) -> &'static str {
        match self {
            DegradationKind::Truncated => "truncated",
            DegradationKind::TimedOut => "timed-out",
            DegradationKind::Fallback => "fallback",
            DegradationKind::Retried => "retried",
            DegradationKind::Skipped => "skipped",
        }
    }

    /// Inverse of [`DegradationKind::name`] (used by the on-disk
    /// variant-cache codec); `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        const ALL: [DegradationKind; 5] = [
            DegradationKind::Truncated,
            DegradationKind::TimedOut,
            DegradationKind::Fallback,
            DegradationKind::Retried,
            DegradationKind::Skipped,
        ];
        ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One recorded deviation from the ideal flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Where it happened.
    pub stage: Stage,
    /// What the driver did about it.
    pub kind: DegradationKind,
    /// Free-form context ("greedy incumbent", "seed retry 2/4", ...).
    pub detail: String,
}

impl Degradation {
    pub fn new(stage: Stage, kind: DegradationKind, detail: impl Into<String>) -> Self {
        Degradation {
            stage,
            kind,
            detail: detail.into(),
        }
    }

    /// A degradation recording a partial search result; `None` when the
    /// provenance is [`Provenance::Completed`].
    pub fn from_provenance(stage: Stage, p: Provenance) -> Option<Self> {
        let kind = match p {
            Provenance::Completed => return None,
            Provenance::TruncatedByBudget => DegradationKind::Truncated,
            Provenance::TimedOut => DegradationKind::TimedOut,
            Provenance::Cancelled | Provenance::Partial => DegradationKind::Skipped,
        };
        Some(Degradation::new(stage, kind, format!("search {p}")))
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}({})", self.stage, self.kind.name(), self.detail)
    }
}

/// A per-application DSE result plus every degradation taken to reach it.
#[derive(Debug, Clone)]
pub struct DseOutcome<T> {
    /// The (possibly degraded) result.
    pub result: T,
    /// Everything that went wrong on the way, in order.
    pub degradations: Vec<Degradation>,
}

impl<T> DseOutcome<T> {
    /// An outcome produced by the ideal, degradation-free path.
    pub fn clean(result: T) -> Self {
        DseOutcome {
            result,
            degradations: Vec::new(),
        }
    }

    /// An outcome that required corrective action.
    pub fn degraded(result: T, degradations: Vec<Degradation>) -> Self {
        DseOutcome {
            result,
            degradations,
        }
    }

    /// Whether any fallback, retry or truncation occurred.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// Compact one-token-per-degradation summary for report columns; `-`
    /// when clean.
    pub fn degradation_summary(&self) -> String {
        if self.degradations.is_empty() {
            "-".to_string()
        } else {
            self.degradations
                .iter()
                .map(|d| format!("{}:{}", d.stage, d.kind.name()))
                .collect::<Vec<_>>()
                .join(",")
        }
    }

    /// Maps the result, keeping the degradation record.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> DseOutcome<U> {
        DseOutcome {
            result: f(self.result),
            degradations: self.degradations,
        }
    }
}

/// Deterministic fault-injection registry (compiled only with the
/// `fault-injection` feature). Tests arm a named site, run the flow, and
/// the corresponding [`fail_point!`] returns the injected error.
#[cfg(feature = "fault-injection")]
pub mod failpoints {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};

    fn registry() -> &'static Mutex<BTreeSet<String>> {
        static REGISTRY: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(BTreeSet::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, BTreeSet<String>> {
        // a poisoned registry only happens if a test panicked mid-update;
        // the set itself is always in a consistent state
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arms a fail point; the next `fail_point!($name)` hit returns its
    /// injected error until [`disarm`] is called.
    pub fn arm(name: &str) {
        lock().insert(name.to_string());
    }

    /// Disarms one fail point.
    pub fn disarm(name: &str) {
        lock().remove(name);
    }

    /// Disarms every fail point (test teardown).
    pub fn disarm_all() {
        lock().clear();
    }

    /// Whether a fail point is currently armed.
    pub fn is_armed(name: &str) -> bool {
        lock().contains(name)
    }

    /// Names of all armed fail points (diagnostics).
    pub fn armed() -> Vec<String> {
        lock().iter().cloned().collect()
    }
}

/// Deterministic fault-injection site.
///
/// `fail_point!("site", expr)` returns `Err(expr)` from the enclosing
/// function when the site is armed via [`failpoints::arm`]. Without the
/// `fault-injection` feature the macro expands to nothing, so production
/// builds carry zero overhead. The consuming crate must forward its own
/// `fault-injection` feature to `apex-fault/fault-injection`.
#[macro_export]
macro_rules! fail_point {
    ($name:expr, $err:expr) => {
        #[cfg(feature = "fault-injection")]
        {
            if $crate::failpoints::is_armed($name) {
                return Err($err);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_chain_renders_stage_and_causes() {
        let inner = std::io::Error::new(std::io::ErrorKind::Other, "disk on fire");
        let e = ApexError::with_source(Stage::Route, inner);
        assert_eq!(e.stage(), Stage::Route);
        assert!(e.to_string().starts_with("route: "));
        assert!(e.render_chain().starts_with("error: route: "));
    }

    #[test]
    fn step_budget_truncates() {
        let mut m = StageBudget::unlimited().with_max_steps(10).start();
        let mut n = 0;
        while m.tick() {
            n += 1;
            assert!(n < 1000, "meter never tripped");
        }
        assert_eq!(n, 10);
        assert_eq!(m.provenance(), Provenance::TruncatedByBudget);
        assert!(!m.tick(), "meter latches");
    }

    #[test]
    fn zero_deadline_times_out() {
        let mut m = StageBudget::unlimited()
            .with_deadline(Duration::from_millis(0))
            .start();
        // the clock is only consulted every 256 ticks
        let mut n = 0u64;
        while m.tick() {
            n += 1;
            assert!(n <= 256, "deadline never observed");
        }
        assert_eq!(m.provenance(), Provenance::TimedOut);
    }

    #[test]
    fn cancellation_observed_on_next_tick_not_at_clock_boundary() {
        // regression: the cancel flag used to share the 256-tick clock
        // mask, so a cancel raised at tick 1 was not seen until tick 256 —
        // arbitrarily late when steps are slow. It must now trip on the
        // very next tick.
        let flag = Arc::new(AtomicBool::new(false));
        let mut m = StageBudget::unlimited()
            .with_cancel(Arc::clone(&flag))
            .start();
        for _ in 0..3 {
            assert!(m.tick());
        }
        flag.store(true, Ordering::Relaxed);
        assert!(!m.tick(), "cancel not observed within one tick");
        assert_eq!(m.steps(), 4);
        assert_eq!(m.provenance(), Provenance::Cancelled);
    }

    #[test]
    fn stage_names_round_trip() {
        // the journal serializes these names; drift is data corruption
        const ALL: [Stage; 12] = [
            Stage::Parse,
            Stage::Mine,
            Stage::Merge,
            Stage::Rewrite,
            Stage::Map,
            Stage::Pipeline,
            Stage::Place,
            Stage::Route,
            Stage::Verify,
            Stage::Report,
            Stage::Sweep,
            Stage::Cli,
        ];
        for s in ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s), "{s:?}");
        }
        assert_eq!(Stage::from_name("no-such-stage"), None);
        assert_eq!(Stage::from_name(""), None);
    }

    #[test]
    fn degradation_kind_names_round_trip() {
        const ALL: [DegradationKind; 5] = [
            DegradationKind::Truncated,
            DegradationKind::TimedOut,
            DegradationKind::Fallback,
            DegradationKind::Retried,
            DegradationKind::Skipped,
        ];
        for k in ALL {
            assert_eq!(DegradationKind::from_name(k.name()), Some(k), "{k:?}");
        }
        assert_eq!(DegradationKind::from_name("no-such-kind"), None);
    }

    #[test]
    fn provenance_markers_round_trip() {
        const ALL: [Provenance; 5] = [
            Provenance::Completed,
            Provenance::TruncatedByBudget,
            Provenance::TimedOut,
            Provenance::Cancelled,
            Provenance::Partial,
        ];
        for p in ALL {
            assert_eq!(Provenance::from_marker(p.marker()), Some(p), "{p:?}");
        }
        assert_eq!(Provenance::from_marker("no-such-marker"), None);
    }

    #[test]
    fn partial_is_worse_than_timeout_but_not_cancel() {
        use Provenance::*;
        assert_eq!(Partial.worst(TimedOut), Partial);
        assert_eq!(Partial.worst(Cancelled), Cancelled);
        assert_eq!(Completed.worst(Partial), Partial);
        assert!(Partial.is_partial());
    }

    #[test]
    fn cancellation_flag_stops_search() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut m = StageBudget::unlimited()
            .with_cancel(Arc::clone(&flag))
            .start();
        assert!(m.check_slow());
        flag.store(true, Ordering::Relaxed);
        assert!(!m.check_slow());
        assert_eq!(m.provenance(), Provenance::Cancelled);
    }

    #[test]
    fn unlimited_budget_never_stops() {
        let mut m = StageBudget::unlimited().start();
        for _ in 0..100_000 {
            assert!(m.tick());
        }
        assert_eq!(m.provenance(), Provenance::Completed);
    }

    #[test]
    fn provenance_worst_ordering() {
        use Provenance::*;
        assert_eq!(Completed.worst(TruncatedByBudget), TruncatedByBudget);
        assert_eq!(TimedOut.worst(TruncatedByBudget), TimedOut);
        assert_eq!(Cancelled.worst(TimedOut), Cancelled);
        assert_eq!(Completed.worst(Completed), Completed);
    }

    #[test]
    fn outcome_summary_formats() {
        let clean: DseOutcome<u32> = DseOutcome::clean(7);
        assert!(!clean.is_degraded());
        assert_eq!(clean.degradation_summary(), "-");
        let d = DseOutcome::degraded(
            7,
            vec![
                Degradation::new(Stage::Merge, DegradationKind::TimedOut, "greedy"),
                Degradation::new(Stage::Place, DegradationKind::Retried, "seed 2"),
            ],
        );
        assert_eq!(d.degradation_summary(), "merge:timed-out,place:retried");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn fail_points_arm_and_disarm() {
        fn guarded() -> Result<u32, ApexError> {
            fail_point!(
                "fault::test",
                ApexError::new(Stage::Mine, "injected fault")
            );
            Ok(1)
        }
        failpoints::disarm_all();
        assert_eq!(guarded().unwrap(), 1);
        failpoints::arm("fault::test");
        assert!(guarded().is_err());
        failpoints::disarm("fault::test");
        assert_eq!(guarded().unwrap(), 1);
    }
}
