//! The failpoint catalog must stay in lock-step with the workspace's
//! actual fail-point sites: chaos campaigns enumerate schedules from
//! [`apex_fault::FAILPOINT_CATALOG`], so an unregistered site would be a
//! fault nobody ever injects and a stale entry would be a schedule that
//! can never fire. This test scans every workspace source file (crates/
//! and src/, shims excluded) for firing sites — `fail_point!("...")`,
//! `is_armed("...")` / `should_fire("...")` checks, and `"io::..."`
//! adapter site literals — and requires an exact match with the catalog.

use apex_fault::FAILPOINT_CATALOG;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Every `.rs` file under crates/ and src/ of the workspace root.
fn workspace_sources() -> Vec<PathBuf> {
    // canonicalize so the `..` segments vanish: the io-literal exclusion
    // below tests path components, and a literal `fault/../..` prefix
    // would make every file look like part of the fault crate
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .unwrap_or_else(|e| panic!("canonicalize workspace root: {e}"));
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs(&root.join(top), &mut files);
    }
    assert!(
        files.len() > 20,
        "workspace scan found only {} files — wrong root?",
        files.len()
    );
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().map(|n| n == "target").unwrap_or(false) {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
}

/// The first string literal after byte offset `from` in `text`, if it
/// starts within `window` bytes (enough to cross a line break between a
/// macro name and its first argument).
fn next_literal(text: &str, from: usize, window: usize) -> Option<&str> {
    let hay = &text[from..text.len().min(from + window)];
    let start = hay.find('"')?;
    let rest = &hay[start + 1..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// All site names this file fires: `fail_point!` sites, armed-check
/// sites, and `io::` adapter site literals.
fn sites_in(text: &str, include_io_literals: bool) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    for pattern in ["fail_point!", "is_armed(", "should_fire("] {
        let mut at = 0;
        while let Some(pos) = text[at..].find(pattern) {
            let after = at + pos + pattern.len();
            // only direct literals count: `should_fire(site)` with a
            // variable (the chaos runner) is not a new site
            if let Some(name) = next_literal(text, after, 80) {
                if name.contains("::") {
                    found.insert(name.to_string());
                }
            }
            at = after;
        }
    }
    if include_io_literals {
        let mut at = 0;
        while let Some(pos) = text[at..].find("\"io::") {
            let after = at + pos + 1;
            if let Some(name) = next_literal(text, after.saturating_sub(1), 80) {
                found.insert(name.to_string());
            }
            at = after + 4;
        }
    }
    found
}

#[test]
fn every_workspace_failpoint_site_is_registered() {
    let catalog: BTreeSet<&str> = FAILPOINT_CATALOG.iter().map(|f| f.name).collect();
    let mut found = BTreeSet::new();
    for path in workspace_sources() {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        // the adapter/catalog crate itself names every io:: site in its
        // catalog and self-tests; real adapter call sites live elsewhere
        let in_fault_crate = path.components().any(|c| c.as_os_str() == "fault");
        for name in sites_in(&text, !in_fault_crate) {
            found.insert(name);
        }
    }
    let unregistered: Vec<&String> = found
        .iter()
        .filter(|n| !catalog.contains(n.as_str()))
        .collect();
    assert!(
        unregistered.is_empty(),
        "fail-point sites missing from FAILPOINT_CATALOG (chaos can never \
         enumerate them): {unregistered:?}"
    );
    let stale: Vec<&&str> = catalog
        .iter()
        .filter(|n| !found.contains(**n))
        .collect();
    assert!(
        stale.is_empty(),
        "FAILPOINT_CATALOG entries with no firing site in the workspace \
         (schedules that can never fire): {stale:?}"
    );
}
