//! Property tests: branch-delay matching must preserve streaming
//! semantics for arbitrary mapped applications and PE latencies.

use apex_ir::{Graph, Op};
use apex_map::map_application;
use apex_pe::baseline_pe;
use apex_pipeline::{pipeline_application, AppPipelineOptions};
use apex_rewrite::standard_ruleset;
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = Graph> {
    let spec = prop::collection::vec((0u8..5, any::<u16>(), any::<u16>()), 3..30);
    spec.prop_map(|ops| {
        let mut g = Graph::new("prop_app");
        let mut pool = vec![g.input(), g.input(), g.input()];
        for (sel, x, y) in ops {
            let a = pool[(x as usize) % pool.len()];
            let b = pool[(y as usize) % pool.len()];
            let n = match sel {
                0 => g.add(Op::Add, &[a, b]),
                1 => g.add(Op::Mul, &[a, b]),
                2 => g.add(Op::Sub, &[a, b]),
                3 => g.add(Op::Smax, &[a, b]),
                _ => {
                    let c = g.constant(x);
                    g.add(Op::Mul, &[a, c])
                }
            };
            pool.push(n);
        }
        let last = *pool.last().unwrap();
        g.output(last);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn branch_delay_matching_preserves_streams(
        app in arb_app(),
        lat in 0u32..4,
        cutoff in 0u32..4,
        inputs in prop::collection::vec(any::<u16>(), 3)
    ) {
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app]).unwrap();
        let design = map_application(&app, &pe.datapath, &rules).unwrap();
        let (pipelined, report) = pipeline_application(
            &design.netlist,
            &rules,
            lat,
            &AppPipelineOptions { rf_chain_cutoff: cutoff },
        )
        .unwrap();
        prop_assert!(pipelined.validate(&rules).is_ok());

        // arrival balance: every input edge of every consumer sees the
        // same latency — verified behaviourally: hold inputs, check the
        // output at the reported latency
        let (golden_w, _) = design.netlist.evaluate(&pe.datapath, &rules, &inputs, &[]).unwrap();
        let hold = report.latency as usize + 1;
        let streams: Vec<Vec<u16>> = inputs.iter().map(|&v| vec![v; hold]).collect();
        let (out, _) = pipelined.simulate(&pe.datapath, &rules, &streams, &[], lat).unwrap();
        prop_assert_eq!(out[0][report.latency as usize], golden_w[0]);

        // and as true streams: distinct values per cycle
        let streams2: Vec<Vec<u16>> = inputs
            .iter()
            .enumerate()
            .map(|(k, &v)| (0..5u16).map(|t| v.wrapping_add(t * (k as u16 + 1))).collect())
            .collect();
        let (out2, _) = pipelined.simulate(&pe.datapath, &rules, &streams2, &[], lat).unwrap();
        for t in 0..5 {
            let vec_t: Vec<u16> = streams2.iter().map(|s| s[t]).collect();
            let (gw, _) = design.netlist.evaluate(&pe.datapath, &rules, &vec_t, &[]).unwrap();
            prop_assert_eq!(out2[0][t + report.latency as usize], gw[0], "cycle {}", t);
        }

        // the RF transform respects the cutoff
        for node in &pipelined.nodes {
            if let apex_map::NetKind::Fifo(d) = node.kind {
                prop_assert!(u32::from(d) > cutoff);
            }
        }
    }
}
