//! Automated application pipelining (paper Section 4.3).
//!
//! After mapping, PEs have a cycle latency; branch-delay matching walks
//! the mapped netlist from inputs to outputs tracking data arrival cycles
//! and inserts balance registers on the shorter path of every reconvergent
//! fan-in (Fig. 8). Register chains longer than a cutoff collapse into
//! register files used as FIFOs (Fig. 9), which is dramatically cheaper
//! and more routable than long switch-box register chains.

use crate::PipelineError;
use apex_ir::ValueType;
use apex_map::{NetKind, NetRef, Netlist};
use apex_rewrite::RuleSet;
use std::collections::BTreeMap;

/// Options for application pipelining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppPipelineOptions {
    /// Register chains strictly longer than this collapse into a
    /// register-file FIFO (the paper's default cutoff is 2).
    pub rf_chain_cutoff: u32,
}

impl Default for AppPipelineOptions {
    fn default() -> Self {
        AppPipelineOptions { rf_chain_cutoff: 2 }
    }
}

/// Result of branch-delay matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppPipelineReport {
    /// Pipeline registers inserted (word + bit).
    pub regs_inserted: usize,
    /// Register-file FIFOs inserted.
    pub fifos_inserted: usize,
    /// Total input-to-output latency of the pipelined design, cycles.
    pub latency: u32,
}

/// Pipelines a mapped netlist for PEs of the given latency.
///
/// Returns the new netlist plus a report. The transformation preserves
/// streaming semantics: every output is the original combinational output
/// delayed by `report.latency` cycles.
///
/// # Errors
/// Fails if the input netlist is cyclic or already contains delay
/// elements.
pub fn pipeline_application(
    netlist: &Netlist,
    rules: &RuleSet,
    pe_latency: u32,
    options: &AppPipelineOptions,
) -> Result<(Netlist, AppPipelineReport), PipelineError> {
    apex_fault::fail_point!(
        "pipeline::app",
        PipelineError::Injected("pipeline::app")
    );
    if netlist.reg_count() + netlist.fifo_count() != 0 {
        return Err(PipelineError::AlreadyPipelined);
    }
    let order = netlist
        .topo_order()
        .map_err(|_| PipelineError::Cyclic { what: "netlist" })?;

    // arrival cycle of each node's outputs
    let mut arrival: BTreeMap<u32, u32> = BTreeMap::new();
    for &u in &order {
        let node = &netlist.nodes[u as usize];
        let in_arr = node
            .inputs
            .iter()
            .map(|r| arrival[&r.node])
            .max()
            .unwrap_or(0);
        arrival.insert(u, in_arr + netlist.latency(u, pe_latency));
    }
    // outputs are balanced to the latest arrival
    let out_target = netlist
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.kind, NetKind::WordOutput | NetKind::BitOutput))
        .map(|(i, _)| arrival[&(i as u32)])
        .max()
        .unwrap_or(0);

    // rebuild with delays inserted
    let mut out = Netlist::new(netlist.name.clone());
    let mut new_id: Vec<u32> = vec![0; netlist.nodes.len()];
    let mut regs_inserted = 0usize;
    let mut fifos_inserted = 0usize;
    // shared delay chains: (source ref in new netlist, delay) → ref
    let mut delay_cache: BTreeMap<(NetRef, u32), NetRef> = BTreeMap::new();

    for &u in &order {
        let node = &netlist.nodes[u as usize];
        let my_in_arr = node
            .inputs
            .iter()
            .map(|r| arrival[&r.node])
            .max()
            .unwrap_or(0);
        let target = if matches!(node.kind, NetKind::WordOutput | NetKind::BitOutput) {
            out_target
        } else {
            my_in_arr
        };
        let mut new_inputs = Vec::with_capacity(node.inputs.len());
        for r in &node.inputs {
            let src_new = NetRef {
                node: new_id[r.node as usize],
                port: r.port,
            };
            let need = target - arrival[&r.node];
            let ty = netlist.output_types(r.node, rules)[r.port as usize];
            let delayed = insert_delay(
                &mut out,
                src_new,
                need,
                ty,
                options.rf_chain_cutoff,
                &mut delay_cache,
                &mut regs_inserted,
                &mut fifos_inserted,
            );
            new_inputs.push(delayed);
        }
        new_id[u as usize] = out.push(node.kind.clone(), new_inputs);
    }

    let report = AppPipelineReport {
        regs_inserted,
        fifos_inserted,
        latency: out_target,
    };
    Ok((out, report))
}

#[allow(clippy::too_many_arguments)]
fn insert_delay(
    out: &mut Netlist,
    src: NetRef,
    delay: u32,
    ty: ValueType,
    rf_cutoff: u32,
    cache: &mut BTreeMap<(NetRef, u32), NetRef>,
    regs: &mut usize,
    fifos: &mut usize,
) -> NetRef {
    if delay == 0 {
        return src;
    }
    if let Some(&r) = cache.get(&(src, delay)) {
        return r;
    }
    let r = if ty == ValueType::Word && delay > rf_cutoff {
        // register-file FIFO replaces the whole chain (Fig. 9)
        *fifos += 1;
        let node = out.push(NetKind::Fifo(delay.min(255) as u8), vec![src]);
        NetRef { node, port: 0 }
    } else {
        // extend the longest existing chain by one register
        let prev = insert_delay(out, src, delay - 1, ty, rf_cutoff, cache, regs, fifos);
        *regs += 1;
        let kind = match ty {
            ValueType::Word => NetKind::Reg,
            ValueType::Bit => NetKind::BitReg,
        };
        let node = out.push(kind, vec![prev]);
        NetRef { node, port: 0 }
    };
    cache.insert((src, delay), r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_map::{map_application, NetKind};
    use apex_pe::baseline_pe;
    use apex_rewrite::standard_ruleset;
    use apex_ir::{Graph, Op};

    /// a simple reconvergent graph: out = (a*b)*c + a
    fn reconvergent() -> Graph {
        let mut g = Graph::new("reconv");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let m1 = g.add(Op::Mul, &[a, b]);
        let m2 = g.add(Op::Mul, &[m1, c]);
        let s = g.add(Op::Add, &[m2, a]);
        g.output(s);
        g
    }

    #[test]
    fn balances_reconvergent_paths() {
        let g = reconvergent();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&g]).unwrap();
        let design = map_application(&g, &pe.datapath, &rules).unwrap();
        let (pipelined, report) = pipeline_application(
            &design.netlist,
            &rules,
            2, // 2-cycle PEs
            &AppPipelineOptions::default(),
        )
        .unwrap();
        assert!(pipelined.validate(&rules).is_ok());
        // path a→add skips two 2-cycle PEs: needs 4 cycles of delay;
        // with cutoff 2 that is one FIFO
        assert!(report.regs_inserted + report.fifos_inserted > 0);
        assert_eq!(report.latency, 6, "three PE levels x 2 cycles");
    }

    #[test]
    fn pipelined_netlist_streams_correctly() {
        let g = reconvergent();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&g]).unwrap();
        let design = map_application(&g, &pe.datapath, &rules).unwrap();
        let pe_latency = 1;
        let (pipelined, report) = pipeline_application(
            &design.netlist,
            &rules,
            pe_latency,
            &AppPipelineOptions::default(),
        )
        .unwrap();
        // stream 8 input triples through and compare with per-vector
        // combinational evaluation
        let streams: Vec<Vec<u16>> = vec![
            (1..=8).collect(),
            (11..=18).collect(),
            (21..=28).collect(),
        ];
        let (outs, _) = pipelined
            .simulate(&pe.datapath, &rules, &streams, &[], pe_latency)
            .unwrap();
        for t in 0..8 {
            let (golden, _) = design
                .netlist
                .evaluate(
                    &pe.datapath,
                    &rules,
                    &[streams[0][t], streams[1][t], streams[2][t]],
                    &[],
                )
                .unwrap();
            assert_eq!(
                outs[0][t + report.latency as usize],
                golden[0],
                "cycle {t}"
            );
        }
    }

    #[test]
    fn long_chains_become_fifos() {
        let g = reconvergent();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&g]).unwrap();
        let design = map_application(&g, &pe.datapath, &rules).unwrap();
        let (pipelined, report) = pipeline_application(
            &design.netlist,
            &rules,
            3, // deep PEs → 6-cycle skips
            &AppPipelineOptions::default(),
        )
        .unwrap();
        assert!(report.fifos_inserted >= 1, "{report:?}");
        let max_fifo = pipelined
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                NetKind::Fifo(d) => Some(d),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_fifo, 6);
    }

    #[test]
    fn cutoff_zero_forbids_reg_chains() {
        let g = reconvergent();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&g]).unwrap();
        let design = map_application(&g, &pe.datapath, &rules).unwrap();
        let (_, report) = pipeline_application(
            &design.netlist,
            &rules,
            2,
            &AppPipelineOptions { rf_chain_cutoff: 0 },
        )
        .unwrap();
        assert_eq!(report.regs_inserted, 0, "all word delays become FIFOs");
        assert!(report.fifos_inserted > 0);
    }

    #[test]
    fn zero_latency_pes_insert_nothing() {
        let g = reconvergent();
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&g]).unwrap();
        let design = map_application(&g, &pe.datapath, &rules).unwrap();
        let (pipelined, report) = pipeline_application(
            &design.netlist,
            &rules,
            0,
            &AppPipelineOptions::default(),
        )
        .unwrap();
        assert_eq!(report.regs_inserted + report.fifos_inserted, 0);
        assert_eq!(report.latency, 0);
        assert_eq!(pipelined.nodes.len(), design.netlist.nodes.len());
    }
}
