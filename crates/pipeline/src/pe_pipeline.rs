//! Automated PE pipelining (paper Section 4.2).
//!
//! A static-timing-analysis model over the PE datapath drives an iterative
//! stage-count search: stages are added while they still buy a significant
//! critical-path reduction, and a retiming pass (Calland-style DAG
//! clustering) places the stage boundaries to minimize the worst
//! intra-stage delay.

use crate::PipelineError;
use apex_merge::DpSource;
use apex_pe::{PePipeline, PeSpec};
use apex_tech::TechModel;

/// Options for the stage-count search.
#[derive(Debug, Clone, PartialEq)]
pub struct PePipelineOptions {
    /// Target clock period, ns (defaults to the tech model's).
    pub target_period_ns: Option<f64>,
    /// Stop adding stages when the relative period improvement falls
    /// below this fraction.
    pub min_improvement: f64,
    /// Hard cap on pipeline depth.
    pub max_stages: u32,
}

impl Default for PePipelineOptions {
    fn default() -> Self {
        PePipelineOptions {
            target_period_ns: None,
            min_improvement: 0.05,
            max_stages: 8,
        }
    }
}

/// Assigns pipeline stages so that no intra-stage combinational path
/// exceeds `period`, using longest-path clustering over the union of
/// candidate edges.
///
/// # Errors
/// Fails when the datapath is cyclic.
pub fn stages_for_period(
    spec: &PeSpec,
    tech: &TechModel,
    period: f64,
) -> Result<PePipeline, PipelineError> {
    let dp = &spec.datapath;
    let order = dp
        .topo_order()
        .map_err(|_| PipelineError::Cyclic { what: "datapath" })?;
    let mut stage = vec![0u32; dp.nodes.len()];
    let mut arrival = vec![0.0f64; dp.nodes.len()];
    for &i in &order {
        let node = &dp.nodes[i as usize];
        let own = node
            .ops
            .iter()
            .map(|op| tech.delay(op.kind()))
            .fold(0.0, f64::max)
            + if node.port_candidates.iter().any(|p| p.len() > 1) {
                0.02
            } else {
                0.0
            };
        // the node lands in the lowest stage where every incoming path
        // still fits the period; predecessors that would overflow get a
        // stage boundary (register) in between
        let mut s = 0u32;
        for port in &node.port_candidates {
            for src in port {
                let DpSource::Node(u) = src else { continue };
                let (us, ua) = (stage[*u as usize], arrival[*u as usize]);
                let cs = if ua + own > period { us + 1 } else { us };
                s = s.max(cs);
            }
        }
        // arrival within the chosen stage: same-stage predecessors chain
        // combinationally, lower-stage ones arrive registered (time 0)
        let mut arr = own;
        for port in &node.port_candidates {
            for src in port {
                let DpSource::Node(u) = src else { continue };
                if stage[*u as usize] == s {
                    arr = arr.max(arrival[*u as usize] + own);
                }
            }
        }
        stage[i as usize] = s;
        arrival[i as usize] = arr;
    }
    let stages = stage.iter().copied().max().unwrap_or(0) + 1;
    Ok(PePipeline {
        stage_of_node: stage,
        stages,
    })
}

/// Iteratively explores pipeline depths (the paper's critical-path model):
/// starting from the combinational PE, adds stages while the achieved
/// cycle delay still improves significantly, stopping at the target
/// period or the configured cap. Returns the chosen pipelining, or `None`
/// if the PE already meets timing without registers.
///
/// # Errors
/// Fails when the datapath is cyclic or a fault-injection site is armed.
pub fn pipeline_pe(
    spec: &PeSpec,
    tech: &TechModel,
    options: &PePipelineOptions,
) -> Result<Option<PePipeline>, PipelineError> {
    apex_fault::fail_point!(
        "pipeline::start",
        PipelineError::Injected("pipeline::start")
    );
    let target = options.target_period_ns.unwrap_or(tech.clock_period_ns);
    let flat = spec.cycle_delay(tech);
    if flat <= target {
        return Ok(None);
    }
    let mut best: Option<(PePipeline, f64)> = None;
    // sweep candidate periods from the target upwards; clustering at a
    // period yields the fewest stages meeting it
    let mut period = target;
    for _ in 0..16 {
        let p = stages_for_period(spec, tech, period)?;
        if p.stages > options.max_stages {
            period *= 1.15;
            continue;
        }
        let mut trial = spec.clone();
        trial.pipeline = Some(p.clone());
        let achieved = trial.cycle_delay(tech);
        match &best {
            Some((prev, prev_delay)) => {
                let improvement = (prev_delay - achieved) / prev_delay;
                if achieved < *prev_delay && improvement >= options.min_improvement
                    || p.stages < prev.stages && achieved <= *prev_delay
                {
                    best = Some((p, achieved));
                }
            }
            None => best = Some((p, achieved)),
        }
        if achieved <= target {
            break;
        }
        period *= 1.15;
    }
    Ok(best.map(|(p, _)| p))
}

/// Applies [`pipeline_pe`] in place, returning the achieved cycle delay.
///
/// # Errors
/// Fails when the datapath is cyclic or a fault-injection site is armed.
pub fn auto_pipeline(
    spec: &mut PeSpec,
    tech: &TechModel,
    options: &PePipelineOptions,
) -> Result<f64, PipelineError> {
    if let Some(p) = pipeline_pe(spec, tech, options)? {
        spec.pipeline = Some(p);
    }
    Ok(spec.cycle_delay(tech))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{Graph, Op};
    use apex_merge::MergedDatapath;

    fn chain_spec(muls: usize) -> PeSpec {
        // a mul chain: long critical path that needs pipelining
        let mut g = Graph::new("chain");
        let mut x = g.input();
        for _ in 0..muls {
            let w = g.input();
            x = g.add(Op::Mul, &[x, w]);
        }
        g.output(x);
        PeSpec::new("chain", MergedDatapath::from_graph(&g), false)
    }

    #[test]
    fn stage_assignment_respects_period() {
        let tech = TechModel::default();
        let spec = chain_spec(4);
        let p = stages_for_period(&spec, &tech, 1.1).unwrap();
        let mut staged = spec.clone();
        staged.pipeline = Some(p.clone());
        assert!(staged.cycle_delay(&tech) <= 1.1 + 1e-9);
        // 4 muls at 0.92ns: one per stage
        assert_eq!(p.stages, 4);
    }

    #[test]
    fn stage_assignment_is_monotone_along_edges() {
        let tech = TechModel::default();
        let spec = chain_spec(5);
        let p = stages_for_period(&spec, &tech, 1.1).unwrap();
        for (v, node) in spec.datapath.nodes.iter().enumerate() {
            for port in &node.port_candidates {
                for src in port {
                    if let DpSource::Node(u) = src {
                        assert!(
                            p.stage_of_node[*u as usize] <= p.stage_of_node[v],
                            "stages must not decrease along edges"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fast_pe_needs_no_pipelining() {
        let tech = TechModel::default();
        let mut g = Graph::new("adder");
        let a = g.input();
        let b = g.input();
        let s = g.add(Op::Add, &[a, b]);
        g.output(s);
        let spec = PeSpec::new("adder", MergedDatapath::from_graph(&g), false);
        assert!(pipeline_pe(&spec, &tech, &PePipelineOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn auto_pipeline_meets_target_clock() {
        let tech = TechModel::default();
        let mut spec = chain_spec(3);
        let before = spec.cycle_delay(&tech);
        assert!(before > tech.clock_period_ns);
        let after = auto_pipeline(&mut spec, &tech, &PePipelineOptions::default()).unwrap();
        assert!(after <= tech.clock_period_ns + 1e-9, "{after}");
        assert!(spec.latency() >= 1);
    }

    #[test]
    fn deeper_pipelines_cost_registers() {
        let tech = TechModel::default();
        let spec = chain_spec(4);
        let shallow = stages_for_period(&spec, &tech, 2.0).unwrap();
        let deep = stages_for_period(&spec, &tech, 1.0).unwrap();
        assert!(deep.stages > shallow.stages);
        assert!(
            spec.pipeline_register_count(&deep) > spec.pipeline_register_count(&shallow)
        );
    }
}
