//! # apex-pipeline — automated PE and application pipelining
//!
//! Sections 4.2 and 4.3 of the APEX paper:
//!
//! * [`pipeline_pe`] / [`auto_pipeline`] — static-timing-analysis driven
//!   stage-count exploration plus DAG retiming, breaking long PE
//!   datapaths so they meet the ~1 GHz target clock;
//! * [`pipeline_application`] — branch-delay matching over the mapped
//!   netlist, inserting balance registers on reconvergent fan-ins and
//!   collapsing register chains longer than a cutoff into register-file
//!   FIFOs (Fig. 8 and Fig. 9).
//!
//! # Examples
//!
//! ```
//! use apex_ir::{Graph, Op};
//! use apex_merge::MergedDatapath;
//! use apex_pe::PeSpec;
//! use apex_pipeline::{auto_pipeline, PePipelineOptions};
//! use apex_tech::TechModel;
//!
//! // a merged mul→add datapath exceeds the 1.1 ns clock...
//! let mut g = Graph::new("mac");
//! let (a, b, c) = (g.input(), g.input(), g.input());
//! let m = g.add(Op::Mul, &[a, b]);
//! let s = g.add(Op::Add, &[m, c]);
//! g.output(s);
//! let mut spec = PeSpec::new("mac", MergedDatapath::from_graph(&g), false);
//!
//! let tech = TechModel::default();
//! assert!(spec.cycle_delay(&tech) > tech.clock_period_ns);
//! // ...until the automated pipeliner splits it
//! let achieved = auto_pipeline(&mut spec, &tech, &PePipelineOptions::default()).unwrap();
//! assert!(achieved <= tech.clock_period_ns);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use apex_fault::{ApexError, Stage};
use std::fmt;

mod app_pipeline;
mod pe_pipeline;

pub use app_pipeline::{pipeline_application, AppPipelineOptions, AppPipelineReport};
pub use pe_pipeline::{auto_pipeline, pipeline_pe, stages_for_period, PePipelineOptions};

/// Errors raised by the pipelining stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The netlist already contains registers or FIFOs.
    AlreadyPipelined,
    /// The datapath or netlist is cyclic and cannot be staged.
    Cyclic {
        /// What was cyclic ("datapath" / "netlist").
        what: &'static str,
    },
    /// A deterministic fault-injection site fired (tests only).
    Injected(&'static str),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::AlreadyPipelined => {
                write!(f, "netlist already contains delay elements")
            }
            PipelineError::Cyclic { what } => write!(f, "{what} is cyclic"),
            PipelineError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<PipelineError> for ApexError {
    fn from(e: PipelineError) -> Self {
        ApexError::with_source(Stage::Pipeline, e)
    }
}
