//! # apex-tech — technology model
//!
//! The APEX paper weighs datapath mergings, sizes PEs, and reports
//! area/energy/performance using synthesis results from a commercial
//! 16 nm-class flow (Design Compiler) that we do not have. This crate is
//! the documented substitute (DESIGN.md §3): a table of per-primitive
//! area (µm²), energy (pJ/op), and delay (ns) constants, plus interconnect
//! and memory-tile models and the analytic comparator constants used for
//! the FPGA / ASIC / Simba comparisons of Figures 17–18.
//!
//! Absolute values are calibrated so the Fig. 1 baseline PE core lands
//! near the paper's 988.81 µm² (Table 2) with plausible relative op costs;
//! every downstream result only depends on *relative* costs.
//!
//! # Examples
//!
//! ```
//! use apex_tech::TechModel;
//! use apex_ir::OpKind;
//!
//! let tech = TechModel::default();
//! assert!(tech.area(OpKind::Mul) > tech.area(OpKind::Add));
//! assert!(tech.delay(OpKind::Mul) > tech.delay(OpKind::And));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use apex_ir::OpKind;
use serde::{Deserialize, Serialize};

/// Hardware resource class implementing an operation inside a PE.
///
/// Operations in the same class can share one functional unit: an ALU-style
/// PE implements `add` and `sub` with a single adder plus negligible decode
/// logic. The datapath merger exploits exactly this (two nodes "can both be
/// implemented on the same hardware block", Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuClass {
    /// Add/subtract unit (also absolute value via conditional negate).
    AddSub,
    /// 16×16 multiplier.
    Multiplier,
    /// Barrel shifter (all shift flavours).
    Shifter,
    /// Word-wide bitwise logic.
    Logic,
    /// Comparator (also drives min/max select).
    Comparator,
    /// Word multiplexer.
    WordMux,
    /// Constant register (16-bit, configuration-time loaded).
    ConstReg,
    /// Pipeline register (16-bit).
    PipeReg,
    /// Register file word (used for FIFO pipelining).
    RegFile,
    /// Single-bit logic (LUT, bit gates, bit mux, bit regs/consts).
    BitLogic,
    /// Structural: primary I/O, no silicon cost inside the PE core.
    Structural,
}

impl FuClass {
    /// Whether two operations of this class placed on one shared unit are
    /// distinguished purely by configuration (no second unit needed).
    pub fn shareable(self) -> bool {
        !matches!(self, FuClass::Structural)
    }
}

/// Classifies an operation kind into its functional-unit class.
pub fn fu_class(kind: OpKind) -> FuClass {
    match kind {
        OpKind::Add | OpKind::Sub | OpKind::Abs => FuClass::AddSub,
        OpKind::Mul => FuClass::Multiplier,
        OpKind::Shl | OpKind::Lshr | OpKind::Ashr => FuClass::Shifter,
        OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Not => FuClass::Logic,
        OpKind::Smin
        | OpKind::Smax
        | OpKind::Umin
        | OpKind::Umax
        | OpKind::Eq
        | OpKind::Neq
        | OpKind::Slt
        | OpKind::Sle
        | OpKind::Sgt
        | OpKind::Sge
        | OpKind::Ult
        | OpKind::Ule
        | OpKind::Ugt
        | OpKind::Uge => FuClass::Comparator,
        OpKind::Mux => FuClass::WordMux,
        OpKind::Const => FuClass::ConstReg,
        OpKind::Reg => FuClass::PipeReg,
        OpKind::Fifo => FuClass::RegFile,
        OpKind::Lut
        | OpKind::BitAnd
        | OpKind::BitOr
        | OpKind::BitXor
        | OpKind::BitNot
        | OpKind::BitMux
        | OpKind::BitConst
        | OpKind::BitReg => FuClass::BitLogic,
        OpKind::Input | OpKind::BitInput | OpKind::Output | OpKind::BitOutput => {
            FuClass::Structural
        }
    }
}

/// Interconnect, memory, and tile-level constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricCosts {
    /// Switch-box area per tile (5 in + 5 out 16-bit tracks per side), µm².
    pub sb_area: f64,
    /// Energy per word transiting one switch box, pJ.
    pub sb_energy_per_hop: f64,
    /// Switch-box leakage/clock energy per tile per cycle, pJ.
    pub sb_idle_energy: f64,
    /// Connection-box area per 16-bit PE input, µm².
    pub cb_word_area: f64,
    /// Connection-box area per 1-bit PE input, µm².
    pub cb_bit_area: f64,
    /// Energy per word delivered through a connection box, pJ.
    pub cb_energy: f64,
    /// Memory tile area (two 2 KB SRAM banks + address generators), µm².
    pub mem_tile_area: f64,
    /// Energy per memory access (read or write of one word), pJ.
    pub mem_access_energy: f64,
    /// Area of an I/O tile, µm².
    pub io_tile_area: f64,
    /// Area of one pipelining register in a switch-box track, µm².
    pub sb_reg_area: f64,
    /// Energy per value captured by a switch-box pipeline register, pJ.
    pub sb_reg_energy: f64,
    /// PE-core idle/clock-tree energy per active cycle, pJ.
    pub pe_idle_energy: f64,
    /// Configuration storage area per configuration bit, µm².
    pub config_bit_area: f64,
}

/// Analytic comparator constants for Figures 17 and 18.
///
/// The FPGA (Virtex Ultrascale+), HLS ASIC, and Simba numbers in the paper
/// come from physical implementations we cannot re-run; we model them as
/// scalings of the ASIC datapath cost, chosen to sit inside the ranges the
/// paper itself reports (DESIGN.md §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparatorModel {
    /// FPGA energy per primitive op relative to ASIC.
    pub fpga_energy_factor: f64,
    /// FPGA clock period relative to the CGRA's (runtime scaling).
    pub fpga_runtime_factor: f64,
    /// ASIC energy overhead (wiring/control) multiplier over raw op energy.
    pub asic_overhead_factor: f64,
    /// Simba energy per 16-bit MAC, pJ.
    pub simba_mac_energy: f64,
    /// Simba area per processing element (one 8×8 vector MAC slice), µm².
    pub simba_pe_area: f64,
    /// Simba effective MACs per cycle per PE.
    pub simba_macs_per_cycle: f64,
}

/// The full technology model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechModel {
    /// Name of the modelled process corner.
    pub process: String,
    /// Clock period used for all CGRA evaluation, ns (paper: 1.1 ns).
    pub clock_period_ns: f64,
    /// Fabric/interconnect constants.
    pub fabric: FabricCosts,
    /// Comparator constants.
    pub comparators: ComparatorModel,
}

impl Default for TechModel {
    fn default() -> Self {
        TechModel {
            process: "generic-16nm-class".to_owned(),
            clock_period_ns: 1.1,
            fabric: FabricCosts {
                sb_area: 1450.0,
                sb_energy_per_hop: 0.32,
                sb_idle_energy: 0.018,
                cb_word_area: 230.0,
                cb_bit_area: 36.0,
                cb_energy: 0.11,
                mem_tile_area: 18500.0,
                mem_access_energy: 2.4,
                io_tile_area: 420.0,
                sb_reg_area: 14.0,
                sb_reg_energy: 0.05,
                pe_idle_energy: 0.035,
                config_bit_area: 1.0,
            },
            comparators: ComparatorModel {
                fpga_energy_factor: 290.0,
                fpga_runtime_factor: 3.4,
                asic_overhead_factor: 1.35,
                simba_mac_energy: 0.24,
                simba_pe_area: 9200.0,
                simba_macs_per_cycle: 64.0,
            },
        }
    }
}

impl TechModel {
    /// Standalone functional-unit area for one operation, µm².
    ///
    /// This is the "synthesize the primitive nodes used in the subgraphs
    /// and determine their area" table the merging weights come from
    /// (Section 3.3).
    pub fn area(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::Mul => 120.0,
            OpKind::Add | OpKind::Sub => 24.0,
            OpKind::Abs => 26.0,
            OpKind::Shl | OpKind::Lshr | OpKind::Ashr => 36.0,
            OpKind::And | OpKind::Or | OpKind::Xor => 6.5,
            OpKind::Not => 3.2,
            OpKind::Smin | OpKind::Smax | OpKind::Umin | OpKind::Umax => 28.0,
            OpKind::Eq
            | OpKind::Neq
            | OpKind::Slt
            | OpKind::Sle
            | OpKind::Sgt
            | OpKind::Sge
            | OpKind::Ult
            | OpKind::Ule
            | OpKind::Ugt
            | OpKind::Uge => 18.0,
            OpKind::Mux => 10.0,
            OpKind::Const => 14.0,
            OpKind::Reg => 12.0,
            OpKind::Fifo => 12.0, // per stage; callers multiply by depth
            OpKind::Lut => 4.0,
            OpKind::BitAnd | OpKind::BitOr | OpKind::BitXor => 0.8,
            OpKind::BitNot => 0.4,
            OpKind::BitMux => 1.0,
            OpKind::BitConst | OpKind::BitReg => 1.6,
            OpKind::Input | OpKind::BitInput | OpKind::Output | OpKind::BitOutput => 0.0,
        }
    }

    /// Dynamic energy for one execution of the operation, pJ.
    pub fn energy(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::Mul => 1.05,
            OpKind::Add | OpKind::Sub => 0.115,
            OpKind::Abs => 0.125,
            OpKind::Shl | OpKind::Lshr | OpKind::Ashr => 0.145,
            OpKind::And | OpKind::Or | OpKind::Xor => 0.030,
            OpKind::Not => 0.015,
            OpKind::Smin | OpKind::Smax | OpKind::Umin | OpKind::Umax => 0.135,
            OpKind::Eq
            | OpKind::Neq
            | OpKind::Slt
            | OpKind::Sle
            | OpKind::Sgt
            | OpKind::Sge
            | OpKind::Ult
            | OpKind::Ule
            | OpKind::Ugt
            | OpKind::Uge => 0.085,
            OpKind::Mux => 0.022,
            OpKind::Const => 0.004,
            OpKind::Reg | OpKind::Fifo => 0.045,
            OpKind::Lut => 0.006,
            OpKind::BitAnd | OpKind::BitOr | OpKind::BitXor | OpKind::BitNot => 0.002,
            OpKind::BitMux => 0.003,
            OpKind::BitConst | OpKind::BitReg => 0.003,
            OpKind::Input | OpKind::BitInput | OpKind::Output | OpKind::BitOutput => 0.0,
        }
    }

    /// Propagation delay through the operation, ns.
    pub fn delay(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::Mul => 0.92,
            OpKind::Add | OpKind::Sub => 0.34,
            OpKind::Abs => 0.38,
            OpKind::Shl | OpKind::Lshr | OpKind::Ashr => 0.29,
            OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Not => 0.07,
            OpKind::Smin | OpKind::Smax | OpKind::Umin | OpKind::Umax => 0.37,
            OpKind::Eq
            | OpKind::Neq
            | OpKind::Slt
            | OpKind::Sle
            | OpKind::Sgt
            | OpKind::Sge
            | OpKind::Ult
            | OpKind::Ule
            | OpKind::Ugt
            | OpKind::Uge => 0.31,
            OpKind::Mux => 0.06,
            OpKind::Const => 0.02,
            OpKind::Reg | OpKind::Fifo => 0.06, // clk-to-q + setup
            OpKind::Lut => 0.05,
            OpKind::BitAnd | OpKind::BitOr | OpKind::BitXor | OpKind::BitNot => 0.03,
            OpKind::BitMux => 0.04,
            OpKind::BitConst | OpKind::BitReg => 0.02,
            OpKind::Input | OpKind::BitInput | OpKind::Output | OpKind::BitOutput => 0.0,
        }
    }

    /// Area saved by merging two nodes of the given kinds onto one
    /// functional unit (the merge weight `w` of Fig. 5d): the smaller
    /// standalone area, since one of the two units disappears.
    ///
    /// Returns 0.0 for kinds in different [`FuClass`]es.
    pub fn merge_saving(&self, a: OpKind, b: OpKind) -> f64 {
        if fu_class(a) == fu_class(b) && fu_class(a).shareable() {
            self.area(a).min(self.area(b))
        } else {
            0.0
        }
    }

    /// Per-op decode/configuration area increment when a shared unit gains
    /// one more selectable operation, µm².
    pub fn decode_area_per_op(&self) -> f64 {
        9.5
    }

    /// Area of one additional configuration-mux leg on a datapath port,
    /// µm². Reusing an existing connection during datapath merging saves
    /// exactly this (the edge-merge weight of Fig. 5d).
    pub fn mux_leg_area(&self, ty: apex_ir::ValueType) -> f64 {
        match ty {
            apex_ir::ValueType::Word => 8.0,
            apex_ir::ValueType::Bit => 0.7,
        }
    }

    /// Fixed control overhead of the hand-designed general-purpose
    /// baseline PE (instruction decode, flag/predicate logic, debug and
    /// clock-gating control). APEX-generated PEs replace all of this with
    /// plain configuration registers and carry no such overhead — the main
    /// reason the paper's "PE 1" (baseline ops only, APEX-generated) is
    /// ~3x smaller than the baseline PE at similar functionality.
    pub fn baseline_control_overhead(&self) -> f64 {
        310.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::ALL_OP_KINDS;

    #[test]
    fn every_kind_has_costs() {
        let t = TechModel::default();
        for &k in ALL_OP_KINDS {
            assert!(t.area(k) >= 0.0, "{k:?} area");
            assert!(t.energy(k) >= 0.0, "{k:?} energy");
            assert!(t.delay(k) >= 0.0, "{k:?} delay");
        }
    }

    #[test]
    fn multiplier_dominates_datapath_costs() {
        let t = TechModel::default();
        for &k in ALL_OP_KINDS {
            if k != OpKind::Mul {
                assert!(t.area(OpKind::Mul) >= t.area(k), "{k:?}");
                assert!(t.energy(OpKind::Mul) >= t.energy(k), "{k:?}");
                assert!(t.delay(OpKind::Mul) >= t.delay(k), "{k:?}");
            }
        }
    }

    #[test]
    fn merge_saving_requires_shared_class() {
        let t = TechModel::default();
        assert!(t.merge_saving(OpKind::Add, OpKind::Sub) > 0.0);
        assert!(t.merge_saving(OpKind::Add, OpKind::Add) > 0.0);
        assert_eq!(t.merge_saving(OpKind::Add, OpKind::Mul), 0.0);
        assert_eq!(t.merge_saving(OpKind::Input, OpKind::Input), 0.0);
    }

    #[test]
    fn mul_add_chain_exceeds_target_clock() {
        // The automated PE pipeliner must have work to do on merged
        // mul→add datapaths, exactly as in the paper (Section 4.2).
        let t = TechModel::default();
        assert!(t.delay(OpKind::Mul) + t.delay(OpKind::Add) > t.clock_period_ns);
    }

    #[test]
    fn structural_kinds_are_free() {
        let t = TechModel::default();
        for k in [OpKind::Input, OpKind::Output, OpKind::BitInput, OpKind::BitOutput] {
            assert_eq!(t.area(k), 0.0);
            assert_eq!(t.energy(k), 0.0);
            assert!(!fu_class(k).shareable());
        }
    }

    #[test]
    fn fu_classes_group_alu_ops() {
        assert_eq!(fu_class(OpKind::Add), fu_class(OpKind::Sub));
        assert_eq!(fu_class(OpKind::Smin), fu_class(OpKind::Ugt));
        assert_ne!(fu_class(OpKind::Add), fu_class(OpKind::Mul));
    }
}
