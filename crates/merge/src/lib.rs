//! # apex-merge — datapath graph merging
//!
//! Stage 2 of the APEX flow (paper Section 3.3): merging several frequent
//! subgraphs into a single PE datapath that can be *configured* to
//! implement each of them, with minimal area, using the high-level-
//! synthesis datapath-merging formulation of Moreano et al.:
//!
//! * merge opportunities between nodes/edges of the subgraphs (Fig. 5c),
//! * a compatibility graph weighted by saved area (Fig. 5d),
//! * a maximum-weight clique (exact branch-and-bound, greedy-seeded), and
//! * reconstruction with configuration muxes (Fig. 5e).
//!
//! The output type, [`MergedDatapath`], is the PE's architectural
//! description: `apex-pe` turns it into a PE specification (area, energy,
//! timing, Verilog) and `apex-rewrite` synthesizes mapper rewrite rules
//! from its configuration space.
//!
//! # Examples
//!
//! ```
//! use apex_ir::{Graph, Op};
//! use apex_merge::{merge_all, MergeOptions};
//! use apex_tech::TechModel;
//!
//! // two subgraphs: (a*b)+c and (a+b)-c
//! let mut g1 = Graph::new("mac");
//! let (a, b, c) = (g1.input(), g1.input(), g1.input());
//! let m = g1.add(Op::Mul, &[a, b]);
//! let s = g1.add(Op::Add, &[m, c]);
//! g1.output(s);
//!
//! let mut g2 = Graph::new("addsub");
//! let (a, b, c) = (g2.input(), g2.input(), g2.input());
//! let s = g2.add(Op::Add, &[a, b]);
//! let d = g2.add(Op::Sub, &[s, c]);
//! g2.output(d);
//!
//! let tech = TechModel::default();
//! let (pe, _) = merge_all(&[g1, g2], &tech, &MergeOptions::default()).unwrap();
//! assert_eq!(pe.configs.len(), 2);
//! // the two adders share one unit, so the PE has 3 nodes (mul, add, add/sub)
//! assert!(pe.node_count() <= 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clique;
mod datapath;
mod merge;

pub use clique::{max_weight_clique, CliqueProblem, CliqueSolution};
pub use datapath::{
    DatapathConfig, DatapathError, DpNode, DpSource, MergedDatapath, NodeConfig,
};
pub use merge::{merge_all, merge_graph, MergeError, MergeOptions, MergeReport};
