//! The merged-datapath structure: a PE datapath that can be configured to
//! implement each of the subgraphs merged into it (Fig. 5e of the paper).
//!
//! A [`MergedDatapath`] is a DAG of functional-unit nodes. Each node can
//! perform one of several operations (op select), and each input port of a
//! node chooses among several candidate sources (a configuration mux).
//! Each merged source subgraph is remembered as a [`DatapathConfig`]: the
//! exact op and mux selections that make the datapath compute that
//! subgraph.

use apex_ir::{Graph, NodeId, Op, Value, ValueType};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A value source inside the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DpSource {
    /// External word input port of the PE.
    WordInput(u16),
    /// External bit input port of the PE.
    BitInput(u16),
    /// Output of another datapath node.
    Node(u32),
}

/// One functional unit of the datapath.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpNode {
    /// Operations this unit can be configured to perform (distinct; all
    /// share the node's output type; arities may differ, smaller-arity
    /// ops use the leading ports).
    pub ops: Vec<Op>,
    /// Candidate sources per input port (a port with more than one
    /// candidate costs a configuration mux).
    pub port_candidates: Vec<Vec<DpSource>>,
}

impl DpNode {
    /// Creates a single-op node with the given port sources.
    pub fn new(op: Op, sources: Vec<Vec<DpSource>>) -> Self {
        DpNode {
            ops: vec![op],
            port_candidates: sources,
        }
    }

    /// The node's output type (uniform across its ops).
    pub fn output_type(&self) -> ValueType {
        self.ops[0].output_type()
    }

    /// Number of input ports (max arity over ops).
    pub fn arity(&self) -> usize {
        self.port_candidates.len()
    }

    /// Whether any op of the node is sensitive to operand order.
    pub fn non_commutative(&self) -> bool {
        self.ops.iter().any(|op| op.arity() >= 2 && !op.commutative())
    }
}

/// Per-node configuration: which op to perform and which candidate source
/// each port selects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// The operation performed (must be one of the node's ops; constants
    /// may carry a different payload — the constant register is loaded
    /// per configuration).
    pub op: Op,
    /// Selected candidate index per used port.
    pub port_sel: Vec<u32>,
}

/// A full datapath configuration implementing one source subgraph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatapathConfig {
    /// Name of the subgraph this configuration implements.
    pub name: String,
    /// Per datapath node: `None` = inactive (clock/operand gated).
    pub node_cfg: Vec<Option<NodeConfig>>,
    /// Driving source per used word output.
    pub word_out_sel: Vec<DpSource>,
    /// Driving source per used bit output.
    pub bit_out_sel: Vec<DpSource>,
    /// Source-subgraph word input `i` arrives on PE word port
    /// `word_input_map[i]` (merging permutes input assignments to share
    /// connection-box wiring).
    pub word_input_map: Vec<u16>,
    /// Source-subgraph bit input `i` arrives on PE bit port
    /// `bit_input_map[i]`.
    pub bit_input_map: Vec<u16>,
    /// Source-subgraph compute node (by raw `NodeId` value) → datapath
    /// node index. Lets downstream stages (rewrite-rule synthesis) bind
    /// pattern constants to the right constant registers.
    pub node_map: Vec<(u32, u32)>,
}

/// Errors from datapath validation or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatapathError {
    /// The union of candidate edges contains a combinational cycle.
    Cyclic,
    /// A port selection index is out of range.
    BadPortSelection {
        /// Node index.
        node: u32,
        /// Port index.
        port: usize,
    },
    /// A configuration references an inactive node.
    InactiveSource {
        /// The inactive node index.
        node: u32,
    },
    /// A config op is not available on the node.
    UnsupportedOp {
        /// Node index.
        node: u32,
    },
    /// A source's type does not match where it is used.
    TypeMismatch,
}

impl fmt::Display for DatapathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatapathError::Cyclic => write!(f, "datapath candidate edges form a cycle"),
            DatapathError::BadPortSelection { node, port } => {
                write!(f, "node {node} port {port}: selection out of range")
            }
            DatapathError::InactiveSource { node } => {
                write!(f, "configuration reads inactive node {node}")
            }
            DatapathError::UnsupportedOp { node } => {
                write!(f, "configuration selects unsupported op on node {node}")
            }
            DatapathError::TypeMismatch => write!(f, "source/port type mismatch"),
        }
    }
}

impl std::error::Error for DatapathError {}

/// A PE datapath merged from one or more subgraphs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedDatapath {
    /// Human-readable name.
    pub name: String,
    /// Functional units in a topological order of the candidate-edge DAG.
    pub nodes: Vec<DpNode>,
    /// External 16-bit input ports.
    pub word_inputs: usize,
    /// External 1-bit input ports.
    pub bit_inputs: usize,
    /// External 16-bit output ports.
    pub word_outputs: usize,
    /// External 1-bit output ports.
    pub bit_outputs: usize,
    /// One configuration per merged source subgraph.
    pub configs: Vec<DatapathConfig>,
}

impl MergedDatapath {
    /// Imports a standalone datapath graph (e.g. a mined subgraph
    /// materialized by `apex-mining`) as a single-config datapath.
    ///
    /// # Panics
    /// Panics if the graph contains registers/FIFOs (mined subgraphs are
    /// purely combinational).
    pub fn from_graph(graph: &Graph) -> Self {
        let mut word_in = 0u16;
        let mut bit_in = 0u16;
        let mut node_map: Vec<(u32, u32)> = Vec::new();
        let mut src_of: BTreeMap<NodeId, DpSource> = BTreeMap::new();
        let mut nodes: Vec<DpNode> = Vec::new();
        let mut node_cfg: Vec<Option<NodeConfig>> = Vec::new();
        for (id, node) in graph.iter() {
            match node.op() {
                Op::Input => {
                    src_of.insert(id, DpSource::WordInput(word_in));
                    word_in += 1;
                }
                Op::BitInput => {
                    src_of.insert(id, DpSource::BitInput(bit_in));
                    bit_in += 1;
                }
                Op::Output | Op::BitOutput => {}
                Op::Reg | Op::BitReg | Op::Fifo(_) => {
                    // invariant: merging runs before pipelining; merge_graph
                    // rejects register-bearing graphs with
                    // MergeError::Registers before reaching this point
                    panic!("registers are not allowed in merged datapaths")
                }
                op => {
                    let sources: Vec<Vec<DpSource>> = node
                        .inputs()
                        .iter()
                        .map(|s| vec![src_of[s]])
                        .collect();
                    let idx = nodes.len() as u32;
                    node_map.push((id.0, idx));
                    nodes.push(DpNode::new(op, sources));
                    node_cfg.push(Some(NodeConfig {
                        op,
                        port_sel: vec![0; node.inputs().len()],
                    }));
                    src_of.insert(id, DpSource::Node(idx));
                }
            }
        }
        let mut word_out_sel = Vec::new();
        let mut bit_out_sel = Vec::new();
        for po in graph.primary_outputs() {
            let feed = graph.node(po).inputs()[0];
            match graph.op(po) {
                Op::Output => word_out_sel.push(src_of[&feed]),
                Op::BitOutput => bit_out_sel.push(src_of[&feed]),
                _ => unreachable!(),
            }
        }
        MergedDatapath {
            name: graph.name().to_owned(),
            nodes,
            word_inputs: word_in as usize,
            bit_inputs: bit_in as usize,
            word_outputs: word_out_sel.len(),
            bit_outputs: bit_out_sel.len(),
            configs: vec![DatapathConfig {
                name: graph.name().to_owned(),
                node_cfg,
                word_out_sel,
                bit_out_sel,
                word_input_map: (0..word_in).collect(),
                bit_input_map: (0..bit_in).collect(),
                node_map,
            }],
        }
    }

    /// A topological order over the union of candidate edges.
    ///
    /// # Errors
    /// Returns [`DatapathError::Cyclic`] if the candidate edges contain a
    /// cycle (merging must prevent this).
    pub fn topo_order(&self) -> Result<Vec<u32>, DatapathError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for port in &node.port_candidates {
                for src in port {
                    if let DpSource::Node(j) = src {
                        succ[*j as usize].push(i as u32);
                        indeg[i] += 1;
                    }
                }
            }
        }
        let mut ready: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = ready.pop() {
            order.push(u);
            for &v in &succ[u as usize] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    ready.push(v);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(DatapathError::Cyclic)
        }
    }

    /// Validates structure and all stored configurations.
    ///
    /// # Errors
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), DatapathError> {
        self.topo_order()?;
        for node in &self.nodes {
            for op in &node.ops {
                if op.output_type() != node.output_type() {
                    return Err(DatapathError::TypeMismatch);
                }
                if op.arity() > node.arity() {
                    return Err(DatapathError::TypeMismatch);
                }
            }
            for (p, cands) in node.port_candidates.iter().enumerate() {
                // all candidates of one port must share a type; the type
                // is dictated by the widest op that uses the port
                for c in cands {
                    let ty = self.source_type(*c);
                    for op in &node.ops {
                        if p < op.arity() && op.input_types()[p] != ty {
                            return Err(DatapathError::TypeMismatch);
                        }
                    }
                }
            }
        }
        for cfg in &self.configs {
            self.validate_config(cfg)?;
        }
        Ok(())
    }

    /// Validates one configuration (op availability, selection ranges,
    /// active-source discipline).
    ///
    /// # Errors
    /// Returns the first inconsistency found.
    pub fn validate_config(&self, cfg: &DatapathConfig) -> Result<(), DatapathError> {
        if cfg.node_cfg.len() != self.nodes.len() {
            return Err(DatapathError::TypeMismatch);
        }
        let active = |src: &DpSource| -> Result<(), DatapathError> {
            if let DpSource::Node(j) = src {
                // sources may come from decoded (possibly corrupted)
                // bitstreams — bounds-check before indexing
                match cfg.node_cfg.get(*j as usize) {
                    None => return Err(DatapathError::TypeMismatch),
                    Some(None) => return Err(DatapathError::InactiveSource { node: *j }),
                    Some(Some(_)) => {}
                }
            }
            Ok(())
        };
        for (i, nc) in cfg.node_cfg.iter().enumerate() {
            let Some(nc) = nc else { continue };
            let node = &self.nodes[i];
            let supported = node.ops.iter().any(|op| match (op, &nc.op) {
                // constant registers are reloaded per config
                (Op::Const(_), Op::Const(_)) => true,
                (Op::BitConst(_), Op::BitConst(_)) => true,
                (Op::Lut(_), Op::Lut(_)) => true,
                (a, b) => a == b,
            });
            if !supported {
                return Err(DatapathError::UnsupportedOp { node: i as u32 });
            }
            if nc.port_sel.len() != nc.op.arity() {
                return Err(DatapathError::BadPortSelection { node: i as u32, port: 0 });
            }
            for (p, &sel) in nc.port_sel.iter().enumerate() {
                let cands = &node.port_candidates[p];
                let Some(src) = cands.get(sel as usize) else {
                    return Err(DatapathError::BadPortSelection {
                        node: i as u32,
                        port: p,
                    });
                };
                active(src)?;
            }
        }
        for src in cfg.word_out_sel.iter().chain(&cfg.bit_out_sel) {
            active(src)?;
        }
        for src in &cfg.word_out_sel {
            if self.try_source_type(*src) != Some(ValueType::Word) {
                return Err(DatapathError::TypeMismatch);
            }
        }
        for src in &cfg.bit_out_sel {
            if self.try_source_type(*src) != Some(ValueType::Bit) {
                return Err(DatapathError::TypeMismatch);
            }
        }
        Ok(())
    }

    /// The value type a source produces.
    ///
    /// # Panics
    /// Panics if a node source is out of range (see
    /// [`MergedDatapath::try_source_type`] for a checked variant).
    #[allow(clippy::expect_used)]
    pub fn source_type(&self, src: DpSource) -> ValueType {
        // invariant: documented panic; untrusted sources (decoded
        // bitstreams) must go through try_source_type instead
        self.try_source_type(src).expect("source in range")
    }

    /// The value type a source produces, or `None` for an out-of-range
    /// node reference (possible when inspecting decoded bitstreams).
    pub fn try_source_type(&self, src: DpSource) -> Option<ValueType> {
        match src {
            DpSource::WordInput(_) => Some(ValueType::Word),
            DpSource::BitInput(_) => Some(ValueType::Bit),
            DpSource::Node(j) => self.nodes.get(j as usize).map(DpNode::output_type),
        }
    }

    /// Evaluates the datapath under a configuration.
    ///
    /// Unused inputs may be bound to anything; inactive nodes produce no
    /// values.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    ///
    /// # Panics
    /// Panics if the input slices are shorter than the declared port
    /// counts.
    // invariant: the `expect` in `read` — validate_config guarantees every
    // selected source is an active node evaluated earlier in topo order
    #[allow(clippy::expect_used)]
    pub fn evaluate(
        &self,
        cfg: &DatapathConfig,
        word_inputs: &[u16],
        bit_inputs: &[bool],
    ) -> Result<(Vec<u16>, Vec<bool>), DatapathError> {
        self.validate_config(cfg)?;
        assert!(word_inputs.len() >= self.word_inputs, "word input count");
        assert!(bit_inputs.len() >= self.bit_inputs, "bit input count");
        let order = self.topo_order()?;
        let mut values: Vec<Option<Value>> = vec![None; self.nodes.len()];
        let read = |src: DpSource, values: &[Option<Value>]| -> Value {
            match src {
                DpSource::WordInput(k) => Value::Word(word_inputs[k as usize]),
                DpSource::BitInput(k) => Value::Bit(bit_inputs[k as usize]),
                // invariant: validate_config guarantees every selected
                // source is an active node, and topo order evaluates
                // sources before their consumers
                DpSource::Node(j) => values[j as usize].expect("active source evaluated"),
            }
        };
        for &i in &order {
            let Some(nc) = &cfg.node_cfg[i as usize] else {
                continue;
            };
            let node = &self.nodes[i as usize];
            let ins: Vec<Value> = nc
                .port_sel
                .iter()
                .enumerate()
                .map(|(p, &sel)| read(node.port_candidates[p][sel as usize], &values))
                .collect();
            values[i as usize] = Some(nc.op.eval(&ins));
        }
        let words = cfg
            .word_out_sel
            .iter()
            .map(|&s| read(s, &values).word())
            .collect();
        let bits = cfg
            .bit_out_sel
            .iter()
            .map(|&s| read(s, &values).bit())
            .collect();
        Ok((words, bits))
    }

    /// Evaluates a configuration with inputs given in *source-subgraph*
    /// order, scattering them onto PE ports through the configuration's
    /// input maps (unused PE ports read zero).
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    ///
    /// # Panics
    /// Panics if the input slices do not match the input maps' lengths.
    pub fn evaluate_as_source(
        &self,
        cfg: &DatapathConfig,
        source_word_inputs: &[u16],
        source_bit_inputs: &[bool],
    ) -> Result<(Vec<u16>, Vec<bool>), DatapathError> {
        assert_eq!(source_word_inputs.len(), cfg.word_input_map.len());
        assert_eq!(source_bit_inputs.len(), cfg.bit_input_map.len());
        let mut words = vec![0u16; self.word_inputs];
        let mut bits = vec![false; self.bit_inputs];
        for (&v, &port) in source_word_inputs.iter().zip(&cfg.word_input_map) {
            words[port as usize] = v;
        }
        for (&v, &port) in source_bit_inputs.iter().zip(&cfg.bit_input_map) {
            bits[port as usize] = v;
        }
        self.evaluate(cfg, &words, &bits)
    }

    /// Total number of configuration-mux legs beyond the first candidate
    /// of each port (a proxy for intraconnect complexity, the paper's
    /// second design-space axis).
    pub fn mux_leg_count(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| &n.port_candidates)
            .map(|c| c.len().saturating_sub(1))
            .sum()
    }

    /// Number of functional-unit nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl fmt::Display for MergedDatapath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "datapath '{}': {} nodes, {}W+{}B in, {}W+{}B out, {} configs",
            self.name,
            self.nodes.len(),
            self.word_inputs,
            self.bit_inputs,
            self.word_outputs,
            self.bit_outputs,
            self.configs.len()
        )?;
        for (i, n) in self.nodes.iter().enumerate() {
            let ops: Vec<String> = n.ops.iter().map(|o| o.to_string()).collect();
            writeln!(f, "  n{i}: [{}] ports={:?}", ops.join("|"), n.port_candidates)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{evaluate as ir_eval, Graph, Op};

    fn mac_graph() -> Graph {
        let mut g = Graph::new("mac");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        g.output(s);
        g
    }

    #[test]
    fn from_graph_preserves_semantics() {
        let g = mac_graph();
        let dp = MergedDatapath::from_graph(&g);
        assert!(dp.validate().is_ok());
        assert_eq!(dp.word_inputs, 3);
        assert_eq!(dp.word_outputs, 1);
        let (w, _) = dp.evaluate(&dp.configs[0], &[3, 4, 5], &[]).unwrap();
        let golden = ir_eval(&g, &[Value::Word(3), Value::Word(4), Value::Word(5)]);
        assert_eq!(w[0], golden[0].word());
    }

    #[test]
    fn const_nodes_become_const_registers() {
        let mut g = Graph::new("scale");
        let a = g.input();
        let c = g.constant(7);
        let m = g.add(Op::Mul, &[a, c]);
        g.output(m);
        let dp = MergedDatapath::from_graph(&g);
        let (w, _) = dp.evaluate(&dp.configs[0], &[6], &[]).unwrap();
        assert_eq!(w[0], 42);
        // reload the constant register in a modified config
        let mut cfg = dp.configs[0].clone();
        for nc in cfg.node_cfg.iter_mut().flatten() {
            if matches!(nc.op, Op::Const(_)) {
                nc.op = Op::Const(100);
            }
        }
        let (w, _) = dp.evaluate(&cfg, &[6], &[]).unwrap();
        assert_eq!(w[0], 600);
    }

    #[test]
    fn validate_rejects_cycles() {
        let mut dp = MergedDatapath::from_graph(&mac_graph());
        // introduce a cycle: node 0 (mul) also sourced from node 1 (add)
        dp.nodes[0].port_candidates[0].push(DpSource::Node(1));
        assert_eq!(dp.validate(), Err(DatapathError::Cyclic));
    }

    #[test]
    fn validate_rejects_unsupported_op() {
        let dp = MergedDatapath::from_graph(&mac_graph());
        let mut cfg = dp.configs[0].clone();
        for nc in cfg.node_cfg.iter_mut().flatten() {
            if nc.op == Op::Add {
                nc.op = Op::Sub;
            }
        }
        assert!(matches!(
            dp.validate_config(&cfg),
            Err(DatapathError::UnsupportedOp { .. })
        ));
    }

    #[test]
    fn validate_rejects_inactive_source() {
        let dp = MergedDatapath::from_graph(&mac_graph());
        let mut cfg = dp.configs[0].clone();
        cfg.node_cfg[0] = None; // deactivate the mul that feeds the add
        assert!(matches!(
            dp.validate_config(&cfg),
            Err(DatapathError::InactiveSource { .. })
        ));
    }

    #[test]
    fn mux_legs_counted() {
        let mut dp = MergedDatapath::from_graph(&mac_graph());
        assert_eq!(dp.mux_leg_count(), 0);
        dp.nodes[1].port_candidates[1].push(DpSource::WordInput(0));
        assert_eq!(dp.mux_leg_count(), 1);
    }

    #[test]
    fn bit_outputs_evaluate() {
        let mut g = Graph::new("cmp");
        let a = g.input();
        let b = g.input();
        let lt = g.add(Op::Ult, &[a, b]);
        g.bit_output(lt);
        let dp = MergedDatapath::from_graph(&g);
        let (_, bits) = dp.evaluate(&dp.configs[0], &[1, 2], &[]).unwrap();
        assert!(bits[0]);
        let (_, bits) = dp.evaluate(&dp.configs[0], &[5, 2], &[]).unwrap();
        assert!(!bits[0]);
    }
}
