//! Datapath-graph merging (paper Section 3.3, after Moreano et al.).
//!
//! [`merge_graph`] folds one more subgraph into an accumulated PE
//! datapath:
//!
//! 1. enumerate *merge opportunities* — node pairs implementable on one
//!    functional unit, and edge pairs whose connections can be reused
//!    (Fig. 5c),
//! 2. build the *compatibility graph* over opportunities with area-saving
//!    weights (Fig. 5d),
//! 3. find a maximum-weight clique, subject to the merged datapath staying
//!    acyclic, and
//! 4. reconstruct the merged datapath, inserting configuration muxes where
//!    configurations disagree about a port's source (Fig. 5e).

use crate::clique::CliqueProblem;
use crate::datapath::{DatapathConfig, DpNode, DpSource, MergedDatapath, NodeConfig};
use apex_fault::{fail_point, ApexError, Provenance, ResourceBudget, Stage, StageBudget};
use apex_ir::{Graph, NodeId, Op, ValueType};
use apex_tech::{fu_class, FuClass, TechModel};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Options controlling the merge search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOptions {
    /// Branch-and-bound budget for the clique search.
    pub clique_budget: usize,
    /// Deadline / cancellation limits for the clique search.
    pub budget: StageBudget,
    /// Approximate memory budget for the merge step's dominant
    /// allocations (the candidate compatibility matrix, the clique
    /// solver's bound arrays). Exceeding it deterministically shrinks the
    /// candidate set instead of OOM-aborting, flagged in
    /// [`MergeReport::provenance`].
    pub resource: ResourceBudget,
}

impl Default for MergeOptions {
    fn default() -> Self {
        MergeOptions {
            clique_budget: 500_000,
            budget: StageBudget::unlimited(),
            resource: ResourceBudget::from_env(),
        }
    }
}

/// Errors from folding a subgraph into a PE datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The subgraph contains register/FIFO nodes, which only appear after
    /// pipelining and cannot be merged.
    Registers {
        /// Name of the offending graph.
        graph: String,
    },
    /// No input port of the merged node is free for one of its operands.
    NoFreePort {
        /// Subgraph node whose operand could not be wired.
        node: u32,
    },
    /// Two operands of one node were wired to the same port.
    PortCollision {
        /// Subgraph node with the colliding operands.
        node: u32,
    },
    /// A subgraph input could not be assigned a PE input port.
    InputPortsExhausted,
    /// `merge_all` was called with no graphs.
    EmptyInput,
    /// The cost model produced a non-finite merge saving; the clique
    /// search refuses the instance (a NaN silently corrupts its pruning
    /// bound).
    NonFiniteWeight {
        /// The clique solver's diagnostic.
        detail: String,
    },
    /// A deterministic test fault (fault-injection builds only).
    Injected(&'static str),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Registers { graph } => {
                write!(f, "graph '{graph}' contains registers; merged datapaths must be combinational")
            }
            MergeError::NoFreePort { node } => {
                write!(f, "no free input port while wiring subgraph node n{node}")
            }
            MergeError::PortCollision { node } => {
                write!(f, "port collision while wiring subgraph node n{node}")
            }
            MergeError::InputPortsExhausted => {
                write!(f, "ran out of PE input ports for subgraph primary inputs")
            }
            MergeError::EmptyInput => write!(f, "merge_all needs at least one graph"),
            MergeError::NonFiniteWeight { detail } => write!(f, "{detail}"),
            MergeError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for MergeError {}

impl From<MergeError> for ApexError {
    fn from(e: MergeError) -> Self {
        ApexError::with_source(Stage::Merge, e)
    }
}

/// Statistics from one merge step.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeReport {
    /// Number of merge opportunities enumerated.
    pub candidates: usize,
    /// Size of the chosen clique.
    pub clique_size: usize,
    /// Estimated area saved by the chosen merges, µm².
    pub saved_area: f64,
    /// Whether the clique search completed or was cut short by its budget.
    pub provenance: Provenance,
}

/// One merge opportunity (a node of the compatibility graph).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Candidate {
    /// Merge subgraph node `b` onto datapath node `dp`.
    NodeMerge { dp: u32, b: NodeId },
    /// Let subgraph edge `bs → bd.q` ride the existing datapath
    /// connection `u → v.p`.
    EdgeMerge {
        v: u32,
        p: u8,
        u: u32,
        bd: NodeId,
        q: u8,
        bs: NodeId,
    },
}

impl Candidate {
    /// Node pairings implied by selecting this candidate.
    fn pairs(&self) -> Vec<(u32, NodeId)> {
        match *self {
            Candidate::NodeMerge { dp, b } => vec![(dp, b)],
            Candidate::EdgeMerge { v, u, bd, bs, .. } => vec![(u, bs), (v, bd)],
        }
    }
}

fn unit_class(node: &DpNode) -> FuClass {
    fu_class(node.ops[0].kind())
}

fn unit_area(node: &DpNode, tech: &TechModel) -> f64 {
    node.ops
        .iter()
        .map(|op| tech.area(op.kind()))
        .fold(0.0, f64::max)
}

fn node_feasible(node: &DpNode, b_op: Op) -> bool {
    let class = fu_class(b_op.kind());
    class.shareable()
        && unit_class(node) == class
        && node.output_type() == b_op.output_type()
}

/// Merges `graph` into the accumulated datapath `acc`, returning the new
/// datapath and a report.
///
/// The result keeps every configuration of `acc` unchanged (indices of
/// existing candidates are stable) and appends one configuration
/// implementing `graph`.
///
/// # Errors
/// Rejects subgraphs containing register/FIFO nodes and reports wiring
/// conflicts; a budget-limited clique search is *not* an error — the
/// greedy incumbent is used and [`MergeReport::provenance`] says so.
// invariant: the two `expect`s in the port-selection loop are reachable
// only if the merge-opportunity enumeration above them is internally
// inconsistent (an operand neither placed nor registered as a candidate)
#[allow(clippy::expect_used)]
pub fn merge_graph(
    acc: &MergedDatapath,
    graph: &Graph,
    tech: &TechModel,
    options: &MergeOptions,
) -> Result<(MergedDatapath, MergeReport), MergeError> {
    fail_point!("merge::start", MergeError::Injected("merge::start"));
    let b_nodes: Vec<NodeId> = graph.compute_nodes();
    for &b in &b_nodes {
        if matches!(graph.op(b), Op::Reg | Op::BitReg | Op::Fifo(_)) {
            return Err(MergeError::Registers {
                graph: graph.name().to_owned(),
            });
        }
    }
    let b_set: BTreeSet<NodeId> = b_nodes.iter().copied().collect();
    // B edges between compute nodes: (bd, q, bs)
    let b_edges: Vec<(NodeId, u8, NodeId)> = b_nodes
        .iter()
        .flat_map(|&bd| {
            graph
                .node(bd)
                .inputs()
                .iter()
                .enumerate()
                .filter(|(_, s)| b_set.contains(s))
                .map(move |(q, &bs)| (bd, q as u8, bs))
                .collect::<Vec<_>>()
        })
        .collect();

    // ---- 1. merge opportunities -----------------------------------------
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    for (i, node) in acc.nodes.iter().enumerate() {
        for &b in &b_nodes {
            let b_op = graph.op(b);
            if node_feasible(node, b_op) {
                candidates.push(Candidate::NodeMerge { dp: i as u32, b });
                weights.push(unit_area(node, tech).min(tech.area(b_op.kind())));
            }
        }
    }
    for (vi, vnode) in acc.nodes.iter().enumerate() {
        for (p, cands) in vnode.port_candidates.iter().enumerate() {
            for src in cands {
                let DpSource::Node(ui) = *src else { continue };
                let unode = &acc.nodes[ui as usize];
                for &(bd, q, bs) in &b_edges {
                    let bd_op = graph.op(bd);
                    let bs_op = graph.op(bs);
                    if !node_feasible(vnode, bd_op) || !node_feasible(unode, bs_op) {
                        continue;
                    }
                    let positional =
                        vnode.non_commutative() || (bd_op.arity() >= 2 && !bd_op.commutative());
                    if positional && p as u8 != q {
                        continue;
                    }
                    if q as usize >= bd_op.arity() || p >= vnode.arity() {
                        continue;
                    }
                    candidates.push(Candidate::EdgeMerge {
                        v: vi as u32,
                        p: p as u8,
                        u: ui,
                        bd,
                        q,
                        bs,
                    });
                    weights.push(tech.mux_leg_area(unode.output_type()));
                }
            }
        }
    }

    // ---- 2. compatibility graph ------------------------------------------
    // the n×n compatibility matrix is this stage's dominant allocation;
    // under memory pressure keep a deterministic prefix of the candidate
    // list whose matrix fits (enumeration order is deterministic, so the
    // same inputs and budget always keep the same prefix)
    let mut resource = options.resource.start();
    let mut n = candidates.len();
    while n > 0 && !resource.charge((n as u64).saturating_mul(n as u64)) {
        n /= 2;
    }
    if n < candidates.len() {
        candidates.truncate(n);
        weights.truncate(n);
    }
    let mut compatible = vec![vec![false; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if candidates_compatible(&candidates[i], &candidates[j]) {
                compatible[i][j] = true;
                compatible[j][i] = true;
            }
        }
    }

    // ---- 3. clique search with acyclicity feasibility ---------------------
    // Precompute the accumulated datapath's internal edges.
    let acc_edges: Vec<(u32, u32)> = acc
        .nodes
        .iter()
        .enumerate()
        .flat_map(|(v, node)| {
            node.port_candidates
                .iter()
                .flatten()
                .filter_map(move |s| match s {
                    DpSource::Node(u) => Some((*u, v as u32)),
                    _ => None,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let feasible = |clique: &[usize], cand: usize| -> bool {
        let mut mapping: BTreeMap<NodeId, u32> = BTreeMap::new();
        for &c in clique.iter().chain(std::iter::once(&cand)) {
            for (dp, b) in candidates[c].pairs() {
                mapping.insert(b, dp);
            }
        }
        projection_acyclic(acc, &acc_edges, &b_nodes, &b_edges, &mapping)
    };
    let solution = CliqueProblem {
        weights: weights.clone(),
        compatible,
        feasible: Some(&feasible),
        budget: options.clique_budget,
        stage_budget: options.budget.clone(),
    }
    .try_solve_budgeted(&mut resource)
    .map_err(|e| MergeError::NonFiniteWeight {
        detail: e.message().to_owned(),
    })?;
    let clique = solution.members;
    let saved_area: f64 = clique.iter().map(|&i| weights[i]).sum();

    // ---- 4. reconstruction -------------------------------------------------
    let mut mapping: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut rides: BTreeMap<(NodeId, u8), (u32, u8, u32)> = BTreeMap::new();
    for &c in &clique {
        for (dp, b) in candidates[c].pairs() {
            mapping.insert(b, dp);
        }
        if let Candidate::EdgeMerge { v, p, u, bd, q, .. } = candidates[c] {
            rides.insert((bd, q), (v, p, u));
        }
    }

    let mut out = acc.clone();
    out.name = format!("{}+{}", acc.name, graph.name());

    // new nodes for unmapped B compute nodes
    for &b in &b_nodes {
        if !mapping.contains_key(&b) {
            let op = graph.op(b);
            let idx = out.nodes.len() as u32;
            out.nodes
                .push(DpNode::new(op, vec![Vec::new(); op.arity()]));
            mapping.insert(b, idx);
        } else {
            let idx = mapping[&b] as usize;
            let op = graph.op(b);
            extend_node(&mut out.nodes[idx], op);
        }
    }

    // input assignment (greedy overlap with existing connection wiring)
    let word_input_map = assign_inputs(graph, &out, &mapping, ValueType::Word)?;
    let bit_input_map = assign_inputs(graph, &out, &mapping, ValueType::Bit)?;
    out.word_inputs = out
        .word_inputs
        .max(word_input_map.iter().map(|&k| k as usize + 1).max().unwrap_or(0));
    out.bit_inputs = out
        .bit_inputs
        .max(bit_input_map.iter().map(|&k| k as usize + 1).max().unwrap_or(0));

    // wire B's edges port by port, building the new configuration
    let word_pis: Vec<NodeId> = graph
        .node_ids()
        .filter(|&id| graph.op(id) == Op::Input)
        .collect();
    let bit_pis: Vec<NodeId> = graph
        .node_ids()
        .filter(|&id| graph.op(id) == Op::BitInput)
        .collect();
    let source_for = |s: NodeId, mapping: &BTreeMap<NodeId, u32>| -> DpSource {
        if let Some(&dp) = mapping.get(&s) {
            DpSource::Node(dp)
        } else if let Some(k) = word_pis.iter().position(|&x| x == s) {
            DpSource::WordInput(word_input_map[k])
        } else if let Some(k) = bit_pis.iter().position(|&x| x == s) {
            DpSource::BitInput(bit_input_map[k])
        } else {
            unreachable!("source {s} is neither compute nor primary input")
        }
    };

    let mut node_cfg: Vec<Option<NodeConfig>> = vec![None; out.nodes.len()];
    for &b in &b_nodes {
        let op = graph.op(b);
        let t = mapping[&b] as usize;
        let arity = op.arity();
        let mut port_of_operand: Vec<Option<u8>> = vec![None; arity];
        let mut used = vec![false; arity];
        // 1) operands pinned by chosen edge rides
        for q in 0..arity {
            if let Some(&(v, p, u)) = rides.get(&(b, q as u8)) {
                debug_assert_eq!(v as usize, t);
                debug_assert!(out.nodes[t].port_candidates[p as usize]
                    .contains(&DpSource::Node(u)));
                port_of_operand[q] = Some(p);
                used[p as usize] = true;
            }
        }
        // 2) non-commutative ops need positional ports
        let positional = arity >= 2 && !op.commutative();
        for q in 0..arity {
            if port_of_operand[q].is_some() {
                continue;
            }
            let src = source_for(graph.node(b).inputs()[q], &mapping);
            let port = if positional || arity == 1 {
                q as u8
            } else {
                // commutative: prefer a free port that already has this
                // source as a candidate, then the free port with fewest
                // candidates
                let mut best: Option<u8> = None;
                for p in 0..arity {
                    if used[p] {
                        continue;
                    }
                    let cands = &out.nodes[t].port_candidates[p];
                    let better = match best {
                        None => true,
                        Some(bp) => {
                            let bc = &out.nodes[t].port_candidates[bp as usize];
                            (cands.contains(&src), std::cmp::Reverse(cands.len()))
                                > (bc.contains(&src), std::cmp::Reverse(bc.len()))
                        }
                    };
                    if better {
                        best = Some(p as u8);
                    }
                }
                best.ok_or(MergeError::NoFreePort { node: b.0 })?
            };
            if used[port as usize] {
                return Err(MergeError::PortCollision { node: b.0 });
            }
            used[port as usize] = true;
            port_of_operand[q] = Some(port);
            let cands = &mut out.nodes[t].port_candidates[port as usize];
            if !cands.contains(&src) {
                cands.push(src);
            }
        }
        // 3) build the per-port selection
        let mut port_sel = vec![0u32; arity];
        for q in 0..arity {
            // invariant: both loops above either assign the operand's port
            // and register its source as a candidate, or return early
            let p = port_of_operand[q].expect("operand placed") as usize;
            let src = match rides.get(&(b, q as u8)) {
                Some(&(_, _, u)) => DpSource::Node(u),
                None => source_for(graph.node(b).inputs()[q], &mapping),
            };
            let sel = out.nodes[t].port_candidates[p]
                .iter()
                .position(|&c| c == src)
                .expect("source registered as candidate");
            port_sel[p] = sel as u32;
        }
        node_cfg[t] = Some(NodeConfig { op, port_sel });
    }

    // outputs
    let mut word_out_sel = Vec::new();
    let mut bit_out_sel = Vec::new();
    for po in graph.primary_outputs() {
        let feed = graph.node(po).inputs()[0];
        let src = source_for(feed, &mapping);
        match graph.op(po) {
            Op::Output => word_out_sel.push(src),
            Op::BitOutput => bit_out_sel.push(src),
            _ => unreachable!(),
        }
    }
    out.word_outputs = out.word_outputs.max(word_out_sel.len());
    out.bit_outputs = out.bit_outputs.max(bit_out_sel.len());

    // pad existing configs to the new node count
    for cfg in &mut out.configs {
        cfg.node_cfg.resize(out.nodes.len(), None);
    }
    out.configs.push(DatapathConfig {
        name: graph.name().to_owned(),
        node_cfg,
        word_out_sel,
        bit_out_sel,
        word_input_map,
        bit_input_map,
        node_map: mapping.iter().map(|(&b, &dp)| (b.0, dp)).collect(),
    });

    let report = MergeReport {
        candidates: n,
        clique_size: clique.len(),
        saved_area,
        provenance: solution.provenance.worst(resource.provenance()),
    };
    Ok((out, report))
}

/// Adds `op` to a node's op set (constant-like ops are deduplicated by
/// kind since their payload is configuration state) and widens the port
/// list if needed.
fn extend_node(node: &mut DpNode, op: Op) {
    let present = node.ops.iter().any(|o| match (o, &op) {
        (Op::Const(_), Op::Const(_)) => true,
        (Op::BitConst(_), Op::BitConst(_)) => true,
        (Op::Lut(_), Op::Lut(_)) => true,
        (a, b) => *a == *b,
    });
    if !present {
        node.ops.push(op);
    }
    while node.port_candidates.len() < op.arity() {
        node.port_candidates.push(Vec::new());
    }
}

fn candidates_compatible(a: &Candidate, b: &Candidate) -> bool {
    // consistent partial injective mapping
    for (d1, b1) in a.pairs() {
        for (d2, b2) in b.pairs() {
            if (d1 == d2) != (b1 == b2) {
                return false;
            }
        }
    }
    // distinct physical connections and distinct subgraph edges
    if let (
        Candidate::EdgeMerge {
            v: v1,
            p: p1,
            u: u1,
            bd: bd1,
            q: q1,
            ..
        },
        Candidate::EdgeMerge {
            v: v2,
            p: p2,
            u: u2,
            bd: bd2,
            q: q2,
            ..
        },
    ) = (a, b)
    {
        if (v1, p1, u1) == (v2, p2, u2) || (bd1, q1) == (bd2, q2) {
            return false;
        }
        // two operands of one subgraph node cannot ride the same port
        if bd1 == bd2 && p1 == p2 {
            return false;
        }
    }
    true
}

/// Checks that the union of the accumulated datapath's edges and the
/// subgraph's edges, projected through `mapping`, stays acyclic.
fn projection_acyclic(
    acc: &MergedDatapath,
    acc_edges: &[(u32, u32)],
    b_nodes: &[NodeId],
    b_edges: &[(NodeId, u8, NodeId)],
    mapping: &BTreeMap<NodeId, u32>,
) -> bool {
    // virtual ids: 0..acc.nodes.len() for dp nodes, then unmapped B nodes
    let base = acc.nodes.len() as u32;
    let mut virt: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut next = base;
    for &bn in b_nodes {
        if !mapping.contains_key(&bn) {
            virt.insert(bn, next);
            next += 1;
        }
    }
    let id_of = |bn: NodeId| -> u32 { mapping.get(&bn).copied().unwrap_or_else(|| virt[&bn]) };
    let total = next as usize;
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); total];
    let mut indeg = vec![0usize; total];
    let push = |s: u32, d: u32, succ: &mut Vec<Vec<u32>>, indeg: &mut Vec<usize>| {
        succ[s as usize].push(d);
        indeg[d as usize] += 1;
    };
    for &(u, v) in acc_edges {
        push(u, v, &mut succ, &mut indeg);
    }
    for &(bd, _, bs) in b_edges {
        push(id_of(bs), id_of(bd), &mut succ, &mut indeg);
    }
    let mut ready: Vec<u32> = (0..total as u32)
        .filter(|&i| indeg[i as usize] == 0)
        .collect();
    let mut seen = 0usize;
    while let Some(u) = ready.pop() {
        seen += 1;
        for &v in &succ[u as usize] {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                ready.push(v);
            }
        }
    }
    seen == total
}

/// Assigns the subgraph's primary inputs of type `ty` to PE input ports,
/// preferring ports already wired to the nodes the input feeds.
fn assign_inputs(
    graph: &Graph,
    out: &MergedDatapath,
    mapping: &BTreeMap<NodeId, u32>,
    ty: ValueType,
) -> Result<Vec<u16>, MergeError> {
    let pis: Vec<NodeId> = graph
        .node_ids()
        .filter(|&id| match ty {
            ValueType::Word => graph.op(id) == Op::Input,
            ValueType::Bit => graph.op(id) == Op::BitInput,
        })
        .collect();
    let existing = match ty {
        ValueType::Word => out.word_inputs,
        ValueType::Bit => out.bit_inputs,
    };
    let limit = existing.max(pis.len());
    let fan = graph.fanouts();
    let mut taken = vec![false; limit.max(1)];
    let mut result = vec![0u16; pis.len()];
    for (k, &pi) in pis.iter().enumerate() {
        // nodes this input feeds, in the merged datapath
        let dests: Vec<u32> = fan[pi.index()]
            .iter()
            .filter_map(|c| mapping.get(c).copied())
            .collect();
        let mut best: Option<(usize, usize)> = None; // (score, port)
        for port in 0..limit {
            if taken[port] {
                continue;
            }
            let probe = match ty {
                ValueType::Word => DpSource::WordInput(port as u16),
                ValueType::Bit => DpSource::BitInput(port as u16),
            };
            let score = dests
                .iter()
                .map(|&d| {
                    out.nodes[d as usize]
                        .port_candidates
                        .iter()
                        .filter(|c| c.contains(&probe))
                        .count()
                })
                .sum::<usize>();
            let better = match best {
                None => true,
                Some((bs, bp)) => score > bs || (score == bs && port < bp),
            };
            if better {
                best = Some((score, port));
            }
        }
        let (_, port) = best.ok_or(MergeError::InputPortsExhausted)?;
        taken[port] = true;
        result[k] = port as u16;
    }
    Ok(result)
}

/// Folds a list of datapath graphs into one merged PE datapath.
///
/// # Errors
/// Rejects an empty graph list and propagates the first merge failure.
pub fn merge_all(
    graphs: &[Graph],
    tech: &TechModel,
    options: &MergeOptions,
) -> Result<(MergedDatapath, Vec<MergeReport>), MergeError> {
    if graphs.is_empty() {
        return Err(MergeError::EmptyInput);
    }
    let mut acc = MergedDatapath::from_graph(&graphs[0]);
    let mut reports = Vec::new();
    for g in &graphs[1..] {
        let (next, report) = merge_graph(&acc, g, tech, options)?;
        acc = next;
        reports.push(report);
    }
    Ok((acc, reports))
}
