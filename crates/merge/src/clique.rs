//! Maximum-weight clique search over the compatibility graph
//! (Fig. 5d of the paper).
//!
//! Exact branch-and-bound with a weight-sum upper bound and a node budget;
//! a greedy multi-start pass seeds the incumbent, so when the budget runs
//! out the result degrades gracefully to the greedy answer. An optional
//! *set feasibility* predicate supports constraints that are not pairwise
//! (datapath merging must reject candidate sets whose union would create a
//! combinational cycle).

/// A max-weight-clique instance.
pub struct CliqueProblem<'a> {
    /// Node weights (all non-negative).
    pub weights: Vec<f64>,
    /// Pairwise compatibility (symmetric, irreflexive-irrelevant).
    pub compatible: Vec<Vec<bool>>,
    /// Set-level feasibility: may the candidate be added to the current
    /// clique? Called with (current clique, candidate).
    pub feasible: Option<&'a dyn Fn(&[usize], usize) -> bool>,
    /// Branch-and-bound node budget before falling back to the incumbent.
    pub budget: usize,
}

impl CliqueProblem<'_> {
    /// Solves the instance, returning the best clique found (exact when
    /// the budget is not exhausted).
    pub fn solve(&self) -> Vec<usize> {
        let n = self.weights.len();
        if n == 0 {
            return Vec::new();
        }
        // order by weight descending for a tight suffix bound
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.weights[b]
                .partial_cmp(&self.weights[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + self.weights[order[i]];
        }

        // greedy seed: best of n single-start greedy passes
        let mut best: Vec<usize> = Vec::new();
        let mut best_w = f64::NEG_INFINITY;
        for start in 0..n.min(32) {
            let g = self.greedy(&order, start);
            let w = g.iter().map(|&i| self.weights[i]).sum::<f64>();
            if w > best_w {
                best_w = w;
                best = g;
            }
        }

        let mut state = Search {
            problem: self,
            order: &order,
            suffix: &suffix,
            best,
            best_w,
            explored: 0,
        };
        state.recurse(&mut Vec::new(), 0.0, 0);
        state.best
    }

    fn greedy(&self, order: &[usize], start: usize) -> Vec<usize> {
        let mut clique: Vec<usize> = Vec::new();
        for k in 0..order.len() {
            let cand = order[(start + k) % order.len()];
            if self.weights[cand] <= 0.0 {
                continue;
            }
            if clique.iter().all(|&c| self.compatible[c][cand])
                && self.feasible.is_none_or(|f| f(&clique, cand))
            {
                clique.push(cand);
            }
        }
        clique
    }
}

struct Search<'p, 'a> {
    problem: &'p CliqueProblem<'a>,
    order: &'p [usize],
    suffix: &'p [f64],
    best: Vec<usize>,
    best_w: f64,
    explored: usize,
}

impl Search<'_, '_> {
    fn recurse(&mut self, clique: &mut Vec<usize>, weight: f64, depth: usize) {
        self.explored += 1;
        if self.explored > self.problem.budget {
            return;
        }
        if weight > self.best_w {
            self.best_w = weight;
            self.best = clique.clone();
        }
        if depth >= self.order.len() || weight + self.suffix[depth] <= self.best_w {
            return;
        }
        let cand = self.order[depth];
        // branch 1: include cand (if allowed)
        if self.problem.weights[cand] > 0.0
            && clique.iter().all(|&c| self.problem.compatible[c][cand])
            && self.problem.feasible.is_none_or(|f| f(clique, cand))
        {
            clique.push(cand);
            self.recurse(clique, weight + self.problem.weights[cand], depth + 1);
            clique.pop();
        }
        // branch 2: skip cand
        self.recurse(clique, weight, depth + 1);
    }
}

/// Convenience wrapper for unconstrained instances.
pub fn max_weight_clique(weights: &[f64], compatible: &[Vec<bool>], budget: usize) -> Vec<usize> {
    CliqueProblem {
        weights: weights.to_vec(),
        compatible: compatible.to_vec(),
        feasible: None,
        budget,
    }
    .solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_matrix(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
        let mut m = vec![vec![false; n]; n];
        for &(a, b) in edges {
            m[a][b] = true;
            m[b][a] = true;
        }
        m
    }

    #[test]
    fn triangle_beats_heavy_singleton() {
        // nodes 0,1,2 form a triangle with weight 3; node 3 weighs 2.5 alone
        let compat = full_matrix(4, &[(0, 1), (0, 2), (1, 2)]);
        let w = vec![1.0, 1.0, 1.0, 2.5];
        let mut c = max_weight_clique(&w, &compat, 1 << 20);
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn heavy_singleton_beats_light_clique() {
        let compat = full_matrix(4, &[(0, 1), (0, 2), (1, 2)]);
        let w = vec![1.0, 1.0, 1.0, 10.0];
        let c = max_weight_clique(&w, &compat, 1 << 20);
        assert_eq!(c, vec![3]);
    }

    #[test]
    fn zero_weight_nodes_are_ignored() {
        let compat = full_matrix(3, &[(0, 1), (1, 2), (0, 2)]);
        let w = vec![0.0, 5.0, 0.0];
        let c = max_weight_clique(&w, &compat, 1 << 20);
        assert_eq!(c, vec![1]);
    }

    #[test]
    fn feasibility_predicate_blocks_sets() {
        // all pairwise compatible, but sets larger than 2 are forbidden
        // (the predicate must be order-invariant, like the acyclicity
        // constraint it models)
        let compat = full_matrix(3, &[(0, 1), (1, 2), (0, 2)]);
        let w = vec![1.0, 1.0, 1.0];
        let feasible = |clique: &[usize], _cand: usize| clique.len() < 2;
        let p = CliqueProblem {
            weights: w,
            compatible: compat,
            feasible: Some(&feasible),
            budget: 1 << 20,
        };
        let c = p.solve();
        assert_eq!(c.len(), 2, "best feasible clique has 2 nodes: {c:?}");
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // deterministic xorshift RNG
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let n = 4 + (rand() % 7) as usize; // 4..10
            let mut compat = vec![vec![false; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    if rand() % 3 != 0 {
                        compat[i][j] = true;
                        compat[j][i] = true;
                    }
                }
            }
            let weights: Vec<f64> = (0..n).map(|_| (rand() % 100) as f64 / 10.0).collect();
            let got: f64 = max_weight_clique(&weights, &compat, 1 << 22)
                .iter()
                .map(|&i| weights[i])
                .sum();
            // brute force over all subsets
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let members: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                let ok = members
                    .iter()
                    .enumerate()
                    .all(|(k, &a)| members[k + 1..].iter().all(|&b| compat[a][b]));
                if ok {
                    let w: f64 = members.iter().map(|&i| weights[i]).sum();
                    best = best.max(w);
                }
            }
            assert!(
                (got - best).abs() < 1e-9,
                "trial {trial}: got {got}, brute force {best}"
            );
        }
    }

    #[test]
    fn empty_problem() {
        assert!(max_weight_clique(&[], &[], 100).is_empty());
    }
}
