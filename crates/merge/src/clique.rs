//! Maximum-weight clique search over the compatibility graph
//! (Fig. 5d of the paper).
//!
//! Exact branch-and-bound with a weight-sum upper bound under a
//! [`StageBudget`] (search-node budget, wall-clock deadline, cooperative
//! cancellation); a greedy multi-start pass seeds the incumbent, so when
//! any limit trips the result degrades gracefully to the best clique found
//! so far and the [`Provenance`] in the solution says why the search
//! stopped. An optional *set feasibility* predicate supports constraints
//! that are not pairwise (datapath merging must reject candidate sets
//! whose union would create a combinational cycle).

use apex_fault::{ApexError, BudgetMeter, Provenance, ResourceMeter, Stage, StageBudget};

/// A max-weight-clique instance.
pub struct CliqueProblem<'a> {
    /// Node weights (all non-negative).
    pub weights: Vec<f64>,
    /// Pairwise compatibility (symmetric, irreflexive-irrelevant).
    pub compatible: Vec<Vec<bool>>,
    /// Set-level feasibility: may the candidate be added to the current
    /// clique? Called with (current clique, candidate).
    pub feasible: Option<&'a dyn Fn(&[usize], usize) -> bool>,
    /// Branch-and-bound node budget before falling back to the incumbent.
    pub budget: usize,
    /// Deadline / cancellation limits layered on top of the node budget.
    pub stage_budget: StageBudget,
}

/// The result of a clique search: the members plus how the search ended.
#[derive(Debug, Clone, PartialEq)]
pub struct CliqueSolution {
    /// The best clique found (exact iff `provenance == Completed`).
    pub members: Vec<usize>,
    /// Whether the branch-and-bound ran to completion or was interrupted.
    pub provenance: Provenance,
    /// Search-tree nodes explored.
    pub explored: u64,
}

impl CliqueProblem<'_> {
    /// Rejects instances whose weights the branch-and-bound cannot order
    /// soundly: a NaN weight silently corrupts the descending sort and the
    /// suffix-sum pruning bound (the search can then prune the true
    /// max-weight clique), and an infinite weight poisons every suffix sum
    /// it participates in. Solver construction must refuse both.
    ///
    /// # Errors
    /// [`Stage::Merge`] error naming the first non-finite weight.
    pub fn validate(&self) -> Result<(), ApexError> {
        for (i, w) in self.weights.iter().enumerate() {
            if !w.is_finite() {
                return Err(ApexError::new(
                    Stage::Merge,
                    format!("clique weight {i} is {w}; merge savings must be finite"),
                ));
            }
        }
        Ok(())
    }

    /// Validates the instance and solves it — the entry point the merge
    /// stage uses, so malformed cost-model output is an error instead of a
    /// silently mis-pruned search.
    ///
    /// # Errors
    /// Propagates [`CliqueProblem::validate`] failures.
    pub fn try_solve(&self) -> Result<CliqueSolution, ApexError> {
        let mut unlimited = ResourceMeter::unlimited();
        self.try_solve_budgeted(&mut unlimited)
    }

    /// Like [`CliqueProblem::try_solve`], but charges the solver's
    /// auxiliary allocations against `resource`: when the memory budget is
    /// exhausted the search degrades to the greedy incumbent (or the empty
    /// clique when even the ordering arrays do not fit) with
    /// [`Provenance::TruncatedByBudget`] instead of allocating anyway.
    ///
    /// # Errors
    /// Propagates [`CliqueProblem::validate`] failures.
    pub fn try_solve_budgeted(
        &self,
        resource: &mut ResourceMeter,
    ) -> Result<CliqueSolution, ApexError> {
        self.validate()?;
        Ok(self.solve_budgeted(resource))
    }

    /// Solves the instance. The greedy seeding pass always runs, so even a
    /// zero budget or an already-expired deadline yields a valid clique —
    /// just one with partial provenance.
    ///
    /// Assumes finite weights (see [`CliqueProblem::try_solve`]); with a
    /// NaN in the instance the pruning bound is unsound.
    pub fn solve(&self) -> CliqueSolution {
        let mut unlimited = ResourceMeter::unlimited();
        self.solve_budgeted(&mut unlimited)
    }

    /// Memory-budgeted [`CliqueProblem::solve`]; see
    /// [`CliqueProblem::try_solve_budgeted`] for the degradation ladder.
    pub fn solve_budgeted(&self, resource: &mut ResourceMeter) -> CliqueSolution {
        let n = self.weights.len();
        if n == 0 {
            return CliqueSolution {
                members: Vec::new(),
                provenance: Provenance::Completed,
                explored: 0,
            };
        }
        // ordering + suffix-sum arrays: without these not even the greedy
        // incumbent can run, so the search degrades to the empty clique
        // (a valid merge outcome: nothing merges)
        let order_bytes =
            (n * std::mem::size_of::<usize>() + (n + 1) * std::mem::size_of::<f64>()) as u64;
        if !resource.charge(order_bytes) {
            return CliqueSolution {
                members: Vec::new(),
                provenance: Provenance::TruncatedByBudget,
                explored: 0,
            };
        }
        // order by weight descending for a tight suffix bound; total_cmp
        // keeps the order well-defined for every float (NaNs sort last
        // instead of scrambling their neighbourhood)
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| f64::total_cmp(&self.weights[b], &self.weights[a]));
        let mut suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + self.weights[order[i]];
        }

        // greedy seed: best of n single-start greedy passes (not metered —
        // this is the incumbent every degraded path relies on)
        let mut best: Vec<usize> = Vec::new();
        let mut best_w = f64::NEG_INFINITY;
        for start in 0..n.min(32) {
            let g = self.greedy(&order, start);
            let w = g.iter().map(|&i| self.weights[i]).sum::<f64>();
            if w > best_w {
                best_w = w;
                best = g;
            }
        }

        // coloring + bound arrays feed only the branch-and-bound
        // refinement; when they do not fit, the greedy incumbent stands
        let color_bytes =
            (n * std::mem::size_of::<usize>() + 2 * (n + 1) * std::mem::size_of::<f64>()) as u64;
        if !resource.charge(color_bytes) {
            return CliqueSolution {
                members: best,
                provenance: Provenance::TruncatedByBudget,
                explored: 0,
            };
        }

        // Greedy coloring along the same weight-descending order: each
        // color class is an independent set of the compatibility graph, so
        // a clique contains at most one vertex per class. The per-suffix
        // sum of color-class maxima is then a second upper bound, usually
        // far tighter than the plain suffix sum on sparse compatibility
        // graphs. Keeping the traversal order itself unchanged preserves
        // the exact incumbent sequence: a sound bound only removes
        // subtrees that cannot strictly improve, so the returned members
        // are identical to the suffix-only search.
        let mut color = vec![0usize; n];
        let mut ncolors = 0usize;
        let mut used: Vec<bool> = Vec::new();
        for k in 0..n {
            used.clear();
            used.resize(ncolors + 1, false);
            for j in 0..k {
                if self.compatible[order[j]][order[k]] {
                    used[color[j]] = true;
                }
            }
            let c = used.iter().position(|&u| !u).unwrap_or(ncolors);
            color[k] = c;
            ncolors = ncolors.max(c + 1);
        }
        // colored[k]: sum of per-color maxima over order[k..], weights
        // clamped at zero (the search only ever adds positive weights)
        let mut colored = vec![0.0f64; n + 1];
        let mut colmax = vec![0.0f64; ncolors];
        let mut running = 0.0f64;
        for k in (0..n).rev() {
            let w = self.weights[order[k]].max(0.0);
            let c = color[k];
            if w > colmax[c] {
                running += w - colmax[c];
                colmax[c] = w;
            }
            colored[k] = running;
        }
        // the bound used at each depth: both bounds are sound, take the min
        let bound: Vec<f64> = (0..=n).map(|k| suffix[k].min(colored[k])).collect();

        let node_budget = self.budget as u64;
        let meter_budget = StageBudget {
            deadline: self.stage_budget.deadline,
            max_steps: Some(match self.stage_budget.max_steps {
                Some(s) => s.min(node_budget),
                None => node_budget,
            }),
            cancel: self.stage_budget.cancel.clone(),
        };
        let mut meter = meter_budget.start();
        let mut state = Search {
            problem: self,
            order: &order,
            bound: &bound,
            best,
            best_w,
        };
        // an already-expired deadline or tripped cancel flag skips the
        // branch-and-bound entirely and reports why
        if meter.check_slow() {
            state.recurse(&mut Vec::new(), 0.0, 0, &mut meter);
        }
        CliqueSolution {
            members: state.best,
            provenance: meter.provenance(),
            explored: meter.steps(),
        }
    }

    fn greedy(&self, order: &[usize], start: usize) -> Vec<usize> {
        let mut clique: Vec<usize> = Vec::new();
        for k in 0..order.len() {
            let cand = order[(start + k) % order.len()];
            if self.weights[cand] <= 0.0 {
                continue;
            }
            if clique.iter().all(|&c| self.compatible[c][cand])
                && self.feasible.is_none_or(|f| f(&clique, cand))
            {
                clique.push(cand);
            }
        }
        clique
    }
}

struct Search<'p, 'a> {
    problem: &'p CliqueProblem<'a>,
    order: &'p [usize],
    /// Per-depth upper bound on the weight still obtainable:
    /// `min(suffix sum, colored bound)` (see [`CliqueProblem::solve`]).
    bound: &'p [f64],
    best: Vec<usize>,
    best_w: f64,
}

impl Search<'_, '_> {
    fn recurse(&mut self, clique: &mut Vec<usize>, weight: f64, depth: usize, meter: &mut BudgetMeter) {
        if !meter.tick() {
            return;
        }
        if weight > self.best_w {
            self.best_w = weight;
            self.best = clique.clone();
        }
        if depth >= self.order.len() || weight + self.bound[depth] <= self.best_w {
            return;
        }
        let cand = self.order[depth];
        // branch 1: include cand (if allowed)
        if self.problem.weights[cand] > 0.0
            && clique.iter().all(|&c| self.problem.compatible[c][cand])
            && self.problem.feasible.is_none_or(|f| f(clique, cand))
        {
            clique.push(cand);
            self.recurse(clique, weight + self.problem.weights[cand], depth + 1, meter);
            clique.pop();
        }
        // branch 2: skip cand
        self.recurse(clique, weight, depth + 1, meter);
    }
}

/// Convenience wrapper for unconstrained instances.
pub fn max_weight_clique(weights: &[f64], compatible: &[Vec<bool>], budget: usize) -> Vec<usize> {
    CliqueProblem {
        weights: weights.to_vec(),
        compatible: compatible.to_vec(),
        feasible: None,
        budget,
        stage_budget: StageBudget::unlimited(),
    }
    .solve()
    .members
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn full_matrix(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
        let mut m = vec![vec![false; n]; n];
        for &(a, b) in edges {
            m[a][b] = true;
            m[b][a] = true;
        }
        m
    }

    #[test]
    fn triangle_beats_heavy_singleton() {
        // nodes 0,1,2 form a triangle with weight 3; node 3 weighs 2.5 alone
        let compat = full_matrix(4, &[(0, 1), (0, 2), (1, 2)]);
        let w = vec![1.0, 1.0, 1.0, 2.5];
        let mut c = max_weight_clique(&w, &compat, 1 << 20);
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn heavy_singleton_beats_light_clique() {
        let compat = full_matrix(4, &[(0, 1), (0, 2), (1, 2)]);
        let w = vec![1.0, 1.0, 1.0, 10.0];
        let c = max_weight_clique(&w, &compat, 1 << 20);
        assert_eq!(c, vec![3]);
    }

    #[test]
    fn zero_weight_nodes_are_ignored() {
        let compat = full_matrix(3, &[(0, 1), (1, 2), (0, 2)]);
        let w = vec![0.0, 5.0, 0.0];
        let c = max_weight_clique(&w, &compat, 1 << 20);
        assert_eq!(c, vec![1]);
    }

    #[test]
    fn feasibility_predicate_blocks_sets() {
        // all pairwise compatible, but sets larger than 2 are forbidden
        // (the predicate must be order-invariant, like the acyclicity
        // constraint it models)
        let compat = full_matrix(3, &[(0, 1), (1, 2), (0, 2)]);
        let w = vec![1.0, 1.0, 1.0];
        let feasible = |clique: &[usize], _cand: usize| clique.len() < 2;
        let p = CliqueProblem {
            weights: w,
            compatible: compat,
            feasible: Some(&feasible),
            budget: 1 << 20,
            stage_budget: StageBudget::unlimited(),
        };
        let sol = p.solve();
        assert_eq!(sol.provenance, Provenance::Completed);
        assert_eq!(sol.members.len(), 2, "best feasible clique has 2 nodes: {sol:?}");
    }

    #[test]
    fn exhausted_node_budget_reports_truncation() {
        // K5 with a set-feasibility cap of 2 members: the weight bounds
        // cannot see the predicate, so the bound at the root (5.0) stays
        // far above the best feasible weight (2.0) and the search keeps
        // branching until the 3-node budget cuts it off mid-tree
        let compat = full_matrix(
            5,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
            ],
        );
        let w = vec![1.0; 5];
        let feasible = |clique: &[usize], _cand: usize| clique.len() < 2;
        let p = CliqueProblem {
            weights: w.clone(),
            compatible: compat,
            feasible: Some(&feasible),
            budget: 3,
            stage_budget: StageBudget::unlimited(),
        };
        let sol = p.solve();
        assert_eq!(sol.provenance, Provenance::TruncatedByBudget);
        // the greedy incumbent already found a best feasible pair
        let weight: f64 = sol.members.iter().map(|&i| w[i]).sum();
        assert_eq!(weight, 2.0, "{sol:?}");
    }

    #[test]
    fn expired_deadline_reports_timeout_but_returns_greedy() {
        let compat = full_matrix(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let w = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let p = CliqueProblem {
            weights: w.clone(),
            compatible: compat,
            feasible: None,
            budget: 1 << 22,
            stage_budget: StageBudget::unlimited().with_deadline(Duration::ZERO),
        };
        let sol = p.solve();
        assert_eq!(sol.provenance, Provenance::TimedOut);
        let weight: f64 = sol.members.iter().map(|&i| w[i]).sum();
        assert_eq!(weight, 9.0, "greedy incumbent survives timeout: {sol:?}");
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // deterministic xorshift RNG
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..60 {
            let n = 4 + (rand() % 9) as usize; // 4..12
            let mut compat = vec![vec![false; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    // vary density so the colored bound sees sparse and
                    // near-complete instances
                    if rand() % 4 > trial as u64 % 3 {
                        compat[i][j] = true;
                        compat[j][i] = true;
                    }
                }
            }
            // mix in zero and negative weights: the clamped colored bound
            // and the raw suffix sum must both stay sound
            let weights: Vec<f64> = (0..n)
                .map(|_| (rand() % 100) as f64 / 10.0 - 2.0)
                .collect();
            let got: f64 = max_weight_clique(&weights, &compat, 1 << 22)
                .iter()
                .map(|&i| weights[i])
                .sum();
            // brute force over all subsets
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let members: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                let ok = members
                    .iter()
                    .enumerate()
                    .all(|(k, &a)| members[k + 1..].iter().all(|&b| compat[a][b]));
                if ok {
                    let w: f64 = members.iter().map(|&i| weights[i]).sum();
                    best = best.max(w);
                }
            }
            assert!(
                (got - best).abs() < 1e-9,
                "trial {trial}: got {got}, brute force {best}"
            );
        }
    }

    /// The original suffix-sum-only branch-and-bound, retained as the
    /// executable specification of the search order: the colored bound may
    /// only remove subtrees that cannot strictly improve the incumbent, so
    /// the returned members must be *identical*, not merely equal-weight.
    fn reference_suffix_only(weights: &[f64], compat: &[Vec<bool>]) -> Vec<usize> {
        let n = weights.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| f64::total_cmp(&weights[b], &weights[a]));
        let mut suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + weights[order[i]];
        }
        struct R<'x> {
            weights: &'x [f64],
            compat: &'x [Vec<bool>],
            order: &'x [usize],
            suffix: &'x [f64],
            best: Vec<usize>,
            best_w: f64,
        }
        impl R<'_> {
            fn recurse(&mut self, clique: &mut Vec<usize>, weight: f64, depth: usize) {
                if weight > self.best_w {
                    self.best_w = weight;
                    self.best = clique.clone();
                }
                if depth >= self.order.len() || weight + self.suffix[depth] <= self.best_w {
                    return;
                }
                let cand = self.order[depth];
                if self.weights[cand] > 0.0
                    && clique.iter().all(|&c| self.compat[c][cand])
                {
                    clique.push(cand);
                    self.recurse(clique, weight + self.weights[cand], depth + 1);
                    clique.pop();
                }
                self.recurse(clique, weight, depth + 1);
            }
        }
        // same greedy multi-start seed as the production solver, so the
        // incumbent sequences start identical
        let mut best: Vec<usize> = Vec::new();
        let mut best_w = f64::NEG_INFINITY;
        for start in 0..n.min(32) {
            let mut clique: Vec<usize> = Vec::new();
            for k in 0..n {
                let cand = order[(start + k) % n];
                if weights[cand] > 0.0 && clique.iter().all(|&c| compat[c][cand]) {
                    clique.push(cand);
                }
            }
            let w = clique.iter().map(|&i| weights[i]).sum::<f64>();
            if w > best_w {
                best_w = w;
                best = clique;
            }
        }
        let mut r = R {
            weights,
            compat,
            order: &order,
            suffix: &suffix,
            best,
            best_w,
        };
        r.recurse(&mut Vec::new(), 0.0, 0);
        r.best
    }

    #[test]
    fn colored_bound_returns_identical_members_to_suffix_only_search() {
        let mut state = 0x9D2C_5680_1F83_D9ABu64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let n = 3 + (rand() % 10) as usize;
            let mut compat = vec![vec![false; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    if rand() % 3 != 0 {
                        compat[i][j] = true;
                        compat[j][i] = true;
                    }
                }
            }
            let weights: Vec<f64> = (0..n).map(|_| (rand() % 80) as f64 / 8.0).collect();
            let p = CliqueProblem {
                weights: weights.clone(),
                compatible: compat.clone(),
                feasible: None,
                budget: 1 << 30,
                stage_budget: StageBudget::unlimited(),
            };
            let sol = p.solve();
            assert_eq!(sol.provenance, Provenance::Completed);
            let want = reference_suffix_only(&weights, &compat);
            assert_eq!(sol.members, want, "trial {trial} diverged");
        }
    }

    #[test]
    fn empty_problem() {
        assert!(max_weight_clique(&[], &[], 100).is_empty());
    }

    #[test]
    fn zero_memory_budget_degrades_to_empty_clique() {
        let compat = full_matrix(3, &[(0, 1), (1, 2), (0, 2)]);
        let p = CliqueProblem {
            weights: vec![1.0, 1.0, 1.0],
            compatible: compat,
            feasible: None,
            budget: 1 << 20,
            stage_budget: StageBudget::unlimited(),
        };
        let mut meter = apex_fault::ResourceBudget::with_max_bytes(0).start();
        let sol = p.solve_budgeted(&mut meter);
        assert!(sol.members.is_empty());
        assert_eq!(sol.provenance, Provenance::TruncatedByBudget);
    }

    #[test]
    fn tight_memory_budget_returns_greedy_incumbent() {
        // enough for the ordering arrays (first charge) but not the
        // coloring/bound arrays (second charge): the greedy incumbent
        // stands, flagged TruncatedByBudget
        let n = 5;
        let compat = full_matrix(n, &[(0, 1), (0, 2), (1, 2)]);
        let w = vec![1.0, 1.0, 1.0, 0.5, 0.25];
        let order_bytes =
            (n * std::mem::size_of::<usize>() + (n + 1) * std::mem::size_of::<f64>()) as u64;
        let p = CliqueProblem {
            weights: w.clone(),
            compatible: compat,
            feasible: None,
            budget: 1 << 20,
            stage_budget: StageBudget::unlimited(),
        };
        let mut meter = apex_fault::ResourceBudget::with_max_bytes(order_bytes).start();
        let a = p.solve_budgeted(&mut meter);
        assert_eq!(a.provenance, Provenance::TruncatedByBudget);
        assert!(!a.members.is_empty(), "greedy incumbent survives: {a:?}");
        // deterministic: same budget, same degradation
        let mut meter2 = apex_fault::ResourceBudget::with_max_bytes(order_bytes).start();
        let b = p.solve_budgeted(&mut meter2);
        assert_eq!(a.members, b.members);
    }

    #[test]
    fn nan_weight_is_rejected_not_mispruned() {
        // regression: with partial_cmp(..).unwrap_or(Equal) the NaN left
        // the descending order (and the suffix bound) silently corrupted,
        // so branch-and-bound could prune the true max-weight clique
        let compat = full_matrix(4, &[(0, 1), (0, 2), (1, 2)]);
        let w = vec![1.0, f64::NAN, 1.0, 2.5];
        let p = CliqueProblem {
            weights: w,
            compatible: compat,
            feasible: None,
            budget: 1 << 20,
            stage_budget: StageBudget::unlimited(),
        };
        let err = p.try_solve().unwrap_err();
        assert_eq!(err.stage(), apex_fault::Stage::Merge);
        assert!(err.message().contains("weight 1"), "{err}");
    }

    #[test]
    fn infinite_weight_is_rejected() {
        let compat = full_matrix(2, &[(0, 1)]);
        for bad in [f64::INFINITY, f64::NEG_INFINITY] {
            let p = CliqueProblem {
                weights: vec![1.0, bad],
                compatible: compat.clone(),
                feasible: None,
                budget: 1 << 20,
                stage_budget: StageBudget::unlimited(),
            };
            assert!(p.try_solve().is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn finite_instances_pass_validation() {
        let compat = full_matrix(3, &[(0, 1), (1, 2), (0, 2)]);
        let p = CliqueProblem {
            weights: vec![1.0, 2.0, 3.0],
            compatible: compat,
            feasible: None,
            budget: 1 << 20,
            stage_budget: StageBudget::unlimited(),
        };
        let sol = p.try_solve().unwrap();
        assert_eq!(sol.members.len(), 3);
    }
}
