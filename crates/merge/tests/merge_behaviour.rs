//! Behavioural tests: merged datapaths must still implement every source
//! subgraph exactly, stay acyclic, and actually save hardware.

use apex_ir::{evaluate as ir_eval, Graph, Op, Value};
use apex_merge::{merge_all, merge_graph, MergeOptions, MergedDatapath};
use apex_mining::{mine, MinerConfig};
use apex_tech::TechModel;
use proptest::prelude::*;

fn tech() -> TechModel {
    TechModel::default()
}

/// Checks one config of a merged datapath against the IR golden model on
/// a set of input vectors.
fn assert_config_matches(dp: &MergedDatapath, cfg_idx: usize, graph: &Graph, trials: u64) {
    let word_n = graph
        .node_ids()
        .filter(|&i| graph.op(i) == Op::Input)
        .count();
    let bit_n = graph
        .node_ids()
        .filter(|&i| graph.op(i) == Op::BitInput)
        .count();
    let mut seed = 0x9E37_79B9_7F4A_7C15u64 ^ (cfg_idx as u64);
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _ in 0..trials {
        let words: Vec<u16> = (0..word_n).map(|_| next() as u16).collect();
        let bits: Vec<bool> = (0..bit_n).map(|_| next() & 1 == 1).collect();
        // the graph interleaves word/bit inputs in insertion order
        let mut wi = words.iter();
        let mut bi = bits.iter();
        let golden_inputs: Vec<Value> = graph
            .primary_inputs()
            .iter()
            .map(|&pi| match graph.op(pi) {
                Op::Input => Value::Word(*wi.next().unwrap()),
                Op::BitInput => Value::Bit(*bi.next().unwrap()),
                _ => unreachable!(),
            })
            .collect();
        let golden = ir_eval(graph, &golden_inputs);
        let (got_w, got_b) = dp
            .evaluate_as_source(&dp.configs[cfg_idx], &words, &bits)
            .expect("valid config");
        let mut gw = got_w.into_iter();
        let mut gb = got_b.into_iter();
        for (po, g) in graph.primary_outputs().iter().zip(golden) {
            match graph.op(*po) {
                Op::Output => assert_eq!(gw.next().unwrap(), g.word(), "word output mismatch"),
                Op::BitOutput => assert_eq!(gb.next().unwrap(), g.bit(), "bit output mismatch"),
                _ => unreachable!(),
            }
        }
    }
}

fn mac() -> Graph {
    let mut g = Graph::new("mac");
    let (a, b, c) = {
        let a = g.input();
        let b = g.input();
        let c = g.input();
        (a, b, c)
    };
    let m = g.add(Op::Mul, &[a, b]);
    let s = g.add(Op::Add, &[m, c]);
    g.output(s);
    g
}

fn sub_chain() -> Graph {
    let mut g = Graph::new("subchain");
    let a = g.input();
    let b = g.input();
    let c = g.input();
    let d = g.add(Op::Sub, &[a, b]);
    let e = g.add(Op::Sub, &[d, c]);
    g.output(e);
    g
}

fn weighted_conv() -> Graph {
    let mut g = Graph::new("wconv");
    let x = g.input();
    let y = g.input();
    let w0 = g.constant(3);
    let w1 = g.constant(5);
    let m0 = g.add(Op::Mul, &[x, w0]);
    let m1 = g.add(Op::Mul, &[y, w1]);
    let s = g.add(Op::Add, &[m0, m1]);
    g.output(s);
    g
}

#[test]
fn merged_mac_and_subchain_share_adder() {
    let (dp, reports) = merge_all(&[mac(), sub_chain()], &tech(), &MergeOptions::default()).unwrap();
    assert!(dp.validate().is_ok());
    assert_eq!(dp.configs.len(), 2);
    // mac: mul + add; subchain: 2 subs. Adder unit is shared with one sub:
    // nodes = mul, add/sub, sub
    assert!(
        dp.node_count() <= 3,
        "adder/sub must share a unit, got:\n{dp}"
    );
    assert!(reports[0].saved_area > 0.0);
    assert_config_matches(&dp, 0, &mac(), 50);
    assert_config_matches(&dp, 1, &sub_chain(), 50);
}

#[test]
fn merging_identical_graphs_adds_no_hardware() {
    let g1 = mac();
    let mut g2 = mac();
    g2.set_name("mac2");
    let (dp, _) = merge_all(&[g1, g2], &tech(), &MergeOptions::default()).unwrap();
    assert_eq!(dp.node_count(), 2, "identical graphs fully overlap:\n{dp}");
    assert_eq!(dp.mux_leg_count(), 0, "no muxes needed:\n{dp}");
    assert_config_matches(&dp, 0, &mac(), 30);
    assert_config_matches(&dp, 1, &mac(), 30);
}

#[test]
fn merge_keeps_noncommutative_operand_order() {
    // g1: a - b ; g2: b - a (as port-swapped inputs) — configs must differ
    let mut g1 = Graph::new("fwd");
    let a = g1.input();
    let b = g1.input();
    let d = g1.add(Op::Sub, &[a, b]);
    g1.output(d);

    let mut g2 = Graph::new("mixed");
    let a = g2.input();
    let b = g2.input();
    let c = g2.input();
    let s = g2.add(Op::Add, &[a, b]);
    let d = g2.add(Op::Sub, &[c, s]); // add feeds port 1
    g2.output(d);

    let (dp, _) = merge_all(&[g1.clone(), g2.clone()], &tech(), &MergeOptions::default()).unwrap();
    assert!(dp.validate().is_ok());
    assert_config_matches(&dp, 0, &g1, 60);
    assert_config_matches(&dp, 1, &g2, 60);
}

#[test]
fn cross_directional_merge_cannot_create_cycle() {
    // g1: mul -> add ; g2: add -> mul. Merging both pairs would create a
    // combinational cycle; the acyclicity constraint must prevent it.
    let mut g1 = Graph::new("muladd");
    let a = g1.input();
    let b = g1.input();
    let c = g1.input();
    let m = g1.add(Op::Mul, &[a, b]);
    let s = g1.add(Op::Add, &[m, c]);
    g1.output(s);

    let mut g2 = Graph::new("addmul");
    let a = g2.input();
    let b = g2.input();
    let c = g2.input();
    let s = g2.add(Op::Add, &[a, b]);
    let m = g2.add(Op::Mul, &[s, c]);
    g2.output(m);

    let (dp, _) = merge_all(&[g1.clone(), g2.clone()], &tech(), &MergeOptions::default()).unwrap();
    assert!(dp.validate().is_ok(), "merged datapath must stay acyclic");
    assert_config_matches(&dp, 0, &g1, 50);
    assert_config_matches(&dp, 1, &g2, 50);
}

#[test]
fn constants_merge_into_reloadable_registers() {
    let g1 = weighted_conv();
    let mut g2 = Graph::new("wconv2");
    let x = g2.input();
    let w = g2.constant(9);
    let m = g2.add(Op::Mul, &[x, w]);
    g2.output(m);
    let (dp, _) = merge_all(&[g1.clone(), g2.clone()], &tech(), &MergeOptions::default()).unwrap();
    // second graph reuses a multiplier and a const register
    assert!(dp.node_count() <= 5, "{dp}");
    assert_config_matches(&dp, 0, &g1, 40);
    assert_config_matches(&dp, 1, &g2, 40);
}

#[test]
fn merge_inserts_muxes_on_conflicting_sources() {
    // same structure, but with const on the other multiplier port side —
    // forces at least one mux
    let g1 = weighted_conv();
    let mut g2 = Graph::new("other");
    let x = g2.input();
    let y = g2.input();
    let m = g2.add(Op::Mul, &[x, y]); // no consts: mul fed by two inputs
    let n = g2.add(Op::Mul, &[m, y]);
    let s = g2.add(Op::Add, &[m, n]);
    g2.output(s);
    let (dp, _) = merge_all(&[g1.clone(), g2.clone()], &tech(), &MergeOptions::default()).unwrap();
    assert!(dp.mux_leg_count() > 0, "conflicting sources need muxes:\n{dp}");
    assert_config_matches(&dp, 0, &g1, 40);
    assert_config_matches(&dp, 1, &g2, 40);
}

#[test]
fn merge_order_area_is_monotone_with_subgraphs() {
    // merging more distinct subgraphs never loses existing configs
    let graphs = vec![mac(), sub_chain(), weighted_conv()];
    let (dp, _) = merge_all(&graphs, &tech(), &MergeOptions::default()).unwrap();
    assert_eq!(dp.configs.len(), 3);
    for (i, g) in graphs.iter().enumerate() {
        assert_config_matches(&dp, i, g, 40);
    }
}

#[test]
fn merge_mined_subgraphs_from_convolution() {
    // end-to-end: mine a conv graph, merge its top-3 subgraphs, verify all
    let mut g = Graph::new("conv");
    let mut acc = None;
    for k in 0..6u16 {
        let i = g.input();
        let w = g.constant(2 + k);
        let m = g.add(Op::Mul, &[i, w]);
        acc = Some(match acc {
            None => m,
            Some(a) => g.add(Op::Add, &[a, m]),
        });
    }
    let out = acc.unwrap();
    g.output(out);
    let mined = mine(
        &g,
        &MinerConfig {
            min_support: 3,
            max_pattern_nodes: 4,
            ..MinerConfig::default()
        },
    )
    .unwrap()
    .subgraphs;
    assert!(mined.len() >= 3);
    let datapaths: Vec<Graph> = mined
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, m)| {
            let mut dpg = m.to_datapath(&g, "sg").unwrap();
            dpg.set_name(format!("sg{i}"));
            dpg
        })
        .collect();
    let (pe, _) = merge_all(&datapaths, &tech(), &MergeOptions::default()).unwrap();
    assert!(pe.validate().is_ok());
    for (i, sg) in datapaths.iter().enumerate() {
        assert_config_matches(&pe, i, sg, 40);
    }
}

// ---------------------------------------------------------------------------
// property test: random DAG pairs merge soundly
// ---------------------------------------------------------------------------

fn arb_graph(name: &'static str) -> impl Strategy<Value = Graph> {
    // build a random small word-only DAG from a sequence of op choices
    let ops = prop::collection::vec((0u8..6, any::<u16>(), any::<u16>()), 1..8);
    ops.prop_map(move |spec| {
        let mut g = Graph::new(name);
        let mut pool: Vec<apex_ir::NodeId> = vec![g.input(), g.input()];
        for (sel, x, y) in spec {
            let a = pool[(x as usize) % pool.len()];
            let b = pool[(y as usize) % pool.len()];
            let n = match sel {
                0 => g.add(Op::Add, &[a, b]),
                1 => g.add(Op::Sub, &[a, b]),
                2 => g.add(Op::Mul, &[a, b]),
                3 => g.add(Op::Smax, &[a, b]),
                4 => {
                    let c = g.constant(x);
                    g.add(Op::Mul, &[a, c])
                }
                _ => g.add(Op::Lshr, &[a, b]),
            };
            pool.push(n);
        }
        let last = *pool.last().unwrap();
        g.output(last);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_merges_preserve_both_configs(g1 in arb_graph("p1"), g2 in arb_graph("p2")) {
        let (dp, _) = merge_graph(
            &MergedDatapath::from_graph(&g1),
            &g2,
            &tech(),
            &MergeOptions::default(),
        )
        .unwrap();
        prop_assert!(dp.validate().is_ok());
        assert_config_matches(&dp, 0, &g1, 12);
        assert_config_matches(&dp, 1, &g2, 12);
        // merged hardware never exceeds the sum of parts
        let parts = MergedDatapath::from_graph(&g1).node_count()
            + MergedDatapath::from_graph(&g2).node_count();
        prop_assert!(dp.node_count() <= parts);
    }
}

#[test]
fn tiny_clique_budget_truncates_but_merges_validly() {
    use apex_fault::Provenance;
    // zero search nodes: the branch-and-bound cannot even open the root
    // (with the colored bound, tiny instances complete inside one node,
    // so a 1-node budget no longer reliably truncates)
    let opts = MergeOptions {
        clique_budget: 0,
        ..MergeOptions::default()
    };
    let (dp, reports) = merge_all(&[mac(), sub_chain()], &tech(), &opts).unwrap();
    assert!(dp.validate().is_ok(), "greedy incumbent must be a valid merge");
    assert_eq!(dp.configs.len(), 2);
    assert!(
        reports.iter().any(|r| r.provenance == Provenance::TruncatedByBudget),
        "a zero clique budget must report truncation: {reports:?}"
    );
    // both source graphs still execute on the degraded datapath
    assert_config_matches(&dp, 0, &mac(), 50);
    assert_config_matches(&dp, 1, &sub_chain(), 50);
}

#[test]
fn tiny_memory_budget_truncates_but_merges_validly() {
    use apex_fault::{Provenance, ResourceBudget};
    // far below the compatibility matrix's footprint: the candidate list
    // shrinks deterministically, the merge still produces a valid datapath
    // implementing both graphs, and the report says TruncatedByBudget
    let opts = MergeOptions {
        resource: ResourceBudget::with_max_bytes(16),
        ..MergeOptions::default()
    };
    let (dp, reports) = merge_all(&[mac(), sub_chain()], &tech(), &opts).unwrap();
    assert!(dp.validate().is_ok(), "degraded merge must stay valid");
    assert_eq!(dp.configs.len(), 2);
    assert!(
        reports.iter().any(|r| r.provenance == Provenance::TruncatedByBudget),
        "a tiny memory budget must report truncation: {reports:?}"
    );
    assert_config_matches(&dp, 0, &mac(), 50);
    assert_config_matches(&dp, 1, &sub_chain(), 50);
    // deterministic: a second run degrades identically
    let (dp2, reports2) = merge_all(&[mac(), sub_chain()], &tech(), &opts).unwrap();
    assert_eq!(dp.node_count(), dp2.node_count());
    assert_eq!(reports, reports2);
}

#[test]
fn zero_deadline_times_out_but_merges_validly() {
    use apex_fault::{Provenance, StageBudget};
    use std::time::Duration;
    let opts = MergeOptions {
        budget: StageBudget::unlimited().with_deadline(Duration::ZERO),
        ..MergeOptions::default()
    };
    let (dp, reports) = merge_all(&[mac(), sub_chain()], &tech(), &opts).unwrap();
    assert!(dp.validate().is_ok(), "greedy incumbent must be a valid merge");
    assert!(
        reports.iter().any(|r| r.provenance == Provenance::TimedOut),
        "an expired deadline must report a timeout: {reports:?}"
    );
    assert_config_matches(&dp, 0, &mac(), 50);
    assert_config_matches(&dp, 1, &sub_chain(), 50);
}
