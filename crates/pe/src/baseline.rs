//! The baseline general-purpose PE of the paper's Fig. 1 (from the AHA
//! agile flow): an ALU with a full integer op set, a multiplier, a
//! comparator with flag output, a 3-input LUT for bit operations, a select
//! (mux) unit, two 16-bit constant registers, and three 1-bit constant
//! registers. All evaluation in Section 5 compares against this PE.

use crate::spec::PeSpec;
use apex_ir::{Op, OpKind};
use apex_merge::{DpNode, DpSource, MergedDatapath};
use std::collections::BTreeSet;

/// Word-typed operations the baseline ALU supports.
pub const BASELINE_ALU_OPS: &[Op] = &[
    Op::Add,
    Op::Sub,
    Op::Abs,
    Op::Smin,
    Op::Smax,
    Op::Umin,
    Op::Umax,
    Op::Shl,
    Op::Lshr,
    Op::Ashr,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Not,
];

/// Comparison operations producing the baseline PE's flag bit.
pub const BASELINE_CMP_OPS: &[Op] = &[
    Op::Eq,
    Op::Neq,
    Op::Slt,
    Op::Sle,
    Op::Sgt,
    Op::Sge,
    Op::Ult,
    Op::Ule,
    Op::Ugt,
    Op::Uge,
];

/// Every operation kind the baseline PE can execute.
pub fn baseline_op_kinds() -> BTreeSet<OpKind> {
    let mut s: BTreeSet<OpKind> = BASELINE_ALU_OPS.iter().map(|o| o.kind()).collect();
    s.extend(BASELINE_CMP_OPS.iter().map(|o| o.kind()));
    s.extend([
        OpKind::Mul,
        OpKind::Mux,
        OpKind::Lut,
        OpKind::Const,
        OpKind::BitConst,
        OpKind::BitAnd,
        OpKind::BitOr,
        OpKind::BitXor,
        OpKind::BitNot,
        OpKind::BitMux,
    ]);
    s
}

/// Builds the baseline PE (Fig. 1) as a [`PeSpec`] with its hand-designed
/// control overhead.
pub fn baseline_pe() -> PeSpec {
    restricted_pe("pe_base", &baseline_op_kinds(), true)
}

/// Builds a baseline-shaped PE restricted to the given operation kinds —
/// the paper's "PE 1" (APEX-generated, so no legacy control overhead).
///
/// Kinds outside the baseline's repertoire are ignored.
pub fn baseline_pe_with_ops(name: &str, kinds: &BTreeSet<OpKind>) -> PeSpec {
    restricted_pe(name, kinds, false)
}

fn restricted_pe(name: &str, kinds: &BTreeSet<OpKind>, legacy_control: bool) -> PeSpec {
    let mut nodes: Vec<DpNode> = Vec::new();
    // constant registers first (Fig. 1: two 16-bit, three 1-bit)
    let const0 = push(&mut nodes, DpNode::new(Op::Const(0), vec![]));
    let const1 = push(&mut nodes, DpNode::new(Op::Const(0), vec![]));
    let word_srcs = vec![
        DpSource::WordInput(0),
        DpSource::WordInput(1),
        DpSource::Node(const0),
        DpSource::Node(const1),
    ];
    let mut bit_consts = Vec::new();
    if kinds.contains(&OpKind::BitConst)
        || kinds.contains(&OpKind::Lut)
        || kinds.contains(&OpKind::BitMux)
    {
        for _ in 0..3 {
            bit_consts.push(push(&mut nodes, DpNode::new(Op::BitConst(false), vec![])));
        }
    }
    let mut bit_srcs: Vec<DpSource> = vec![
        DpSource::BitInput(0),
        DpSource::BitInput(1),
        DpSource::BitInput(2),
    ];
    bit_srcs.extend(bit_consts.iter().map(|&i| DpSource::Node(i)));

    let alu_ops: Vec<Op> = BASELINE_ALU_OPS
        .iter()
        .copied()
        .filter(|o| kinds.contains(&o.kind()))
        .collect();
    let mut word_out_cands: Vec<u32> = Vec::new();
    if !alu_ops.is_empty() {
        let alu = push(
            &mut nodes,
            DpNode {
                ops: alu_ops,
                port_candidates: vec![word_srcs.clone(), word_srcs.clone()],
            },
        );
        word_out_cands.push(alu);
    }
    if kinds.contains(&OpKind::Mul) {
        let mul = push(
            &mut nodes,
            DpNode {
                ops: vec![Op::Mul],
                port_candidates: vec![word_srcs.clone(), word_srcs.clone()],
            },
        );
        word_out_cands.push(mul);
    }
    let cmp_ops: Vec<Op> = BASELINE_CMP_OPS
        .iter()
        .copied()
        .filter(|o| kinds.contains(&o.kind()))
        .collect();
    let mut flag_srcs = bit_srcs.clone();
    if !cmp_ops.is_empty() {
        let cmp = push(
            &mut nodes,
            DpNode {
                ops: cmp_ops,
                port_candidates: vec![word_srcs.clone(), word_srcs.clone()],
            },
        );
        flag_srcs.insert(0, DpSource::Node(cmp));
    }
    if kinds.contains(&OpKind::Lut) {
        let lut = push(
            &mut nodes,
            DpNode {
                ops: vec![Op::Lut(0)],
                port_candidates: vec![bit_srcs.clone(), bit_srcs.clone(), bit_srcs.clone()],
            },
        );
        flag_srcs.insert(0, DpSource::Node(lut));
    }
    if kinds.contains(&OpKind::Mux) {
        push(
            &mut nodes,
            DpNode {
                ops: vec![Op::Mux],
                port_candidates: vec![word_srcs.clone(), word_srcs.clone(), flag_srcs.clone()],
            },
        );
    }

    let dp = MergedDatapath {
        name: name.to_owned(),
        nodes,
        word_inputs: 2,
        bit_inputs: 3,
        word_outputs: 1,
        bit_outputs: 1,
        configs: Vec::new(),
    };
    PeSpec::new(name, dp, legacy_control)
}

fn push(nodes: &mut Vec<DpNode>, node: DpNode) -> u32 {
    nodes.push(node);
    (nodes.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_tech::TechModel;

    #[test]
    fn baseline_pe_area_matches_table2() {
        // Table 2 reports 988.81 µm² for the baseline PE core.
        let tech = TechModel::default();
        let pe = baseline_pe();
        let area = pe.area(&tech).total();
        assert!(
            (880.0..=1100.0).contains(&area),
            "baseline PE area {area:.1} µm² should be near the paper's 988.8"
        );
    }

    #[test]
    fn baseline_datapath_is_valid() {
        let pe = baseline_pe();
        assert!(pe.datapath.validate().is_ok());
        assert_eq!(pe.datapath.word_inputs, 2);
        assert_eq!(pe.datapath.bit_inputs, 3);
    }

    #[test]
    fn restricting_ops_shrinks_the_pe() {
        // PE 1 of Section 5.1: camera pipeline drops shl, bitwise logic,
        // and the LUT — and loses the baseline's control overhead.
        let tech = TechModel::default();
        let mut kinds = baseline_op_kinds();
        for k in [OpKind::Shl, OpKind::And, OpKind::Or, OpKind::Xor, OpKind::Not, OpKind::Lut] {
            kinds.remove(&k);
        }
        let pe1 = baseline_pe_with_ops("pe1_camera", &kinds);
        let base = baseline_pe();
        let a1 = pe1.area(&tech).total();
        let ab = base.area(&tech).total();
        assert!(
            a1 < 0.7 * ab,
            "PE1 ({a1:.1}) must be far smaller than baseline ({ab:.1})"
        );
    }

    #[test]
    fn baseline_supports_its_advertised_kinds() {
        let pe = baseline_pe();
        let available: BTreeSet<OpKind> = pe
            .datapath
            .nodes
            .iter()
            .flat_map(|n| n.ops.iter().map(|o| o.kind()))
            .collect();
        for k in [OpKind::Add, OpKind::Mul, OpKind::Lut, OpKind::Mux, OpKind::Ult] {
            assert!(available.contains(&k), "{k:?}");
        }
    }

    #[test]
    fn minimal_pe_has_no_optional_units() {
        let kinds: BTreeSet<OpKind> = [OpKind::Add, OpKind::Const].into_iter().collect();
        let pe = baseline_pe_with_ops("adder_only", &kinds);
        // const0, const1, alu
        assert_eq!(pe.datapath.node_count(), 3);
    }
}
