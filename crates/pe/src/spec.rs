//! PE specification: a merged datapath plus everything needed to realize
//! it — cost models, pipelining state, and RTL generation hooks.
//!
//! This is our substitute for a PEak program (paper Section 4.1): one
//! source of truth from which the functional model
//! ([`apex_merge::MergedDatapath::evaluate`]), the hardware description
//! ([`crate::emit_verilog`]), and the mapper's rewrite rules
//! (`apex-rewrite`) are all derived.

use crate::cost::{config_energy, pe_area, structural_critical_path, worst_critical_path, PeArea};
use apex_merge::{DatapathConfig, DpSource, MergedDatapath};
use apex_tech::TechModel;
use serde::{Deserialize, Serialize};

/// Pipelining state of a PE (assigned by `apex-pipeline`, Section 4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PePipeline {
    /// Pipeline stage of each datapath node (0-based).
    pub stage_of_node: Vec<u32>,
    /// Total number of stages (1 = purely combinational).
    pub stages: u32,
}

/// A processing-element specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeSpec {
    /// Variant name (e.g. "pe_base", "pe_ip", "pe_camera_4").
    pub name: String,
    /// The architectural datapath.
    pub datapath: MergedDatapath,
    /// Whether this is the hand-designed baseline PE with its fixed
    /// instruction-decode overhead (APEX-generated PEs: `false`).
    pub legacy_control: bool,
    /// Pipelining, if the automated pipeliner has run.
    pub pipeline: Option<PePipeline>,
}

impl PeSpec {
    /// Wraps a datapath into a (so far unpipelined) specification.
    pub fn new(name: &str, datapath: MergedDatapath, legacy_control: bool) -> Self {
        PeSpec {
            name: name.to_owned(),
            datapath,
            legacy_control,
            pipeline: None,
        }
    }

    /// PE core area including pipeline registers, µm².
    pub fn area(&self, tech: &TechModel) -> PeArea {
        let mut area = pe_area(&self.datapath, tech, self.legacy_control);
        if let Some(p) = &self.pipeline {
            let regs = self.pipeline_register_count(p);
            area.functional_units += regs as f64 * tech.area(apex_ir::OpKind::Reg);
        }
        area
    }

    /// Number of 16-bit-equivalent pipeline registers the stage assignment
    /// implies. Registers sit *after* each port's configuration mux, so a
    /// port costs one register per stage boundary between its earliest
    /// source and the node — not one per mux leg.
    pub fn pipeline_register_count(&self, p: &PePipeline) -> usize {
        let mut regs = 0usize;
        for (v, node) in self.datapath.nodes.iter().enumerate() {
            for port in &node.port_candidates {
                if port.is_empty() {
                    continue;
                }
                let min_src_stage = port
                    .iter()
                    .map(|src| match src {
                        DpSource::Node(u) => p.stage_of_node[*u as usize],
                        _ => 0,
                    })
                    .min()
                    .unwrap_or(0);
                regs += (p.stage_of_node[v].saturating_sub(min_src_stage)) as usize;
            }
        }
        regs
    }

    /// Input-to-output latency in cycles (pipeline depth − 1 for staged
    /// PEs, 0 for combinational ones).
    pub fn latency(&self) -> u32 {
        self.pipeline.as_ref().map_or(0, |p| p.stages - 1)
    }

    /// Dynamic energy of one configuration execution, pJ.
    pub fn energy(&self, cfg: &DatapathConfig, tech: &TechModel) -> f64 {
        let mut e = config_energy(&self.datapath, cfg, tech, self.legacy_control);
        if let Some(p) = &self.pipeline {
            e += self.pipeline_register_count(p) as f64 * tech.energy(apex_ir::OpKind::Reg);
        }
        e
    }

    /// Worst-case combinational delay per clock cycle, ns. For pipelined
    /// PEs this is the worst *stage* delay; unpipelined PEs report their
    /// full critical path.
    pub fn cycle_delay(&self, tech: &TechModel) -> f64 {
        match &self.pipeline {
            None => {
                if self.datapath.configs.is_empty() {
                    structural_critical_path(&self.datapath, tech)
                } else {
                    worst_critical_path(&self.datapath, tech)
                }
            }
            Some(p) => self.max_stage_delay(p, tech),
        }
    }

    /// Worst combinational delay within any single pipeline stage, ns.
    #[allow(clippy::expect_used)]
    pub fn max_stage_delay(&self, p: &PePipeline, tech: &TechModel) -> f64 {
        // invariant: merged datapaths are built acyclic by construction
        let order = self.datapath.topo_order().expect("valid datapath");
        let mut arrival = vec![0.0f64; self.datapath.nodes.len()];
        let mut worst = 0.0f64;
        for &i in &order {
            let node = &self.datapath.nodes[i as usize];
            let mut in_arr = 0.0f64;
            for port in &node.port_candidates {
                for src in port {
                    if let DpSource::Node(u) = src {
                        // a stage boundary resets the path
                        if p.stage_of_node[*u as usize] == p.stage_of_node[i as usize] {
                            in_arr = in_arr.max(arrival[*u as usize]);
                        }
                    }
                }
                if port.len() > 1 {
                    in_arr += 0.02;
                }
            }
            let slowest = node
                .ops
                .iter()
                .map(|op| tech.delay(op.kind()))
                .fold(0.0, f64::max);
            arrival[i as usize] = in_arr + slowest;
            worst = worst.max(arrival[i as usize]);
        }
        worst
    }

    /// Maximum clock frequency in GHz given the cycle delay.
    pub fn max_frequency_ghz(&self, tech: &TechModel) -> f64 {
        1.0 / self.cycle_delay(tech).max(1e-3)
    }

    /// Number of 16-bit input connection boxes this PE needs in the CGRA.
    pub fn word_input_count(&self) -> usize {
        self.datapath.word_inputs
    }

    /// Number of 1-bit input connection boxes this PE needs.
    pub fn bit_input_count(&self) -> usize {
        self.datapath.bit_inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{Graph, Op};

    fn mac_spec() -> PeSpec {
        let mut g = Graph::new("mac");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        g.output(s);
        PeSpec::new("mac", MergedDatapath::from_graph(&g), false)
    }

    #[test]
    fn pipelining_reduces_cycle_delay_and_adds_registers() {
        let tech = TechModel::default();
        let mut spec = mac_spec();
        let flat_delay = spec.cycle_delay(&tech);
        let flat_area = spec.area(&tech).total();
        // put the multiplier in stage 0, the adder in stage 1
        spec.pipeline = Some(PePipeline {
            stage_of_node: vec![0, 1],
            stages: 2,
        });
        assert!(spec.cycle_delay(&tech) < flat_delay);
        assert!(spec.area(&tech).total() > flat_area);
        assert_eq!(spec.latency(), 1);
    }

    #[test]
    fn register_count_counts_stage_crossings() {
        let spec = mac_spec();
        let p = PePipeline {
            stage_of_node: vec![0, 2],
            stages: 3,
        };
        // the mul→add edge crosses two boundaries; the adder's other
        // input (external) is registered twice as well
        assert_eq!(spec.pipeline_register_count(&p), 4);
    }

    #[test]
    fn unpipelined_latency_is_zero() {
        let spec = mac_spec();
        assert_eq!(spec.latency(), 0);
        assert!(spec.max_frequency_ghz(&TechModel::default()) > 0.0);
    }
}
