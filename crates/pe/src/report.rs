//! PE datasheet generation: a human-readable summary of a PE
//! specification — functional units, configuration space, I/O, cost
//! breakdown, and per-configuration timing — plus a self-checking Verilog
//! testbench for the emitted RTL.

use crate::cost::{config_bits, config_critical_path, config_energy};
use crate::spec::PeSpec;
use apex_merge::{DatapathConfig, DpSource};
use apex_tech::TechModel;
use std::fmt::Write as _;

/// Renders a datasheet for the PE.
pub fn datasheet(spec: &PeSpec, tech: &TechModel) -> String {
    let dp = &spec.datapath;
    let area = spec.area(tech);
    let mut s = String::new();
    let _ = writeln!(s, "PE '{}'", spec.name);
    let _ = writeln!(
        s,
        "  kind          : {}",
        if spec.legacy_control {
            "hand-designed general-purpose (baseline)"
        } else {
            "APEX-generated"
        }
    );
    let _ = writeln!(
        s,
        "  I/O           : {} word + {} bit inputs, {} word + {} bit outputs",
        dp.word_inputs, dp.bit_inputs, dp.word_outputs, dp.bit_outputs
    );
    let _ = writeln!(s, "  config bits   : {}", config_bits(dp));
    let _ = writeln!(
        s,
        "  area          : {:.1} um2 (FUs {:.1}, muxes {:.1}, config {:.1}, control {:.1})",
        area.total(),
        area.functional_units,
        area.muxes,
        area.config,
        area.control
    );
    let _ = writeln!(
        s,
        "  cycle delay   : {:.2} ns ({} pipeline stage(s))",
        spec.cycle_delay(tech),
        spec.pipeline.as_ref().map_or(1, |p| p.stages)
    );
    let _ = writeln!(s, "  functional units:");
    for (i, node) in dp.nodes.iter().enumerate() {
        let ops: Vec<String> = node.ops.iter().map(|o| o.to_string()).collect();
        let mux_legs: usize = node
            .port_candidates
            .iter()
            .map(|p| p.len().saturating_sub(1))
            .sum();
        let _ = writeln!(
            s,
            "    n{i:<3} [{}] {} port(s), {} mux leg(s)",
            ops.join("|"),
            node.arity(),
            mux_legs
        );
    }
    if !dp.configs.is_empty() {
        let _ = writeln!(s, "  stored configurations:");
        for cfg in &dp.configs {
            let active = cfg.node_cfg.iter().flatten().count();
            let _ = writeln!(
                s,
                "    {:<20} {} active unit(s), {:.2} ns, {:.2} pJ",
                cfg.name,
                active,
                config_critical_path(dp, cfg, tech),
                config_energy(dp, cfg, tech, spec.legacy_control)
            );
        }
    }
    s
}

/// Emits a self-checking Verilog testbench for one configuration of the
/// PE: applies the given input vectors, compares against the expected
/// outputs (computed by the functional model), and `$display`s PASS/FAIL.
///
/// # Panics
/// Panics if the configuration is invalid for the datapath.
// invariant: the `expect` below — stored configurations were
// validate_config-checked when the PE was built
#[allow(clippy::expect_used)]
pub fn emit_testbench(
    spec: &PeSpec,
    cfg: &DatapathConfig,
    word_vectors: &[Vec<u16>],
    bit_vectors: &[Vec<bool>],
) -> String {
    let dp = &spec.datapath;
    assert_eq!(word_vectors.len(), bit_vectors.len(), "vector count mismatch");
    let module = sanitize(&spec.name);
    let packed = pack_bits(dp, cfg);
    let mut s = String::new();
    let _ = writeln!(s, "// Self-checking testbench for PE '{}'", spec.name);
    let _ = writeln!(s, "`timescale 1ns/1ps");
    let _ = writeln!(s, "module tb_{module};");
    let _ = writeln!(s, "  reg clk = 0;");
    let _ = writeln!(s, "  always #0.55 clk = ~clk;");
    let _ = writeln!(s, "  reg [{}:0] cfg;", packed.len().max(1) - 1);
    for k in 0..dp.word_inputs {
        let _ = writeln!(s, "  reg [15:0] word_in{k};");
    }
    for k in 0..dp.bit_inputs {
        let _ = writeln!(s, "  reg bit_in{k};");
    }
    for o in 0..dp.word_outputs {
        let _ = writeln!(s, "  wire [15:0] word_out{o};");
    }
    for o in 0..dp.bit_outputs {
        let _ = writeln!(s, "  wire bit_out{o};");
    }
    let mut ports = vec![".clk(clk)".to_owned(), ".cfg(cfg)".to_owned()];
    for k in 0..dp.word_inputs {
        ports.push(format!(".word_in{k}(word_in{k})"));
    }
    for k in 0..dp.bit_inputs {
        ports.push(format!(".bit_in{k}(bit_in{k})"));
    }
    for o in 0..dp.word_outputs {
        ports.push(format!(".word_out{o}(word_out{o})"));
    }
    for o in 0..dp.bit_outputs {
        ports.push(format!(".bit_out{o}(bit_out{o})"));
    }
    let _ = writeln!(s, "  {module} dut ({});", ports.join(", "));
    let _ = writeln!(s, "  integer errors = 0;");
    let _ = writeln!(s, "  initial begin");
    let mut cfg_bits = String::new();
    for b in packed.iter().rev() {
        cfg_bits.push(if *b { '1' } else { '0' });
    }
    let _ = writeln!(s, "    cfg = {}'b{};", packed.len(), cfg_bits);
    for (v, (words, bits)) in word_vectors.iter().zip(bit_vectors).enumerate() {
        // pad vectors onto PE ports through the configuration's input maps
        let mut pe_words = vec![0u16; dp.word_inputs];
        for (i, &w) in words.iter().enumerate() {
            pe_words[cfg.word_input_map[i] as usize] = w;
        }
        let mut pe_bits = vec![false; dp.bit_inputs];
        for (i, &b) in bits.iter().enumerate() {
            pe_bits[cfg.bit_input_map[i] as usize] = b;
        }
        for (k, w) in pe_words.iter().enumerate() {
            let _ = writeln!(s, "    word_in{k} = 16'd{w};");
        }
        for (k, b) in pe_bits.iter().enumerate() {
            let _ = writeln!(s, "    bit_in{k} = 1'b{};", u8::from(*b));
        }
        // invariant: `cfg` comes from the spec's own stored configurations,
        // which validate_config checked when the PE was built
        let (exp_w, exp_b) = dp
            .evaluate(cfg, &pe_words, &pe_bits)
            .expect("valid configuration");
        let settle = spec.pipeline.as_ref().map_or(1, |p| p.stages) + 1;
        let _ = writeln!(s, "    repeat ({settle}) @(posedge clk);");
        let _ = writeln!(s, "    #0.1;");
        for (o, e) in exp_w.iter().enumerate() {
            let _ = writeln!(
                s,
                "    if (word_out{o} !== 16'd{e}) begin $display(\"FAIL v{v} word_out{o}: %0d != {e}\", word_out{o}); errors = errors + 1; end"
            );
        }
        for (o, e) in exp_b.iter().enumerate() {
            let _ = writeln!(
                s,
                "    if (bit_out{o} !== 1'b{}) begin $display(\"FAIL v{v} bit_out{o}\"); errors = errors + 1; end",
                u8::from(*e)
            );
        }
    }
    let _ = writeln!(
        s,
        "    if (errors == 0) $display(\"PASS: {} vectors\"); else $display(\"FAIL: %0d errors\", errors);",
        word_vectors.len()
    );
    let _ = writeln!(s, "    $finish;");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s, "endmodule");
    s
}

/// Packs a configuration into bits with the emitter's layout (mirrors
/// `apex_cgra::pack_config`, kept here so the PE crate stays standalone).
fn pack_bits(dp: &apex_merge::MergedDatapath, cfg: &DatapathConfig) -> Vec<bool> {
    use apex_ir::Op;
    let mut bits: Vec<bool> = Vec::new();
    let push_val = |bits: &mut Vec<bool>, value: u64, width: usize| {
        for k in 0..width {
            bits.push((value >> k) & 1 == 1);
        }
    };
    let width_for = |choices: usize| -> usize {
        if choices <= 1 {
            0
        } else {
            (usize::BITS - (choices - 1).leading_zeros()) as usize
        }
    };
    for (i, node) in dp.nodes.iter().enumerate() {
        let nc = cfg.node_cfg.get(i).and_then(Option::as_ref);
        let op_idx = nc
            .and_then(|nc| {
                node.ops.iter().position(|o| match (o, &nc.op) {
                    (Op::Const(_), Op::Const(_)) => true,
                    (Op::BitConst(_), Op::BitConst(_)) => true,
                    (Op::Lut(_), Op::Lut(_)) => true,
                    (a, b) => a == b,
                })
            })
            .unwrap_or(0);
        push_val(&mut bits, op_idx as u64, width_for(node.ops.len()));
        for (k, op) in node.ops.iter().enumerate() {
            let active = nc.filter(|_| k == op_idx);
            match op {
                Op::Const(_) => {
                    let v = match active.map(|nc| nc.op) {
                        Some(Op::Const(v)) => v,
                        _ => 0,
                    };
                    push_val(&mut bits, u64::from(v), 16);
                }
                Op::BitConst(_) => {
                    let v = matches!(active.map(|nc| nc.op), Some(Op::BitConst(true)));
                    push_val(&mut bits, u64::from(v), 1);
                }
                Op::Lut(_) => {
                    let v = match active.map(|nc| nc.op) {
                        Some(Op::Lut(t)) => t,
                        _ => 0,
                    };
                    push_val(&mut bits, u64::from(v), 8);
                }
                _ => {}
            }
        }
        for (p, cands) in node.port_candidates.iter().enumerate() {
            let sel = nc.and_then(|nc| nc.port_sel.get(p)).copied().unwrap_or(0);
            push_val(&mut bits, u64::from(sel), width_for(cands.len()));
        }
    }
    let total_sources = dp.nodes.len() + dp.word_inputs + dp.bit_inputs;
    let w = width_for(total_sources);
    let src_index = |s: DpSource| -> usize {
        match s {
            DpSource::WordInput(k) => k as usize,
            DpSource::BitInput(k) => dp.word_inputs + k as usize,
            DpSource::Node(j) => dp.word_inputs + dp.bit_inputs + j as usize,
        }
    };
    for o in 0..dp.word_outputs {
        let v = cfg.word_out_sel.get(o).map(|s| src_index(*s)).unwrap_or(0);
        push_val(&mut bits, v as u64, w);
    }
    for o in 0..dp.bit_outputs {
        let v = cfg.bit_out_sel.get(o).map(|s| src_index(*s)).unwrap_or(0);
        push_val(&mut bits, v as u64, w);
    }
    if bits.is_empty() {
        bits.push(false);
    }
    bits
}

fn sanitize(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("pe_{s}")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::baseline_pe;
    use apex_ir::{Graph, Op};
    use apex_merge::MergedDatapath;

    fn mac_spec() -> PeSpec {
        let mut g = Graph::new("mac");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        g.output(s);
        PeSpec::new("mac", MergedDatapath::from_graph(&g), false)
    }

    #[test]
    fn datasheet_covers_units_and_configs() {
        let tech = TechModel::default();
        let spec = mac_spec();
        let d = datasheet(&spec, &tech);
        assert!(d.contains("PE 'mac'"));
        assert!(d.contains("APEX-generated"));
        assert!(d.contains("[mul]"));
        assert!(d.contains("stored configurations"));
        let base = datasheet(&baseline_pe(), &tech);
        assert!(base.contains("general-purpose"));
    }

    #[test]
    fn testbench_embeds_expected_values() {
        let spec = mac_spec();
        let cfg = spec.datapath.configs[0].clone();
        let tb = emit_testbench(&spec, &cfg, &[vec![3, 4, 5]], &[vec![]]);
        assert!(tb.contains("module tb_mac"));
        // 3*4+5 = 17 must appear as the expected output
        assert!(tb.contains("16'd17"), "{tb}");
        assert!(tb.contains("$finish"));
        assert_eq!(tb.matches("FAIL").count(), 2, "one check + summary");
    }

    #[test]
    fn testbench_config_width_matches_emitter() {
        let spec = mac_spec();
        let cfg = spec.datapath.configs[0].clone();
        let tb = emit_testbench(&spec, &cfg, &[vec![1, 2, 3]], &[vec![]]);
        let expected = crate::cost::config_bits(&spec.datapath).max(1);
        assert!(
            tb.contains(&format!("reg [{}:0] cfg;", expected - 1)),
            "config register width"
        );
    }
}
