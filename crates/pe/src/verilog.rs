//! Verilog RTL generation from a PE specification.
//!
//! The paper generates PE RTL from PEak via Magma; our single source of
//! truth is the [`PeSpec`], from which this module emits a synthesizable
//! Verilog-2001 module: configuration-register-driven operand muxes, an
//! op-select case per multi-op functional unit, per-configuration constant
//! registers, output muxes, and (for pipelined PEs) stage registers.

use crate::spec::PeSpec;
use apex_merge::{DpSource, MergedDatapath};
use apex_ir::Op;
use std::fmt::Write as _;

/// Allocates configuration-bit slices in the same order as
/// [`crate::config_bits`] counts them.
struct CfgAlloc {
    next: usize,
}

impl CfgAlloc {
    fn take(&mut self, bits: usize) -> Option<(usize, usize)> {
        if bits == 0 {
            return None;
        }
        let lo = self.next;
        self.next += bits;
        Some((lo + bits - 1, lo))
    }
}

fn bits_for(choices: usize) -> usize {
    if choices <= 1 {
        0
    } else {
        (usize::BITS - (choices - 1).leading_zeros()) as usize
    }
}

fn src_name(_dp: &MergedDatapath, src: DpSource) -> String {
    match src {
        DpSource::WordInput(k) => format!("word_in{k}"),
        DpSource::BitInput(k) => format!("bit_in{k}"),
        DpSource::Node(j) => format!("n{j}_out"),
    }
}

fn slice(range: Option<(usize, usize)>) -> String {
    match range {
        Some((hi, lo)) if hi == lo => format!("cfg[{lo}]"),
        Some((hi, lo)) => format!("cfg[{hi}:{lo}]"),
        None => "1'b0".to_owned(),
    }
}

fn op_expr(op: Op, ins: &[String]) -> String {
    let a = ins.first().cloned().unwrap_or_default();
    let b = ins.get(1).cloned().unwrap_or_default();
    let c = ins.get(2).cloned().unwrap_or_default();
    match op {
        Op::Add => format!("{a} + {b}"),
        Op::Sub => format!("{a} - {b}"),
        Op::Mul => format!("{a} * {b}"),
        Op::Abs => format!("($signed({a}) < 0) ? (~{a} + 16'd1) : {a}"),
        Op::Smin => format!("($signed({a}) < $signed({b})) ? {a} : {b}"),
        Op::Smax => format!("($signed({a}) > $signed({b})) ? {a} : {b}"),
        Op::Umin => format!("({a} < {b}) ? {a} : {b}"),
        Op::Umax => format!("({a} > {b}) ? {a} : {b}"),
        Op::Shl => format!("{a} << {b}[3:0]"),
        Op::Lshr => format!("{a} >> {b}[3:0]"),
        Op::Ashr => format!("$signed({a}) >>> {b}[3:0]"),
        Op::And => format!("{a} & {b}"),
        Op::Or => format!("{a} | {b}"),
        Op::Xor => format!("{a} ^ {b}"),
        Op::Not => format!("~{a}"),
        Op::Mux => format!("{c} ? {b} : {a}"),
        Op::Eq => format!("{a} == {b}"),
        Op::Neq => format!("{a} != {b}"),
        Op::Slt => format!("$signed({a}) < $signed({b})"),
        Op::Sle => format!("$signed({a}) <= $signed({b})"),
        Op::Sgt => format!("$signed({a}) > $signed({b})"),
        Op::Sge => format!("$signed({a}) >= $signed({b})"),
        Op::Ult => format!("{a} < {b}"),
        Op::Ule => format!("{a} <= {b}"),
        Op::Ugt => format!("{a} > {b}"),
        Op::Uge => format!("{a} >= {b}"),
        Op::BitAnd => format!("{a} & {b}"),
        Op::BitOr => format!("{a} | {b}"),
        Op::BitXor => format!("{a} ^ {b}"),
        Op::BitNot => format!("~{a}"),
        Op::BitMux => format!("{c} ? {b} : {a}"),
        // payload ops read their configuration slice; handled by caller
        Op::Const(_) | Op::BitConst(_) | Op::Lut(_) => unreachable!("payload op"),
        Op::Input | Op::BitInput | Op::Output | Op::BitOutput | Op::Reg | Op::BitReg
        | Op::Fifo(_) => {
            unreachable!("structural op in datapath")
        }
    }
}

/// Emits a synthesizable Verilog-2001 module for the PE.
///
/// The configuration word layout matches [`crate::config_bits`]; the
/// emitted module declares `localparam CFG_BITS` with the total width.
pub fn emit_verilog(spec: &PeSpec) -> String {
    let dp = &spec.datapath;
    let mut alloc = CfgAlloc { next: 0 };
    let mut body = String::new();
    let stage = |i: usize| -> u32 {
        spec.pipeline
            .as_ref()
            .map_or(0, |p| p.stage_of_node[i])
    };
    let src_stage = |s: DpSource| -> u32 {
        match s {
            DpSource::Node(j) => stage(j as usize),
            _ => 0,
        }
    };

    // per-source delayed versions needed by pipeline stage crossings
    let mut max_delay: std::collections::BTreeMap<String, (usize, bool)> =
        std::collections::BTreeMap::new(); // name -> (max delay, is_word)
    if spec.pipeline.is_some() {
        for (v, node) in dp.nodes.iter().enumerate() {
            for port in &node.port_candidates {
                for &src in port {
                    let d = stage(v).saturating_sub(src_stage(src)) as usize;
                    if d > 0 {
                        let name = src_name(dp, src);
                        let is_word = dp.source_type(src) == apex_ir::ValueType::Word;
                        let e = max_delay.entry(name).or_insert((0, is_word));
                        e.0 = e.0.max(d);
                    }
                }
            }
        }
    }

    let delayed = |name: &str, d: usize| -> String {
        if d == 0 {
            name.to_owned()
        } else {
            format!("{name}_d{d}")
        }
    };

    for (i, node) in dp.nodes.iter().enumerate() {
        let out_word = node.output_type() == apex_ir::ValueType::Word;
        let width = if out_word { "[15:0] " } else { "" };
        let _ = writeln!(body, "  // node {i}: {:?}", node.ops);
        let op_sel = alloc.take(bits_for(node.ops.len()));
        // payload slices in op order
        let payloads: Vec<Option<(usize, usize)>> = node
            .ops
            .iter()
            .map(|op| match op {
                Op::Const(_) => alloc.take(16),
                Op::BitConst(_) => alloc.take(1),
                Op::Lut(_) => alloc.take(8),
                _ => None,
            })
            .collect();
        // port muxes
        let mut port_wires = Vec::new();
        for (p, cands) in node.port_candidates.iter().enumerate() {
            let sel = alloc.take(bits_for(cands.len()));
            let wname = format!("n{i}_p{p}");
            let pw = if dp
                .nodes[i]
                .ops
                .iter()
                .any(|op| p < op.arity() && op.input_types()[p] == apex_ir::ValueType::Word)
            {
                "[15:0] "
            } else {
                ""
            };
            if cands.is_empty() {
                let _ = writeln!(body, "  wire {pw}{wname} = 0; // unused port");
            } else if cands.len() == 1 {
                let d = stage(i).saturating_sub(src_stage(cands[0])) as usize;
                let _ = writeln!(
                    body,
                    "  wire {pw}{wname} = {};",
                    delayed(&src_name(dp, cands[0]), d)
                );
            } else {
                let mut expr = String::new();
                for (k, &c) in cands.iter().enumerate().rev() {
                    let d = stage(i).saturating_sub(src_stage(c)) as usize;
                    let name = delayed(&src_name(dp, c), d);
                    if k == cands.len() - 1 {
                        expr = name;
                    } else {
                        expr = format!("({} == {k}) ? {name} : ({expr})", slice(sel));
                    }
                }
                let _ = writeln!(body, "  wire {pw}{wname} = {expr};");
            }
            port_wires.push(wname);
        }
        // op evaluation
        if node.ops.len() == 1 {
            let op = node.ops[0];
            let expr = match op {
                Op::Const(_) | Op::BitConst(_) => slice(payloads[0]),
                Op::Lut(_) => format!(
                    "{}[{{n{i}_p2, n{i}_p1, n{i}_p0}}]",
                    slice(payloads[0])
                ),
                _ => op_expr(op, &port_wires),
            };
            let _ = writeln!(body, "  wire {width}n{i}_out = {expr};");
        } else {
            let _ = writeln!(body, "  reg {width}n{i}_out_c;");
            let _ = writeln!(body, "  always @(*) begin");
            let _ = writeln!(body, "    case ({})", slice(op_sel));
            for (k, op) in node.ops.iter().enumerate() {
                let expr = match op {
                    Op::Const(_) | Op::BitConst(_) => slice(payloads[k]),
                    Op::Lut(_) => format!(
                        "{}[{{n{i}_p2, n{i}_p1, n{i}_p0}}]",
                        slice(payloads[k])
                    ),
                    _ => op_expr(*op, &port_wires),
                };
                let _ = writeln!(body, "      {k}: n{i}_out_c = {expr};");
            }
            let _ = writeln!(body, "      default: n{i}_out_c = 0;");
            let _ = writeln!(body, "    endcase");
            let _ = writeln!(body, "  end");
            let _ = writeln!(body, "  wire {width}n{i}_out = n{i}_out_c;");
        }
        body.push('\n');
    }

    // pipeline delay chains
    if !max_delay.is_empty() {
        let _ = writeln!(body, "  // pipeline stage registers");
        for (name, (d, is_word)) in &max_delay {
            let w = if *is_word { "[15:0] " } else { "" };
            for k in 1..=*d {
                let _ = writeln!(body, "  reg {w}{name}_d{k};");
            }
            let _ = writeln!(body, "  always @(posedge clk) begin");
            for k in 1..=*d {
                let prev = if k == 1 {
                    name.clone()
                } else {
                    format!("{name}_d{}", k - 1)
                };
                let _ = writeln!(body, "    {name}_d{k} <= {prev};");
            }
            let _ = writeln!(body, "  end");
        }
        body.push('\n');
    }

    // output muxes over the global source space
    let total_sources = dp.nodes.len() + dp.word_inputs + dp.bit_inputs;
    let out_sel_bits = bits_for(total_sources);
    let global = |k: usize| -> String {
        if k < dp.word_inputs {
            format!("word_in{k}")
        } else if k < dp.word_inputs + dp.bit_inputs {
            format!("bit_in{}", k - dp.word_inputs)
        } else {
            format!("n{}_out", k - dp.word_inputs - dp.bit_inputs)
        }
    };
    for o in 0..dp.word_outputs {
        let sel = alloc.take(out_sel_bits);
        let mut expr = "16'd0".to_owned();
        for k in (0..total_sources).rev() {
            // only word-typed sources are legal output selections
            let is_word = if k < dp.word_inputs {
                true
            } else if k < dp.word_inputs + dp.bit_inputs {
                false
            } else {
                dp.nodes[k - dp.word_inputs - dp.bit_inputs].output_type()
                    == apex_ir::ValueType::Word
            };
            if !is_word {
                continue;
            }
            expr = format!("({} == {k}) ? {} : ({expr})", slice(sel), global(k));
        }
        let _ = writeln!(body, "  assign word_out{o} = {expr};");
    }
    for o in 0..dp.bit_outputs {
        let sel = alloc.take(out_sel_bits);
        let mut expr = "1'b0".to_owned();
        for k in (0..total_sources).rev() {
            let is_bit = if k < dp.word_inputs {
                false
            } else if k < dp.word_inputs + dp.bit_inputs {
                true
            } else {
                dp.nodes[k - dp.word_inputs - dp.bit_inputs].output_type()
                    == apex_ir::ValueType::Bit
            };
            if !is_bit {
                continue;
            }
            expr = format!("({} == {k}) ? {} : ({expr})", slice(sel), global(k));
        }
        let _ = writeln!(body, "  assign bit_out{o} = {expr};");
    }

    let cfg_bits = alloc.next.max(1);
    let mut header = String::new();
    let _ = writeln!(header, "// Generated by apex-pe from spec '{}'", spec.name);
    let _ = writeln!(header, "module {} (", sanitize(&spec.name));
    let _ = writeln!(header, "  input  wire clk,");
    let _ = writeln!(header, "  input  wire [{}:0] cfg,", cfg_bits - 1);
    for k in 0..dp.word_inputs {
        let _ = writeln!(header, "  input  wire [15:0] word_in{k},");
    }
    for k in 0..dp.bit_inputs {
        let _ = writeln!(header, "  input  wire bit_in{k},");
    }
    let mut outs = Vec::new();
    for o in 0..dp.word_outputs {
        outs.push(format!("  output wire [15:0] word_out{o}"));
    }
    for o in 0..dp.bit_outputs {
        outs.push(format!("  output wire bit_out{o}"));
    }
    let _ = writeln!(header, "{}", outs.join(",\n"));
    let _ = writeln!(header, ");");
    let _ = writeln!(header, "  localparam CFG_BITS = {cfg_bits};");
    header.push('\n');

    format!("{header}{body}endmodule\n")
}

fn sanitize(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("pe_{s}")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::baseline_pe;
    use crate::cost::config_bits;
    use apex_ir::{Graph, Op};
    use apex_merge::MergedDatapath;
    use crate::spec::{PePipeline, PeSpec};

    fn mac_spec() -> PeSpec {
        let mut g = Graph::new("mac");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        g.output(s);
        PeSpec::new("mac", MergedDatapath::from_graph(&g), false)
    }

    #[test]
    fn emits_wellformed_module() {
        let v = emit_verilog(&mac_spec());
        assert!(v.starts_with("// Generated"));
        assert!(v.contains("module mac ("));
        assert!(v.trim_end().ends_with("endmodule"));
        assert_eq!(v.matches("\nendmodule").count(), 1);
        assert_eq!(v.matches("module ").count(), 1);
    }

    #[test]
    fn config_width_matches_cost_model() {
        for spec in [mac_spec(), baseline_pe()] {
            let v = emit_verilog(&spec);
            let expected = config_bits(&spec.datapath).max(1);
            assert!(
                v.contains(&format!("localparam CFG_BITS = {expected};")),
                "{}: expected {expected} cfg bits\n{v}",
                spec.name
            );
        }
    }

    #[test]
    fn baseline_pe_emits_op_cases() {
        let v = emit_verilog(&baseline_pe());
        assert!(v.contains("case"));
        assert_eq!(v.matches("case (").count(), v.matches("endcase").count());
        // the ALU's add and the comparator's signed compare both appear
        assert!(v.contains(" + "));
        assert!(v.contains("$signed"));
    }

    #[test]
    fn pipelined_pe_declares_stage_registers() {
        let mut spec = mac_spec();
        spec.pipeline = Some(PePipeline {
            stage_of_node: vec![0, 1],
            stages: 2,
        });
        let v = emit_verilog(&spec);
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("_d1"));
    }

    #[test]
    fn every_node_and_port_appears() {
        let spec = baseline_pe();
        let v = emit_verilog(&spec);
        for i in 0..spec.datapath.node_count() {
            assert!(v.contains(&format!("n{i}_out")), "node {i} missing");
        }
        for k in 0..spec.datapath.word_inputs {
            assert!(v.contains(&format!("word_in{k}")));
        }
    }
}
