//! Area, energy, and timing models for PE datapaths.
//!
//! This is the "PE core level" evaluation of the paper (Section 5): the
//! PE's arithmetic/logic units, configuration muxes, constant/configuration
//! registers, and (for the hand-designed baseline only) its fixed
//! instruction-decode and flag-logic overhead.

use apex_merge::{DatapathConfig, DpSource, MergedDatapath};
use apex_tech::TechModel;
use apex_ir::Op;

/// Area breakdown of a PE core, µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeArea {
    /// Functional units (max-area op per unit plus per-op decode).
    pub functional_units: f64,
    /// Configuration-mux legs on node ports.
    pub muxes: f64,
    /// Configuration storage (op selects, mux selects, constants).
    pub config: f64,
    /// Fixed control overhead (baseline PE only).
    pub control: f64,
}

impl PeArea {
    /// Total PE core area.
    pub fn total(&self) -> f64 {
        self.functional_units + self.muxes + self.config + self.control
    }
}

/// Number of configuration bits a datapath needs.
pub fn config_bits(dp: &MergedDatapath) -> usize {
    let mut bits = 0usize;
    for node in &dp.nodes {
        bits += bits_for(node.ops.len());
        // constant-like payloads live in configuration registers
        for op in &node.ops {
            bits += match op {
                Op::Const(_) => 16,
                Op::BitConst(_) => 1,
                Op::Lut(_) => 8,
                _ => 0,
            };
        }
        for port in &node.port_candidates {
            bits += bits_for(port.len());
        }
    }
    // output selection: each output picks among nodes and inputs
    let sources = dp.nodes.len() + dp.word_inputs + dp.bit_inputs;
    bits += (dp.word_outputs + dp.bit_outputs) * bits_for(sources);
    bits
}

fn bits_for(choices: usize) -> usize {
    if choices <= 1 {
        0
    } else {
        (usize::BITS - (choices - 1).leading_zeros()) as usize
    }
}

/// Computes the PE core area of a datapath.
///
/// `legacy_control` adds the baseline PE's fixed instruction-decode/flag
/// overhead (see [`TechModel::baseline_control_overhead`]); APEX-generated
/// PEs pass `false`.
pub fn pe_area(dp: &MergedDatapath, tech: &TechModel, legacy_control: bool) -> PeArea {
    let mut fu = 0.0;
    let mut mux = 0.0;
    for node in &dp.nodes {
        let unit: f64 = node
            .ops
            .iter()
            .map(|op| tech.area(op.kind()))
            .fold(0.0, f64::max);
        fu += unit + tech.decode_area_per_op() * (node.ops.len().saturating_sub(1)) as f64;
        for port in &node.port_candidates {
            if let Some(first) = port.first() {
                let leg = tech.mux_leg_area(dp.source_type(*first));
                mux += leg * (port.len().saturating_sub(1)) as f64;
            }
        }
    }
    // output muxes: a single output is hardwired to its driver and needs
    // no select leg at all; each additional output adds one leg (matching
    // the per-port leg model above)
    mux += tech.mux_leg_area(apex_ir::ValueType::Word) * dp.word_outputs.saturating_sub(1) as f64;
    let config = config_bits(dp) as f64 * tech.fabric.config_bit_area;
    let control = if legacy_control {
        tech.baseline_control_overhead()
    } else {
        0.0
    };
    PeArea {
        functional_units: fu,
        muxes: mux,
        config,
        control,
    }
}

/// Dynamic energy of executing one configuration for one cycle, pJ.
///
/// Inactive functional units are operand-gated; the PE pays its idle/clock
/// energy regardless (larger for the baseline PE due to its control
/// logic).
pub fn config_energy(
    dp: &MergedDatapath,
    cfg: &DatapathConfig,
    tech: &TechModel,
    legacy_control: bool,
) -> f64 {
    // the hand-designed general-purpose PE burns substantially more energy
    // per executed op: instruction decode toggles every cycle, the wide
    // ALU drags parasitics through every operation, and operand isolation
    // of unused units is imperfect. APEX-generated PEs are bare datapaths
    // with plain configuration registers. This gap is what the paper's
    // 69-82% PE-level energy reductions (Section 5.2) are made of.
    let (op_factor, idle) = if legacy_control {
        (2.2, tech.fabric.pe_idle_energy + 0.35)
    } else {
        (1.0, tech.fabric.pe_idle_energy)
    };
    let mut e = idle;
    for (node, nc) in dp.nodes.iter().zip(&cfg.node_cfg) {
        let Some(nc) = nc else { continue };
        e += tech.energy(nc.op.kind()) * op_factor;
        // active mux legs burn a little switching energy
        for port in &node.port_candidates {
            if port.len() > 1 {
                e += 0.004;
            }
        }
    }
    e
}

/// Critical-path delay of one configuration, ns: the longest
/// combinational path through the *selected* edges, including a small mux
/// penalty on ports that carry a configuration mux.
#[allow(clippy::expect_used)]
pub fn config_critical_path(dp: &MergedDatapath, cfg: &DatapathConfig, tech: &TechModel) -> f64 {
    // invariant: merged datapaths are built acyclic by construction
    // (merge_graph rejects back-edges), so topo_order cannot fail here
    let order = dp.topo_order().expect("valid datapath");
    let mut arrival = vec![0.0f64; dp.nodes.len()];
    for &i in &order {
        let Some(nc) = &cfg.node_cfg[i as usize] else {
            continue;
        };
        let node = &dp.nodes[i as usize];
        let mut input_arrival = 0.0f64;
        for (p, &sel) in nc.port_sel.iter().enumerate() {
            let src = node.port_candidates[p][sel as usize];
            let t = match src {
                DpSource::Node(j) => arrival[j as usize],
                _ => 0.0,
            };
            let mux_pen = if node.port_candidates[p].len() > 1 {
                0.02
            } else {
                0.0
            };
            input_arrival = input_arrival.max(t + mux_pen);
        }
        arrival[i as usize] = input_arrival + tech.delay(nc.op.kind());
    }
    let out_t = |src: &DpSource| match src {
        DpSource::Node(j) => arrival[*j as usize],
        _ => 0.0,
    };
    cfg.word_out_sel
        .iter()
        .chain(&cfg.bit_out_sel)
        .map(out_t)
        .fold(0.0, f64::max)
}

/// The worst critical path over every stored configuration, ns. PEs whose
/// worst path exceeds the target clock need pipelining (Section 4.2).
pub fn worst_critical_path(dp: &MergedDatapath, tech: &TechModel) -> f64 {
    dp.configs
        .iter()
        .map(|cfg| config_critical_path(dp, cfg, tech))
        .fold(0.0, f64::max)
}

/// Structural upper bound on the combinational path, ns: longest path over
/// the union of candidate edges with each node at its slowest op. Used for
/// PEs without stored configurations (e.g. the baseline PE).
#[allow(clippy::expect_used)]
pub fn structural_critical_path(dp: &MergedDatapath, tech: &TechModel) -> f64 {
    // invariant: merged datapaths are built acyclic by construction
    let order = dp.topo_order().expect("valid datapath");
    let mut arrival = vec![0.0f64; dp.nodes.len()];
    let mut worst = 0.0f64;
    for &i in &order {
        let node = &dp.nodes[i as usize];
        let mut input_arrival = 0.0f64;
        for port in &node.port_candidates {
            for src in port {
                if let DpSource::Node(j) = src {
                    input_arrival = input_arrival.max(arrival[*j as usize]);
                }
            }
            if port.len() > 1 {
                input_arrival += 0.02;
            }
        }
        let slowest = node
            .ops
            .iter()
            .map(|op| tech.delay(op.kind()))
            .fold(0.0, f64::max);
        arrival[i as usize] = input_arrival + slowest;
        worst = worst.max(arrival[i as usize]);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{Graph, Op};

    fn mac_dp() -> MergedDatapath {
        let mut g = Graph::new("mac");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        g.output(s);
        MergedDatapath::from_graph(&g)
    }

    #[test]
    fn bits_for_choice_counts() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
    }

    #[test]
    fn mac_area_is_mul_plus_add_plus_config() {
        let tech = TechModel::default();
        let dp = mac_dp();
        let area = pe_area(&dp, &tech, false);
        assert!(area.functional_units >= tech.area(apex_ir::OpKind::Mul));
        assert_eq!(area.muxes, 0.0, "hardwired ports + single output: mux-free");
        assert_eq!(area.control, 0.0);
        assert!(area.total() < 300.0, "specialized MAC PE stays small");
    }

    #[test]
    fn single_output_pays_no_mux_leg_but_extra_outputs_do() {
        // regression: a single-output datapath used to be charged one
        // output-mux leg even though there is nothing to select between
        let tech = TechModel::default();
        let mut dp = mac_dp();
        assert_eq!(dp.word_outputs, 1);
        let one = pe_area(&dp, &tech, false);
        assert_eq!(one.muxes, 0.0, "one output ⇒ no output mux");
        dp.word_outputs = 2;
        let two = pe_area(&dp, &tech, false);
        assert_eq!(
            two.muxes - one.muxes,
            tech.mux_leg_area(apex_ir::ValueType::Word),
            "each output beyond the first adds exactly one word leg"
        );
        dp.word_outputs = 0;
        let zero = pe_area(&dp, &tech, false);
        assert_eq!(zero.muxes, 0.0, "no outputs ⇒ no underflow, no mux");
    }

    #[test]
    fn legacy_control_dominates_baseline_style_pe() {
        let tech = TechModel::default();
        let dp = mac_dp();
        let with = pe_area(&dp, &tech, true).total();
        let without = pe_area(&dp, &tech, false).total();
        assert!((with - without - tech.baseline_control_overhead()).abs() < 1e-9);
    }

    #[test]
    fn mac_critical_path_needs_pipelining() {
        let tech = TechModel::default();
        let dp = mac_dp();
        let cp = worst_critical_path(&dp, &tech);
        assert!(cp > tech.clock_period_ns, "mul+add = {cp} ns > 1.1 ns");
        // structural bound is at least the configured path
        assert!(structural_critical_path(&dp, &tech) >= cp - 1e-9);
    }

    #[test]
    fn energy_counts_active_units_only() {
        let tech = TechModel::default();
        let dp = mac_dp();
        let full = config_energy(&dp, &dp.configs[0], &tech, false);
        let mut cfg = dp.configs[0].clone();
        // deactivate everything: only idle energy remains
        for nc in &mut cfg.node_cfg {
            *nc = None;
        }
        cfg.word_out_sel.clear();
        let idle = config_energy(&dp, &cfg, &tech, false);
        assert!(full > idle);
        assert!((idle - tech.fabric.pe_idle_energy).abs() < 1e-9);
    }

    #[test]
    fn config_bits_grow_with_muxes() {
        let mut dp = mac_dp();
        let before = config_bits(&dp);
        dp.nodes[1].port_candidates[1].push(DpSource::WordInput(0));
        assert!(config_bits(&dp) > before);
    }
}
