//! # apex-pe — processing-element specification and hardware generation
//!
//! Our substitute for PEak + Magma in the APEX flow (paper Section 4.1):
//! a [`PeSpec`] is the single source of truth for a PE, yielding
//!
//! * a functional model (via [`apex_merge::MergedDatapath::evaluate`]),
//! * area / energy / timing estimates ([`pe_area`], [`config_energy`],
//!   [`worst_critical_path`]), and
//! * synthesizable Verilog RTL ([`emit_verilog`]).
//!
//! It also defines the baseline general-purpose PE of Fig. 1
//! ([`baseline_pe`]) that all of Section 5's comparisons are made against,
//! and restricted variants ([`baseline_pe_with_ops`]) corresponding to the
//! paper's "PE 1".
//!
//! # Examples
//!
//! ```
//! use apex_pe::{baseline_pe, emit_verilog};
//! use apex_tech::TechModel;
//!
//! let pe = baseline_pe();
//! let area = pe.area(&TechModel::default()).total();
//! assert!((880.0..1100.0).contains(&area)); // Table 2: 988.81 µm²
//! let rtl = emit_verilog(&pe);
//! assert!(rtl.contains("module pe_base"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod baseline;
mod cost;
mod report;
mod spec;
mod verilog;

pub use baseline::{
    baseline_op_kinds, baseline_pe, baseline_pe_with_ops, BASELINE_ALU_OPS, BASELINE_CMP_OPS,
};
pub use cost::{
    config_bits, config_critical_path, config_energy, pe_area, structural_critical_path,
    worst_critical_path, PeArea,
};
pub use report::{datasheet, emit_testbench};
pub use spec::{PePipeline, PeSpec};
pub use verilog::emit_verilog;
