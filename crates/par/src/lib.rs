//! # apex-par — bounded work-stealing job pool for DSE sweeps
//!
//! APEX's evaluation is a grid of (PE variant × application) runs, and
//! several inner stages (mining per application, rewrite-rule synthesis
//! per template) are embarrassingly parallel too. This crate is the
//! workspace's one scheduler for all of them:
//!
//! * **bounded** — at most `jobs` worker threads, never one thread per
//!   item (the pre-pool synthesis code spawned a thread per template and
//!   oversubscribed the machine on large applications);
//! * **work-stealing** — each worker owns a contiguous slice of the item
//!   range and, when it runs dry, steals the far half of the largest
//!   remaining slice (lazy binary splitting), so a few slow items cannot
//!   strand the rest of the pool;
//! * **deterministic** — results come back in input order regardless of
//!   which worker ran which item, so a parallel sweep is bit-identical to
//!   the serial one;
//! * **no-panic** — a panicking job is caught in the worker and surfaces
//!   as a [`JobPanic`] value for that item only; the pool itself never
//!   unwinds (PR 2's unattended-operation policy).
//!
//! Built on `std::thread::scope` only — no registry dependencies, matching
//! the workspace's in-tree shim policy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use apex_fault::{ApexError, Stage};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A job panicked inside the pool; carries the stringified panic payload.
///
/// Converted into [`ApexError`] (with this value on the cause chain) at
/// the stage boundary via [`JobPanic::into_apex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the item whose job panicked.
    pub index: usize,
    /// The panic payload, downcast to a string where possible.
    pub payload: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.payload)
    }
}

impl std::error::Error for JobPanic {}

impl JobPanic {
    /// Funnels the panic into the workspace error hierarchy, attributing
    /// it to the stage whose job panicked.
    pub fn into_apex(self, stage: Stage) -> ApexError {
        ApexError::with_source(stage, self)
    }
}

fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Process-wide worker-count override installed by [`set_jobs`]
/// (0 = no override).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide worker-count override consulted by
/// [`default_jobs`] before the environment; `0` clears it back to
/// automatic selection. This is where a CLI `--jobs N` flag lands so every
/// pooled stage (mining, rule synthesis, the evaluation sweep) honours it.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// The number of workers to use when the caller does not specify one: the
/// [`set_jobs`] override if installed, then `APEX_JOBS` if set to a
/// positive integer, otherwise the machine's available parallelism,
/// otherwise 1.
pub fn default_jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced >= 1 {
        return forced;
    }
    if let Ok(v) = std::env::var("APEX_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One worker's share of the item range, packed `next << 32 | end` so the
/// owner (popping from the front) and thieves (halving from the back) can
/// race over it with plain compare-exchange loops.
struct Range(AtomicU64);

const fn pack(next: u32, end: u32) -> u64 {
    ((next as u64) << 32) | end as u64
}

const fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, (v & 0xFFFF_FFFF) as u32)
}

impl Range {
    fn new(start: usize, end: usize) -> Self {
        Range(AtomicU64::new(pack(start as u32, end as u32)))
    }

    /// Owner side: claim the front item of the range.
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(next + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(next as usize),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief side: split off the far half of the range, returning the
    /// stolen sub-range.
    fn steal_half(&self) -> Option<(usize, usize)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            let keep = next + (end - next).div_ceil(2);
            if keep >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(next, keep),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((keep as usize, end as usize)),
                Err(seen) => cur = seen,
            }
        }
    }

    fn remaining(&self) -> usize {
        let (next, end) = unpack(self.0.load(Ordering::Acquire));
        end.saturating_sub(next) as usize
    }
}

/// Maps `f` over `items` on at most `jobs` worker threads, returning the
/// results **in input order**. `f` receives `(index, &item)`.
///
/// A job that panics yields `Err(JobPanic)` for its slot; every other item
/// still completes. With `jobs <= 1` (or one item) everything runs inline
/// on the caller's thread with identical semantics — the serial and
/// parallel paths are the same code, which is what makes "parallel output
/// is bit-identical to serial" a structural property rather than a test
/// hope.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let run_one = |i: usize| -> Result<R, JobPanic> {
        catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|p| JobPanic {
            index: i,
            payload: payload_string(p),
        })
    };
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(run_one).collect();
    }

    // block-distribute the range; idle workers rebalance by stealing
    let ranges: Vec<Range> = (0..workers)
        .map(|w| Range::new(w * n / workers, (w + 1) * n / workers))
        .collect();
    let mut buckets: Vec<Vec<(usize, Result<R, JobPanic>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ranges = &ranges;
                let run_one = &run_one;
                scope.spawn(move || {
                    let mut out: Vec<(usize, Result<R, JobPanic>)> = Vec::new();
                    loop {
                        // drain our own range from the front
                        while let Some(i) = ranges[w].pop_front() {
                            out.push((i, run_one(i)));
                        }
                        // steal the far half of the largest remaining range
                        let victim = (0..ranges.len())
                            .filter(|&v| v != w)
                            .max_by_key(|&v| ranges[v].remaining())
                            .filter(|&v| ranges[v].remaining() > 0);
                        let Some(v) = victim else { break };
                        if let Some((s, e)) = ranges[v].steal_half() {
                            for i in s..e {
                                out.push((i, run_one(i)));
                            }
                        }
                        // a failed steal (someone else got there first) just
                        // loops back to look for the next victim
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // the worker body only runs caught closures; an unwind here
                // is impossible, but the no-panic policy forbids expect()
                h.join().unwrap_or_default()
            })
            .collect()
    });

    // reassemble in input order
    let mut slots: Vec<Option<Result<R, JobPanic>>> = (0..n).map(|_| None).collect();
    for bucket in buckets.drain(..) {
        for (i, r) in bucket {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or(Err(JobPanic {
                index: i,
                payload: "worker thread died before returning its results".to_owned(),
            }))
        })
        .collect()
}

/// [`par_map`] with panics funneled straight into [`ApexError`] for the
/// given stage — the form stage crates use to honour the no-panic policy.
pub fn par_map_stage<T, R, F>(
    jobs: usize,
    stage: Stage,
    items: &[T],
    f: F,
) -> Vec<Result<R, ApexError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(jobs, items, f)
        .into_iter()
        .map(|r| r.map_err(|p| p.into_apex(stage)))
        .collect()
}

/// Default watchdog poll period: how often active jobs are inspected for
/// deadline overruns and pending interrupts. This is the "time-slice" in
/// the no-hang guarantee: a hung job is cancelled within its deadline
/// plus one slice.
pub const DEFAULT_TIME_SLICE: Duration = Duration::from_millis(20);

/// Supervision policy for [`par_map_supervised`].
#[derive(Debug, Clone, Default)]
pub struct WatchdogOptions {
    /// Per-job wall-clock deadline. A job running longer gets its
    /// [`JobCtx`] cancel flag raised (cooperative — the job observes it
    /// through the stage budgets it fans the flag into) and is marked
    /// timed-out.
    pub job_deadline: Option<Duration>,
    /// Sweep-wide interrupt (Ctrl-C). When it reads `true`, every active
    /// job's cancel flag is raised and jobs that start afterwards begin
    /// pre-cancelled, so the pool drains instead of hanging.
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Watchdog poll period; `Duration::ZERO` selects
    /// [`DEFAULT_TIME_SLICE`].
    pub poll: Duration,
}

impl WatchdogOptions {
    /// Whether any supervision is configured at all.
    fn is_active(&self) -> bool {
        self.job_deadline.is_some() || self.interrupt.is_some()
    }
}

/// Per-job supervision handles handed to a [`par_map_supervised`] job.
#[derive(Debug)]
pub struct JobCtx {
    /// Cooperative cancellation flag: raised by the watchdog on deadline
    /// overrun or sweep interrupt. Fan it into every
    /// `StageBudget::with_cancel` the job creates.
    pub cancel: Arc<AtomicBool>,
    timed_out: Arc<AtomicBool>,
}

impl JobCtx {
    /// A context with no supervision attached (inline callers, tests).
    pub fn detached() -> Self {
        JobCtx {
            cancel: Arc::new(AtomicBool::new(false)),
            timed_out: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether the watchdog cancelled this job for exceeding its deadline
    /// (as opposed to a sweep-wide interrupt).
    pub fn timed_out(&self) -> bool {
        self.timed_out.load(Ordering::Relaxed)
    }

    /// Whether cancellation (deadline or interrupt) has been requested.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// One registry slot per in-flight job, inspected by the watchdog.
struct ActiveJob {
    started: Instant,
    cancel: Arc<AtomicBool>,
    timed_out: Arc<AtomicBool>,
}

/// Clears a job's registry slot even if the job panics (the unwind is
/// caught by `par_map`'s `catch_unwind`, which would otherwise leave a
/// stale slot for the watchdog to keep poking).
struct SlotGuard<'a> {
    registry: &'a Mutex<Vec<Option<ActiveJob>>>,
    index: usize,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut slots) = self.registry.lock() {
            slots[self.index] = None;
        }
    }
}

/// [`par_map`] with per-job watchdog supervision: each job receives a
/// [`JobCtx`] whose cancel flag the watchdog raises when the job exceeds
/// `watch.job_deadline` or the sweep-wide `watch.interrupt` flag is set.
///
/// Cancellation is cooperative — the job must fan `ctx.cancel` into its
/// stage budgets (or poll [`JobCtx::cancelled`]) — so results remain
/// deterministic: an unsupervised run and a supervised run whose watchdog
/// never fires execute identical code. Results come back in input order,
/// and panics surface as [`JobPanic`] per item, exactly like [`par_map`].
pub fn par_map_supervised<T, R, F>(
    jobs: usize,
    items: &[T],
    watch: &WatchdogOptions,
    f: F,
) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &JobCtx) -> R + Sync,
{
    if !watch.is_active() {
        let f = &f;
        return par_map(jobs, items, move |i, item| f(i, item, &JobCtx::detached()));
    }
    let poll = if watch.poll.is_zero() {
        DEFAULT_TIME_SLICE
    } else {
        watch.poll
    };
    let registry: Mutex<Vec<Option<ActiveJob>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let watchdog = scope.spawn(|| {
            while !done.load(Ordering::Acquire) {
                let interrupted = watch
                    .interrupt
                    .as_ref()
                    .is_some_and(|g| g.load(Ordering::Relaxed));
                if let Ok(slots) = registry.lock() {
                    for slot in slots.iter().flatten() {
                        if interrupted {
                            slot.cancel.store(true, Ordering::Relaxed);
                        }
                        if let Some(deadline) = watch.job_deadline {
                            if slot.started.elapsed() >= deadline {
                                slot.timed_out.store(true, Ordering::Relaxed);
                                slot.cancel.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
                std::thread::park_timeout(poll);
            }
        });
        let out = par_map(jobs, items, |i, item| {
            let ctx = JobCtx::detached();
            if watch
                .interrupt
                .as_ref()
                .is_some_and(|g| g.load(Ordering::Relaxed))
            {
                // dispatched after the interrupt: start pre-cancelled so
                // the job's first budget check drains it immediately
                ctx.cancel.store(true, Ordering::Relaxed);
            }
            if let Ok(mut slots) = registry.lock() {
                slots[i] = Some(ActiveJob {
                    started: Instant::now(),
                    cancel: Arc::clone(&ctx.cancel),
                    timed_out: Arc::clone(&ctx.timed_out),
                });
            }
            let _guard = SlotGuard {
                registry: &registry,
                index: i,
            };
            f(i, item, &ctx)
        });
        done.store(true, Ordering::Release);
        watchdog.thread().unpark();
        // the watchdog body cannot panic; join failure would only repeat one
        let _ = watchdog.join();
        out
    })
}

// ---------------------------------------------------------------------------
// persistent worker pool (long-running services)
// ---------------------------------------------------------------------------

/// A long-lived, bounded-worker job pool for daemon-style callers
/// (`apex serve`): jobs are boxed closures pushed onto one FIFO queue and
/// drained by a fixed set of named worker threads.
///
/// Unlike [`par_map`] — which is scoped to one batch and returns results in
/// input order — this pool runs until [`WorkerPool::shutdown`], and makes
/// its **queue depth and active-job count observable** so an admission
/// layer can shed load *before* enqueueing (backpressure) instead of
/// letting the queue grow without bound. The pool itself never rejects a
/// job: bounding admission is the caller's policy, measured through
/// [`WorkerPool::queued`].
///
/// Panicking jobs are caught per-job (the worker survives and keeps
/// draining), matching the workspace no-panic policy.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<std::collections::VecDeque<PoolJob>>,
    wake: std::sync::Condvar,
    active: AtomicUsize,
    /// `true` once shutdown begins: workers exit instead of sleeping, and
    /// whether they first drain the queue depends on the shutdown mode.
    shutdown: AtomicBool,
    /// `true` when shutdown should abandon queued jobs (graceful drain of
    /// a crash-safe service: queued work is journaled and re-run on
    /// resume, so finishing it here would only delay the exit).
    abandon_queue: AtomicBool,
    panicked: AtomicU64,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queued", &self.queued())
            .field("active", &self.active())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` threads (at least 1), named `apex-pool-N`.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(std::collections::VecDeque::new()),
            wake: std::sync::Condvar::new(),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            abandon_queue: AtomicBool::new(false),
            panicked: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("apex-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // thread spawn only fails on resource exhaustion; a
                    // pool with fewer workers still drains its queue
                    .unwrap_or_else(|_| std::thread::spawn(|| {}))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Enqueues one job. Returns `false` (dropping the job) once shutdown
    /// has begun — the admission layer should have stopped submitting by
    /// then, but a racing submit must not resurrect a draining pool.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if let Ok(mut q) = self.shared.queue.lock() {
            q.push_back(Box::new(job));
            self.shared.wake.notify_one();
            true
        } else {
            false
        }
    }

    /// Jobs enqueued but not yet picked up by a worker — the admission
    /// layer's backpressure signal.
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().map(|q| q.len()).unwrap_or(0)
    }

    /// Jobs currently executing on a worker.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Queued + active: everything admitted but not finished.
    pub fn in_flight(&self) -> usize {
        self.queued() + self.active()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs that panicked (caught; the worker survived).
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Stops the pool and joins every worker.
    ///
    /// With `drain_queue`, workers first finish everything already queued;
    /// without it, queued jobs are dropped and only the jobs already
    /// *running* are waited for (the crash-safe-drain mode: queued work is
    /// journaled elsewhere and re-runs on resume). Either way, running
    /// jobs are never aborted — interrupt them cooperatively (e.g. via
    /// their `JobCtx`/budget cancel flags) before calling this if a
    /// bounded shutdown time matters.
    pub fn shutdown(self, drain_queue: bool) {
        self.shared
            .abandon_queue
            .store(!drain_queue, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for w in self.workers {
            // worker bodies catch job panics; join failure is impossible,
            // and the no-panic policy forbids expect() regardless
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let Ok(mut q) = shared.queue.lock() else {
                return;
            };
            loop {
                if shared.shutdown.load(Ordering::SeqCst)
                    && (shared.abandon_queue.load(Ordering::SeqCst) || q.is_empty())
                {
                    return;
                }
                if let Some(job) = q.pop_front() {
                    break job;
                }
                match shared.wake.wait(q) {
                    Ok(guard) => q = guard,
                    Err(_) => return,
                }
            }
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for jobs in [1, 2, 4, 7] {
            let out = par_map(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            let got: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            let want: Vec<usize> = items.iter().map(|&x| x * 2).collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let items: Vec<u64> = (0..100).map(|i| i * 37 + 11).collect();
        let f = |_: usize, &x: &u64| -> f64 { (x as f64).sqrt() * 3.25 - x as f64 / 7.0 };
        let serial: Vec<f64> = par_map(1, &items, f).into_iter().map(|r| r.unwrap()).collect();
        let parallel: Vec<f64> = par_map(4, &items, f).into_iter().map(|r| r.unwrap()).collect();
        // bit-identical, not approximately equal
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn panic_is_captured_per_item() {
        let items: Vec<usize> = (0..20).collect();
        let out = par_map(3, &items, |_, &x| {
            assert!(x != 13, "unlucky item");
            x
        });
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 13);
                assert!(e.payload.contains("unlucky"), "{e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn panic_converts_into_apex_error_chain() {
        let items = [1u32];
        let out = par_map_stage(1, Stage::Rewrite, &items, |_, _| -> u32 {
            panic!("synth exploded")
        });
        let err = out.into_iter().next().unwrap().unwrap_err();
        assert_eq!(err.stage(), Stage::Rewrite);
        let chain = err.render_chain();
        assert!(chain.contains("synth exploded"), "{chain}");
    }

    #[test]
    fn unbalanced_work_is_stolen() {
        // front-loaded cost: with block distribution and no stealing,
        // worker 0 would run ~all the slow items serially. The test
        // asserts more than one worker participates in the slow half.
        let items: Vec<usize> = (0..32).collect();
        let seen = AtomicUsize::new(0);
        let out = par_map(4, &items, |_, &x| {
            if x < 8 {
                std::thread::sleep(Duration::from_millis(20));
            }
            seen.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(seen.load(Ordering::Relaxed), 32);
        assert_eq!(out.len(), 32);
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        let one = [9u8];
        let out = par_map(4, &one, |_, &x| x + 1);
        assert_eq!(*out[0].as_ref().unwrap(), 10);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items: Vec<usize> = (0..3).collect();
        let out = par_map(64, &items, |_, &x| x);
        assert_eq!(out.len(), 3);
        assert!(out.iter().enumerate().all(|(i, r)| *r.as_ref().unwrap() == i));
    }

    #[test]
    fn range_steal_takes_far_half() {
        let r = Range::new(0, 10);
        assert_eq!(r.pop_front(), Some(0));
        let (s, e) = r.steal_half().unwrap();
        // 9 items remain [1,10); thief takes the far ceil-half [5.5]→[6,10)
        assert_eq!((s, e), (6, 10));
        assert_eq!(r.remaining(), 5);
        let mut owned = Vec::new();
        while let Some(i) = r.pop_front() {
            owned.push(i);
        }
        assert_eq!(owned, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn nested_pools_are_bounded() {
        // an outer sweep whose jobs themselves par_map (like rule
        // synthesis inside a variant build) must still complete
        let outer: Vec<usize> = (0..4).collect();
        let out = par_map(2, &outer, |_, &x| {
            let inner: Vec<usize> = (0..8).collect();
            par_map(2, &inner, |_, &y| x * 100 + y)
                .into_iter()
                .map(|r| r.unwrap())
                .sum::<usize>()
        });
        for (i, r) in out.into_iter().enumerate() {
            assert_eq!(r.unwrap(), i * 800 + 28);
        }
    }

    #[test]
    fn four_workers_overlap_in_time() {
        // four 200 ms jobs at jobs=4 must finish well under the 800 ms a
        // serial run needs — sleeps overlap even on a single-core host,
        // so this asserts the pool genuinely runs jobs concurrently
        let items: Vec<usize> = (0..4).collect();
        let t0 = std::time::Instant::now();
        let out = par_map(4, &items, |_, &x| {
            std::thread::sleep(std::time::Duration::from_millis(200));
            x
        });
        let elapsed = t0.elapsed();
        assert!(out.into_iter().all(|r| r.is_ok()));
        assert!(
            elapsed < std::time::Duration::from_millis(600),
            "4 workers took {elapsed:?}; jobs did not overlap"
        );
    }

    #[test]
    fn set_jobs_overrides_and_clears() {
        set_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_jobs(0);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn unsupervised_options_run_inline_with_detached_ctx() {
        let items: Vec<usize> = (0..10).collect();
        let out = par_map_supervised(2, &items, &WatchdogOptions::default(), |_, &x, ctx| {
            assert!(!ctx.cancelled());
            assert!(!ctx.timed_out());
            x * 3
        });
        let got: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..10).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn watchdog_cancels_job_past_deadline() {
        let items: Vec<usize> = (0..3).collect();
        let watch = WatchdogOptions {
            job_deadline: Some(Duration::from_millis(50)),
            interrupt: None,
            poll: Duration::from_millis(5),
        };
        let t0 = std::time::Instant::now();
        let out = par_map_supervised(3, &items, &watch, |_, &x, ctx| {
            if x == 1 {
                // a hung job: only the watchdog can stop it
                while !ctx.cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                assert!(ctx.timed_out(), "cancel without timeout mark");
                return usize::MAX;
            }
            x
        });
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "watchdog failed to cancel; pool hung"
        );
        let got: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![0, usize::MAX, 2]);
    }

    #[test]
    fn interrupt_flag_cancels_active_and_pending_jobs() {
        let items: Vec<usize> = (0..6).collect();
        let interrupt = Arc::new(AtomicBool::new(false));
        let watch = WatchdogOptions {
            job_deadline: None,
            interrupt: Some(Arc::clone(&interrupt)),
            poll: Duration::from_millis(5),
        };
        let cancelled = AtomicUsize::new(0);
        let out = par_map_supervised(1, &items, &watch, |_, &x, ctx| {
            if x == 0 {
                // simulate Ctrl-C arriving while job 0 runs
                interrupt.store(true, Ordering::Relaxed);
            }
            // jobs dispatched after the interrupt start pre-cancelled
            if ctx.cancelled() {
                cancelled.fetch_add(1, Ordering::Relaxed);
            }
            x
        });
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|r| r.is_ok()), "drain must not drop results");
        assert!(
            cancelled.load(Ordering::Relaxed) >= 5,
            "jobs after the interrupt must start pre-cancelled"
        );
    }

    #[test]
    fn worker_pool_runs_jobs_and_reports_depth() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            assert!(pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown(true);
        assert_eq!(done.load(Ordering::SeqCst), 16, "drain shutdown runs the queue dry");
    }

    #[test]
    fn worker_pool_abandon_shutdown_drops_queued_but_finishes_active() {
        let pool = WorkerPool::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let ran = Arc::new(AtomicUsize::new(0));
        // job 0 occupies the single worker until the gate opens
        {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            pool.submit(move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        // give the worker time to pick up job 0, then queue more behind it
        while pool.active() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for _ in 0..4 {
            let ran = Arc::clone(&ran);
            pool.submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(pool.queued(), 4, "jobs behind a busy worker are queued");
        assert_eq!(pool.in_flight(), 5);
        gate.store(true, Ordering::SeqCst);
        pool.shutdown(false);
        assert_eq!(
            ran.load(Ordering::SeqCst),
            1,
            "abandon shutdown waits for the active job but drops the queue"
        );
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("job blew up"));
        let ok = Arc::new(AtomicBool::new(false));
        {
            let ok = Arc::clone(&ok);
            pool.submit(move || ok.store(true, Ordering::SeqCst));
        }
        // both jobs must drain despite the first one panicking
        while pool.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(ok.load(Ordering::SeqCst), "worker died with the panicking job");
        assert_eq!(pool.panicked(), 1);
        pool.shutdown(true);
    }

    #[test]
    fn panicking_supervised_job_clears_its_slot() {
        let items: Vec<usize> = (0..4).collect();
        let watch = WatchdogOptions {
            job_deadline: Some(Duration::from_millis(200)),
            interrupt: None,
            poll: Duration::from_millis(5),
        };
        let out = par_map_supervised(2, &items, &watch, |_, &x, _ctx| {
            assert!(x != 2, "boom");
            x
        });
        assert!(out[2].is_err());
        assert_eq!(*out[0].as_ref().unwrap(), 0);
        assert_eq!(*out[3].as_ref().unwrap(), 3);
    }
}
