//! End-to-end mapping tests: every benchmark application maps onto the
//! baseline PE, and the mapped netlist is functionally identical to the
//! application's IR golden model.

use apex_ir::{evaluate as ir_eval, Op, Value};
use apex_map::{map_application, NetKind};
use apex_pe::baseline_pe;
use apex_rewrite::standard_ruleset;

fn check_equivalence(app: &apex_apps::Application, trials: usize) -> apex_map::MapStats {
    let pe = baseline_pe();
    let (rules, report) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
    assert!(
        report.missing.is_empty(),
        "{}: missing rules {:?}",
        app.info.name,
        report.missing
    );
    let design = map_application(&app.graph, &pe.datapath, &rules)
        .unwrap_or_else(|e| panic!("{}: {e}", app.info.name));
    design
        .netlist
        .validate(&rules)
        .unwrap_or_else(|e| panic!("{}: {e}", app.info.name));

    let word_n = app
        .graph
        .node_ids()
        .filter(|&i| app.graph.op(i) == Op::Input)
        .count();
    let bit_n = app
        .graph
        .node_ids()
        .filter(|&i| app.graph.op(i) == Op::BitInput)
        .count();
    let mut seed = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for t in 0..trials {
        let words: Vec<u16> = (0..word_n)
            .map(|_| if t == 0 { 37 } else { next() as u16 & 0xFF })
            .collect();
        let bits: Vec<bool> = (0..bit_n).map(|_| next() & 1 == 1).collect();
        let mut wi = words.iter();
        let mut bi = bits.iter();
        let golden_in: Vec<Value> = app
            .graph
            .primary_inputs()
            .iter()
            .map(|&pi| match app.graph.op(pi) {
                Op::Input => Value::Word(*wi.next().unwrap()),
                Op::BitInput => Value::Bit(*bi.next().unwrap()),
                _ => unreachable!(),
            })
            .collect();
        let golden = ir_eval(&app.graph, &golden_in);
        let (got_w, got_b) = design.netlist.evaluate(&pe.datapath, &rules, &words, &bits).unwrap();
        let mut gw = got_w.into_iter();
        let mut gb = got_b.into_iter();
        for (po, g) in app.graph.primary_outputs().iter().zip(golden) {
            match app.graph.op(*po) {
                Op::Output => assert_eq!(
                    gw.next().unwrap(),
                    g.word(),
                    "{} trial {t}: word output mismatch",
                    app.info.name
                ),
                Op::BitOutput => assert_eq!(gb.next().unwrap(), g.bit(), "{}", app.info.name),
                _ => unreachable!(),
            }
        }
    }
    design.stats
}

#[test]
fn gaussian_maps_and_matches_golden() {
    let app = apex_apps::gaussian();
    let stats = check_equivalence(&app, 8);
    // 3x3 conv with folded constants: each mul_const covers 2 ops
    assert!(stats.pe_count > 0);
    assert!(
        stats.rules_used.keys().any(|k| k.contains("mul")),
        "{:?}",
        stats.rules_used
    );
}

#[test]
fn camera_maps_and_matches_golden() {
    let app = apex_apps::camera_pipeline();
    let stats = check_equivalence(&app, 6);
    // the paper's camera pipeline needs ~232 baseline PEs at 4-pixel
    // unroll; ours should land in the same regime
    assert!(
        (150..=400).contains(&stats.pe_count),
        "camera PE count {} out of expected regime",
        stats.pe_count
    );
}

#[test]
fn all_analyzed_apps_map_on_baseline() {
    for app in apex_apps::analyzed_apps() {
        let stats = check_equivalence(&app, 4);
        assert!(stats.pe_count > 0, "{}", app.info.name);
        assert!(stats.ops_covered > 0, "{}", app.info.name);
    }
}

#[test]
fn unseen_apps_map_on_baseline() {
    for app in apex_apps::unseen_apps() {
        let stats = check_equivalence(&app, 4);
        assert!(stats.pe_count > 0, "{}", app.info.name);
    }
}

#[test]
fn constants_fold_into_pes() {
    // gaussian's kernel weights must fold into constant registers rather
    // than consuming standalone PEs
    let app = apex_apps::gaussian();
    let stats = check_equivalence(&app, 2);
    assert_eq!(
        stats.const_pes, 0,
        "all gaussian constants should fold: {:?}",
        stats.rules_used
    );
}

#[test]
fn complex_rules_reduce_pe_count() {
    // map gaussian on a PE that additionally implements the mul→add pair;
    // the PE count must drop versus the baseline mapping
    use apex_merge::{merge_graph, MergeOptions};
    use apex_mining::{mine, MinerConfig};
    use apex_tech::TechModel;

    let app = apex_apps::gaussian();
    let pe = baseline_pe();
    let (rules_base, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
    let base = map_application(&app.graph, &pe.datapath, &rules_base).unwrap();

    let mined = mine(
        &app.graph,
        &MinerConfig {
            min_support: 4,
            max_pattern_nodes: 4,
            ..MinerConfig::default()
        },
    )
    .unwrap()
    .subgraphs;
    // the top 2-node subgraph (const→mul) saves nothing over constant
    // folding; pick the best subgraph that fuses at least 3 operations
    let top = mined
        .iter()
        .find(|m| m.pattern.len() >= 3)
        .expect("a 3-node frequent subgraph exists");
    let sub = top.to_datapath(&app.graph, "sg0").unwrap();
    let (merged, _) = merge_graph(
        &pe.datapath,
        &sub,
        &TechModel::default(),
        &MergeOptions::default(),
    )
    .unwrap();
    let (rules_merged, _) = standard_ruleset(&merged, &[sub], &[&app.graph]).unwrap();
    let spec = map_application(&app.graph, &merged, &rules_merged).unwrap();
    assert!(
        spec.stats.pe_count < base.stats.pe_count,
        "specialized {} vs baseline {}",
        spec.stats.pe_count,
        base.stats.pe_count
    );
}

#[test]
fn netlist_counts_node_kinds() {
    let app = apex_apps::gaussian();
    let pe = baseline_pe();
    let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
    let design = map_application(&app.graph, &pe.datapath, &rules).unwrap();
    let inputs = design
        .netlist
        .nodes
        .iter()
        .filter(|n| matches!(n.kind, NetKind::WordInput))
        .count();
    assert_eq!(inputs, 72, "8 unrolled pixels x 9 window taps");
    assert_eq!(design.netlist.reg_count(), 0, "no registers before pipelining");
}

#[test]
fn netlist_dot_lists_every_node() {
    let app = apex_apps::gaussian();
    let pe = baseline_pe();
    let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app.graph]).unwrap();
    let design = map_application(&app.graph, &pe.datapath, &rules).unwrap();
    let dot = design.netlist.to_dot(&rules);
    assert!(dot.starts_with("digraph"));
    for i in 0..design.netlist.nodes.len() {
        assert!(dot.contains(&format!("n{i} ")), "node {i} missing from DOT");
    }
    // PE nodes are labelled with their rule names
    assert!(dot.contains("mul_c1"));
}
