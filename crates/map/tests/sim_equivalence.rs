//! The table-compiled netlist simulator ([`Netlist::simulate_with`])
//! must be bit-identical to the retained decode-per-access interpreter
//! ([`Netlist::simulate_with_reference`]) — same outputs AND same
//! errors — on randomized netlists, input streams, and PE latencies.
//!
//! Netlists come from mapping randomized applications, then splicing
//! registers and FIFOs onto random edges so the Delay instruction path
//! (ring buffers, drain cycles) is exercised alongside the PE path.

use apex_ir::{Graph, Op, ValueType};
use apex_map::{map_application, NetKind, NetRef};
use apex_pe::baseline_pe;
use apex_rewrite::standard_ruleset;
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = Graph> {
    let spec = prop::collection::vec((0u8..5, any::<u16>(), any::<u16>()), 4..32);
    spec.prop_map(|ops| {
        let mut g = Graph::new("sim_prop_app");
        let mut pool = vec![g.input(), g.input(), g.input()];
        for (sel, x, y) in ops {
            let a = pool[(x as usize) % pool.len()];
            let b = pool[(y as usize) % pool.len()];
            let n = match sel {
                0 => g.add(Op::Add, &[a, b]),
                1 => g.add(Op::Mul, &[a, b]),
                2 => g.add(Op::Sub, &[a, b]),
                3 => g.add(Op::Umin, &[a, b]),
                _ => {
                    let c = g.constant(x);
                    g.add(Op::Add, &[a, c])
                }
            };
            pool.push(n);
        }
        let last = pool[pool.len() - 1];
        g.output(last);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_sim_matches_reference(
        app in arb_app(),
        splices in prop::collection::vec((any::<u16>(), any::<u16>(), 0u8..4), 0..8),
        n_cycles in 0usize..6,
        pe_latency in 0u32..4,
        seed: u64,
    ) {
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app]).unwrap();
        let design = map_application(&app, &pe.datapath, &rules).unwrap();
        let mut netlist = design.netlist;

        // splice delay elements onto random edges: word edges get a
        // Reg or a Fifo (depth 1..=3), bit edges a BitReg
        for (nx, kx, depth) in splices {
            let i = (nx as usize) % netlist.nodes.len();
            if netlist.nodes[i].inputs.is_empty() {
                continue;
            }
            let k = (kx as usize) % netlist.nodes[i].inputs.len();
            let src = netlist.nodes[i].inputs[k];
            let ty = netlist.output_types(src.node, &rules)[src.port as usize];
            let kind = match (ty, depth) {
                (ValueType::Bit, _) => NetKind::BitReg,
                (ValueType::Word, 0) => NetKind::Reg,
                (ValueType::Word, d) => NetKind::Fifo(d),
            };
            let new = netlist.push(kind, vec![src]);
            netlist.nodes[i].inputs[k] = NetRef { node: new, port: 0 };
        }
        netlist.validate(&rules).unwrap();

        let n_in = netlist
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NetKind::WordInput))
            .count();
        let streams: Vec<Vec<u16>> = (0..n_in)
            .map(|i| {
                (0..n_cycles)
                    .map(|t| (seed as u16)
                        .wrapping_mul(131)
                        .wrapping_add(i as u16 * 19 + t as u16 * 11))
                    .collect()
            })
            .collect();

        let overrides = std::collections::BTreeMap::new();
        let compiled = netlist.simulate_with(
            &pe.datapath, &rules, &streams, &[], pe_latency, &overrides,
        );
        let reference = netlist.simulate_with_reference(
            &pe.datapath, &rules, &streams, &[], pe_latency, &overrides,
        );
        prop_assert_eq!(compiled, reference);
    }

    /// Error parity: starving the simulator of input streams must
    /// produce the same `InputShortage` from both engines.
    #[test]
    fn compiled_sim_matches_reference_on_short_inputs(
        app in arb_app(),
        drop in 1usize..3,
        pe_latency in 0u32..2,
    ) {
        let pe = baseline_pe();
        let (rules, _) = standard_ruleset(&pe.datapath, &[], &[&app]).unwrap();
        let design = map_application(&app, &pe.datapath, &rules).unwrap();
        let n_in = design
            .netlist
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NetKind::WordInput))
            .count();
        if n_in < drop {
            return Ok(());
        }
        let streams: Vec<Vec<u16>> = (0..n_in - drop).map(|i| vec![i as u16; 2]).collect();
        let overrides = std::collections::BTreeMap::new();
        let compiled = design.netlist.simulate_with(
            &pe.datapath, &rules, &streams, &[], pe_latency, &overrides,
        );
        let reference = design.netlist.simulate_with_reference(
            &pe.datapath, &rules, &streams, &[], pe_latency, &overrides,
        );
        prop_assert_eq!(&compiled, &reference);
        prop_assert!(compiled.is_err());
    }
}
