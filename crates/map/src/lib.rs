//! # apex-map — application mapping (instruction selection)
//!
//! Stage 3 of the APEX flow (paper Section 4.1.2): transform the
//! application's dataflow graph of IR operations into a dataflow graph of
//! configured PEs (Fig. 7), using the LLVM-style greedy covering the paper
//! describes — complex rewrite rules first, then simpler ones.
//!
//! The output [`Netlist`] is what the rest of the backend consumes:
//! `apex-pipeline` inserts branch-delay registers and register-file FIFOs
//! into it, and `apex-cgra` places, routes, and simulates it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod mapper;
mod netlist;
mod sim;

pub use mapper::{map_application, MapError, MapStats, MappedDesign};
pub use netlist::{NetKind, NetNode, NetRef, Netlist, NetlistError, PeInstance, SimStreams};
pub use sim::CompiledSim;
