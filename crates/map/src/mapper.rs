//! Greedy instruction selection (paper Section 4.1.2).
//!
//! LLVM-style maximal-munch covering: rules are tried in decreasing
//! coverage order; each rule's pattern is matched against the application
//! graph (reusing the miner's subgraph-isomorphism engine) and applied
//! greedily wherever it covers only uncovered operations and does not
//! hide internally-produced values that the rest of the application still
//! needs.

use crate::netlist::{NetKind, NetRef, Netlist, PeInstance};
use apex_ir::{Graph, NodeId, Op};
use apex_merge::MergedDatapath;
use apex_mining::{find_embeddings, GraphIndex, Pattern};
use apex_rewrite::{RewriteRule, RuleSet};
use std::collections::BTreeMap;

/// Mapping failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// No rule covers an application operation.
    Uncovered {
        /// The uncoverable operation.
        op: String,
    },
    /// A constant feeds a PE input but the ruleset has no constant
    /// passthrough rule.
    NoConstRule,
    /// An accepted match left a pattern input unbound (internal
    /// inconsistency between matching and emission).
    UnboundInput,
    /// A deterministic test fault (fault-injection builds only).
    Injected(&'static str),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Uncovered { op } => write!(f, "no rewrite rule covers operation {op}"),
            MapError::NoConstRule => write!(f, "ruleset lacks a constant passthrough rule"),
            MapError::UnboundInput => write!(f, "pattern input left unbound by match"),
            MapError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<MapError> for apex_fault::ApexError {
    fn from(e: MapError) -> Self {
        apex_fault::ApexError::with_source(apex_fault::Stage::Map, e)
    }
}

/// Mapping statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MapStats {
    /// Total PE instances (the paper's per-application `#PE`).
    pub pe_count: usize,
    /// Instances per rule name.
    pub rules_used: BTreeMap<String, usize>,
    /// Constant-passthrough instances among `pe_count`.
    pub const_pes: usize,
    /// Application compute ops covered (excluding constants).
    pub ops_covered: usize,
}

/// A mapped application.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedDesign {
    /// The PE-level netlist.
    pub netlist: Netlist,
    /// Statistics.
    pub stats: MapStats,
}

/// Pre-analyzed rule.
struct PreppedRule<'r> {
    idx: u32,
    rule: &'r RewriteRule,
    mining: Pattern,
    /// mining pattern index → rule-pattern graph node
    order: Vec<NodeId>,
    /// rule-pattern graph node → mining pattern index
    rev: BTreeMap<NodeId, usize>,
    /// drivers of the pattern's word outputs, in output order
    word_sinks: Vec<NodeId>,
    /// drivers of the pattern's bit outputs
    bit_sinks: Vec<NodeId>,
    /// pattern out-edge count per mining index (for the visibility check)
    out_edges: Vec<usize>,
    /// is the rule a pure constant passthrough?
    const_only: bool,
}

fn prep_rule(idx: u32, rule: &RewriteRule) -> PreppedRule<'_> {
    let compute = rule.pattern.compute_nodes();
    let (mining, order) = Pattern::from_occurrence(&rule.pattern, &compute);
    let rev: BTreeMap<NodeId, usize> = order
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();
    let mut word_sinks = Vec::new();
    let mut bit_sinks = Vec::new();
    for po in rule.pattern.primary_outputs() {
        let driver = rule.pattern.node(po).inputs()[0];
        match rule.pattern.op(po) {
            Op::Output => word_sinks.push(driver),
            Op::BitOutput => bit_sinks.push(driver),
            _ => unreachable!(),
        }
    }
    let mut out_edges = vec![0usize; mining.len()];
    for (s, _, _) in mining.edges() {
        out_edges[s as usize] += 1;
    }
    let const_only = compute
        .iter()
        .all(|&n| matches!(rule.pattern.op(n), Op::Const(_) | Op::BitConst(_)));
    PreppedRule {
        idx,
        rule,
        mining,
        order,
        rev,
        word_sinks,
        bit_sinks,
        out_edges,
        const_only,
    }
}

/// One accepted match.
struct Match {
    rule: usize, // index into prepped
    /// mining pattern index → app node
    emb: Vec<NodeId>,
    /// pattern graph Input/BitInput node → app source node
    input_bindings: BTreeMap<NodeId, NodeId>,
}

/// Computes the pattern-input → application-source bindings for an
/// embedding, or `None` when a shared pattern input would need two
/// different application values.
fn bind_inputs(p: &PreppedRule<'_>, emb: &[NodeId], app: &Graph) -> Option<BTreeMap<NodeId, NodeId>> {
    let mut bindings: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for (i, &pc) in p.order.iter().enumerate() {
        let an = emb[i];
        let app_inputs = app.node(an).inputs();
        // assign mining in-edges to app ports (injective, port-constrained)
        let edges = p.mining.in_edges(i);
        let mut used = vec![false; app_inputs.len()];
        if !assign_edges(edges, 0, app_inputs, emb, &mut used) {
            #[cfg(feature = "dbg")]
            eprintln!("bind: assign_edges failed node {pc} an {an} edges {edges:?}");
            return None;
        }
        // leftover app ports pair with the pattern node's input-fed ports
        let pat_inputs = p.rule.pattern.node(pc).inputs();
        let mut leftover_app: Vec<usize> = (0..app_inputs.len()).filter(|&q| !used[q]).collect();
        let mut input_fed: Vec<usize> = pat_inputs
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(p.rule.pattern.op(**s), Op::Input | Op::BitInput)
            })
            .map(|(q, _)| q)
            .collect();
        if leftover_app.len() != input_fed.len() {
            #[cfg(feature = "dbg")]
            eprintln!("bind: leftover {leftover_app:?} != input_fed {input_fed:?} node {pc}");
            return None;
        }
        leftover_app.sort_unstable();
        input_fed.sort_unstable();
        for (&aq, &pq) in leftover_app.iter().zip(&input_fed) {
            let pattern_input = pat_inputs[pq];
            let app_src = app_inputs[aq];
            // type check
            if app.op(app_src).output_type() != p.rule.pattern.op(pattern_input).output_type() {
                #[cfg(feature = "dbg")]
                eprintln!("bind: type mismatch");
                return None;
            }
            match bindings.get(&pattern_input) {
                None => {
                    bindings.insert(pattern_input, app_src);
                }
                Some(&prev) if prev == app_src => {}
                Some(_) => {
                    #[cfg(feature = "dbg")]
                    eprintln!("bind: shared input conflict");
                    return None;
                }
            }
        }
    }
    Some(bindings)
}

fn assign_edges(
    edges: &[apex_mining::PatternEdge],
    k: usize,
    app_inputs: &[NodeId],
    emb: &[NodeId],
    used: &mut Vec<bool>,
) -> bool {
    if k == edges.len() {
        return true;
    }
    let e = edges[k];
    let want = emb[e.src as usize];
    let candidates: Vec<usize> = match e.port {
        Some(p) => vec![p as usize],
        None => (0..app_inputs.len()).collect(),
    };
    for q in candidates {
        if q < app_inputs.len() && !used[q] && app_inputs[q] == want {
            used[q] = true;
            if assign_edges(edges, k + 1, app_inputs, emb, used) {
                // keep `used` marked: callers need the final assignment
                return true;
            }
            used[q] = false;
        }
    }
    false
}

/// Maps an application graph onto a PE, producing a netlist of configured
/// PE instances.
///
/// # Errors
/// Fails when some application operation has no covering rule, or when
/// the graph contains registers (mapping runs before pipelining).
pub fn map_application(
    app: &Graph,
    dp: &MergedDatapath,
    rules: &RuleSet,
) -> Result<MappedDesign, MapError> {
    apex_fault::fail_point!("map::start", MapError::Injected("map::start"));
    if let Some(reg) = app
        .node_ids()
        .find(|&i| matches!(app.op(i), Op::Reg | Op::BitReg | Op::Fifo(_)))
    {
        return Err(MapError::Uncovered {
            op: format!("{} (registers appear only after pipelining)", app.op(reg)),
        });
    }
    let prepped: Vec<PreppedRule<'_>> = rules
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| prep_rule(i as u32, r))
        .collect();
    let index = GraphIndex::new(app);
    let app_fanouts = app.fanouts();

    // ---- covering --------------------------------------------------------
    let mut covered = vec![false; app.len()];
    let mut matches: Vec<Match> = Vec::new();
    for (pi, p) in prepped.iter().enumerate() {
        if p.const_only {
            continue; // constants are folded or materialized on demand
        }
        let embeddings = find_embeddings(&p.mining, &index, 200_000);
        'emb: for r in 0..embeddings.len() {
            let e: Vec<NodeId> = embeddings.list.row(r);
            // every non-const image must be uncovered
            for &an in &e {
                let is_const = matches!(
                    app.op(an),
                    Op::Const(_) | Op::BitConst(_)
                );
                if !is_const && covered[an.index()] {
                    continue 'emb;
                }
            }
            // visibility: non-sink, non-const images must have all their
            // consumers inside the match (edge counts line up)
            for (i, &an) in e.iter().enumerate() {
                let pc = p.order[i];
                let is_const = matches!(app.op(an), Op::Const(_) | Op::BitConst(_));
                let is_sink = p.word_sinks.contains(&pc) || p.bit_sinks.contains(&pc);
                if is_const || is_sink {
                    continue;
                }
                let app_consumers = app_fanouts[an.index()].len();
                if app_consumers != p.out_edges[i] {
                    #[cfg(feature = "dbg")]
                    eprintln!("reject vis {} node {an}", p.rule.name);
                    continue 'emb;
                }
            }
            // convexity: no application path may leave the match and
            // re-enter it, or two PE instances would depend on each other
            // (a combinational cycle at the tile level)
            if !convex(app, &app_fanouts, &e) {
                continue 'emb;
            }
            let Some(input_bindings) = bind_inputs(p, &e, app) else {
                #[cfg(feature = "dbg")]
                eprintln!("reject bind {} {:?}", p.rule.name, e);
                continue 'emb;
            };
            for &an in &e {
                if !matches!(app.op(an), Op::Const(_) | Op::BitConst(_)) {
                    covered[an.index()] = true;
                }
            }
            matches.push(Match {
                rule: pi,
                emb: e,
                input_bindings,
            });
        }
    }

    // multi-sink matches can deadlock: bundling independent output cones
    // into one PE may create instance-level dependency cycles even though
    // each match is convex. Drop offenders and re-cover their nodes with
    // single-sink rules until the match graph is acyclic.
    loop {
        let producer = producers(&matches, &prepped);
        match find_cyclic_match(&matches, &prepped, app, &producer) {
            None => break,
            Some(victim) => {
                let m = matches.remove(victim);
                for &an in &m.emb {
                    if !matches!(app.op(an), Op::Const(_) | Op::BitConst(_)) {
                        covered[an.index()] = false;
                    }
                }
                // re-cover with single-sink rules only
                for (p_idx, p) in prepped.iter().enumerate() {
                    if p.const_only || p.word_sinks.len() + p.bit_sinks.len() != 1 {
                        continue;
                    }
                    let embeddings = find_embeddings(&p.mining, &index, 200_000);
                    'emb2: for r in 0..embeddings.len() {
                        let e: Vec<NodeId> = embeddings.list.row(r);
                        let mut fresh = false;
                        for (i, &an) in e.iter().enumerate() {
                            let is_const =
                                matches!(app.op(an), Op::Const(_) | Op::BitConst(_));
                            if !is_const {
                                if covered[an.index()] {
                                    continue 'emb2;
                                }
                                fresh = true;
                            }
                            let pc = p.order[i];
                            let is_sink =
                                p.word_sinks.contains(&pc) || p.bit_sinks.contains(&pc);
                            if !is_const && !is_sink
                                && app_fanouts[an.index()].len() != p.out_edges[i]
                            {
                                continue 'emb2;
                            }
                        }
                        if !fresh || !convex(app, &app_fanouts, &e) {
                            continue 'emb2;
                        }
                        let Some(input_bindings) = bind_inputs(p, &e, app) else {
                            continue 'emb2;
                        };
                        for &an in &e {
                            if !matches!(app.op(an), Op::Const(_) | Op::BitConst(_)) {
                                covered[an.index()] = true;
                            }
                        }
                        matches.push(Match {
                            rule: p_idx,
                            emb: e,
                            input_bindings,
                        });
                    }
                }
            }
        }
    }

    // every non-const compute node must be covered
    for id in app.compute_nodes() {
        if matches!(app.op(id), Op::Const(_) | Op::BitConst(_)) {
            continue;
        }
        if !covered[id.index()] {
            return Err(MapError::Uncovered {
                op: app.op(id).to_string(),
            });
        }
    }

    // ---- netlist construction ---------------------------------------------
    let mut netlist = Netlist::new(app.name());
    let mut value_of: BTreeMap<NodeId, NetRef> = BTreeMap::new();
    for pi_node in app.primary_inputs() {
        let kind = match app.op(pi_node) {
            Op::Input => NetKind::WordInput,
            Op::BitInput => NetKind::BitInput,
            _ => unreachable!(),
        };
        let idx = netlist.push(kind, Vec::new());
        value_of.insert(pi_node, NetRef { node: idx, port: 0 });
    }

    // producer match per app node
    let producer = producers(&matches, &prepped);

    // topological order over matches
    let order = topo_matches(&matches, &prepped, app, &producer);

    let const_rule = prepped.iter().find(|p| p.const_only);
    let mut const_instances: BTreeMap<NodeId, NetRef> = BTreeMap::new();
    let mut stats = MapStats::default();

    let resolve =
        |src: NodeId,
         netlist: &mut Netlist,
         value_of: &BTreeMap<NodeId, NetRef>,
         const_instances: &mut BTreeMap<NodeId, NetRef>,
         stats: &mut MapStats|
         -> Result<NetRef, MapError> {
            if let Some(&r) = value_of.get(&src) {
                return Ok(r);
            }
            if let Op::Const(v) = app.op(src) {
                if let Some(&r) = const_instances.get(&src) {
                    return Ok(r);
                }
                let cr = const_rule.ok_or(MapError::NoConstRule)?;
                let idx = netlist.push(
                    NetKind::Pe(PeInstance {
                        rule: cr.idx,
                        payloads: vec![Op::Const(v)],
                    }),
                    Vec::new(),
                );
                let r = NetRef { node: idx, port: 0 };
                const_instances.insert(src, r);
                stats.pe_count += 1;
                stats.const_pes += 1;
                *stats.rules_used.entry("const".into()).or_insert(0) += 1;
                Ok(r)
            } else {
                unreachable!("unresolved source {src} ({})", app.op(src))
            }
        };

    for &mi in &order {
        let m = &matches[mi];
        let p = &prepped[m.rule];
        // operand sources: pattern word inputs in insertion order, then bit
        let mut inputs: Vec<NetRef> = Vec::new();
        for want_bit in [false, true] {
            for pin in p.rule.pattern.primary_inputs() {
                let is_bit = p.rule.pattern.op(pin) == Op::BitInput;
                if is_bit != want_bit {
                    continue;
                }
                let app_src = *m
                    .input_bindings
                    .get(&pin)
                    .ok_or(MapError::UnboundInput)?;
                let r = resolve(app_src, &mut netlist, &value_of, &mut const_instances, &mut stats)?;
                inputs.push(r);
            }
        }
        // payloads from the matched constants
        let payloads: Vec<Op> = p
            .rule
            .payload_bindings
            .iter()
            .map(|(pn, _)| app.op(m.emb[p.rev[pn]]))
            .collect();
        let idx = netlist.push(
            NetKind::Pe(PeInstance {
                rule: p.idx,
                payloads,
            }),
            inputs,
        );
        stats.pe_count += 1;
        stats.ops_covered += p
            .order
            .iter()
            .filter(|&&pc| !matches!(p.rule.pattern.op(pc), Op::Const(_) | Op::BitConst(_)))
            .count();
        *stats.rules_used.entry(p.rule.name.clone()).or_insert(0) += 1;
        for (j, sink) in p.word_sinks.iter().enumerate() {
            value_of.insert(m.emb[p.rev[sink]], NetRef { node: idx, port: j as u8 });
        }
        let word_n = p.word_sinks.len();
        for (j, sink) in p.bit_sinks.iter().enumerate() {
            value_of.insert(
                m.emb[p.rev[sink]],
                NetRef {
                    node: idx,
                    port: (word_n + j) as u8,
                },
            );
        }
    }

    // debug-time check: every instance configuration is valid on the PE
    #[cfg(debug_assertions)]
    for node in &netlist.nodes {
        if let NetKind::Pe(inst) = &node.kind {
            let rule = &rules.rules[inst.rule as usize];
            let check = dp.validate_config(&rule.instantiate(&inst.payloads));
            debug_assert!(check.is_ok(), "invalid instance configuration: {check:?}");
        }
    }

    // application outputs
    for po in app.primary_outputs() {
        let driver = app.node(po).inputs()[0];
        let r = resolve(driver, &mut netlist, &value_of, &mut const_instances, &mut stats)?;
        let kind = match app.op(po) {
            Op::Output => NetKind::WordOutput,
            Op::BitOutput => NetKind::BitOutput,
            _ => unreachable!(),
        };
        netlist.push(kind, vec![r]);
    }

    Ok(MappedDesign { netlist, stats })
}

/// Checks that the matched node set is convex: every directed application
/// path between two matched nodes stays inside the match.
fn convex(app: &Graph, fanouts: &[Vec<NodeId>], image: &[NodeId]) -> bool {
    // constants are configuration payloads, not wires: other uses of a
    // matched constant are separate foldings, so they neither escape the
    // match nor re-enter it
    let set: std::collections::BTreeSet<NodeId> = image
        .iter()
        .copied()
        .filter(|&n| !matches!(app.op(n), Op::Const(_) | Op::BitConst(_)))
        .collect();
    // forward DFS from external consumers of matched nodes, through
    // external nodes only; reaching the match again breaks convexity
    let mut stack: Vec<NodeId> = Vec::new();
    let mut seen: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
    for &m in &set {
        for &c in &fanouts[m.index()] {
            if !set.contains(&c) && seen.insert(c) {
                stack.push(c);
            }
        }
    }
    while let Some(u) = stack.pop() {
        for &c in &fanouts[u.index()] {
            if set.contains(&c) {
                return false;
            }
            if seen.insert(c) {
                stack.push(c);
            }
        }
    }
    true
}

/// Producer match per application node (pattern sinks produce values).
fn producers(matches: &[Match], prepped: &[PreppedRule<'_>]) -> BTreeMap<NodeId, usize> {
    let mut producer: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (mi, m) in matches.iter().enumerate() {
        let p = &prepped[m.rule];
        for sink in p.word_sinks.iter().chain(&p.bit_sinks) {
            let i = p.rev[sink];
            producer.insert(m.emb[i], mi);
        }
    }
    producer
}

/// Finds a match participating in an instance-level dependency cycle, or
/// `None` when the match graph is acyclic. Prefers multi-sink matches
/// (single-sink matches cannot create cycles on their own).
fn find_cyclic_match(
    matches: &[Match],
    prepped: &[PreppedRule<'_>],
    app: &Graph,
    producer: &BTreeMap<NodeId, usize>,
) -> Option<usize> {
    let n = matches.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (mi, m) in matches.iter().enumerate() {
        for &src in m.input_bindings.values() {
            if matches!(
                app.op(src),
                Op::Input | Op::BitInput | Op::Const(_) | Op::BitConst(_)
            ) {
                continue;
            }
            let dep = producer[&src];
            if dep != mi {
                succ[dep].push(mi);
                indeg[mi] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0usize;
    while let Some(u) = ready.pop() {
        done += 1;
        for &v in &succ[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                ready.push(v);
            }
        }
    }
    if done == n {
        return None;
    }
    // any blocked match is in (or downstream of) a cycle; prefer a blocked
    // multi-sink one
    let blocked: Vec<usize> = (0..n).filter(|&i| indeg[i] > 0).collect();
    blocked
        .iter()
        .copied()
        .find(|&i| {
            let p = &prepped[matches[i].rule];
            p.word_sinks.len() + p.bit_sinks.len() > 1
        })
        .or_else(|| blocked.first().copied())
}

/// Orders matches so producers precede consumers.
fn topo_matches(
    matches: &[Match],
    prepped: &[PreppedRule<'_>],
    app: &Graph,
    producer: &BTreeMap<NodeId, usize>,
) -> Vec<usize> {
    let n = matches.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (mi, m) in matches.iter().enumerate() {
        let p = &prepped[m.rule];
        for &src in m.input_bindings.values() {
            if matches!(app.op(src), Op::Input | Op::BitInput | Op::Const(_) | Op::BitConst(_)) {
                continue;
            }
            let dep = producer[&src];
            if dep != mi {
                succ[dep].push(mi);
                indeg[mi] += 1;
            }
        }
        let _ = p;
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = ready.pop() {
        order.push(u);
        for &v in &succ[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                ready.push(v);
            }
        }
    }
    assert_eq!(order.len(), n, "match dependencies form a cycle");
    order
}
