//! Table-compiled cycle-accurate simulation.
//!
//! [`Netlist::simulate_with`] used to pay the full interpretation cost on
//! every cycle of every node: a `BTreeMap` override lookup, a
//! `DatapathConfig` clone (or `Rule::instantiate`), `validate_config`, a
//! datapath topological sort, and a handful of scatter `Vec`s — per PE,
//! per cycle. [`CompiledSim`] hoists all of that to a one-time compile:
//! the netlist is flattened into a dense value array (one slot per node
//! output port) plus a topologically ordered instruction table, and each
//! PE's configuration is resolved/validated once and lowered to a list of
//! datapath-op steps with pre-resolved operand sources. Running a cycle
//! is then a linear sweep: copy delayed values through flat ring buffers,
//! execute PE op steps against a scratch array, collect outputs.
//!
//! The interpretation path is retained verbatim as
//! [`Netlist::simulate_with_reference`] — the executable specification the
//! property suite replays this compiler against (identical output
//! streams, identical errors, over randomized netlists, stream lengths,
//! and decoded-bitstream overrides).

use crate::netlist::{NetKind, NetlistError, Netlist};
use apex_ir::{Op, Value};
use apex_merge::{DatapathConfig, DpSource, MergedDatapath};
use apex_rewrite::RuleSet;
use std::collections::BTreeMap;

/// A pre-resolved operand source for a compiled PE step.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// A netlist value slot (another node's output port this cycle).
    Slot(u32),
    /// An intra-PE intermediate (datapath node index into the scratch
    /// array; validation guarantees it is written before it is read).
    Scratch(u32),
    /// An unmapped PE word port (reads zero, like the reference scatter).
    ZeroWord,
    /// An unmapped PE bit port.
    ZeroBit,
}

/// One datapath functional-unit evaluation inside a compiled PE.
#[derive(Debug, Clone)]
struct Step {
    op: Op,
    /// Destination scratch slot (the datapath node index).
    dst: u32,
    ins: Vec<Src>,
}

/// What a compiled node computes each cycle.
#[derive(Debug, Clone)]
enum InstrKind {
    /// Reg / BitReg / Fifo: pass the producer slot through (the delay is
    /// applied by the shared ring-buffer stage below).
    Delay {
        /// Producer value slot.
        src: u32,
    },
    /// A PE: run the op steps, then gather the configured outputs.
    Pe {
        steps: Vec<Step>,
        outs: Vec<Src>,
    },
}

/// A compiled netlist node (delay elements and PEs only — inputs and
/// outputs are handled by the flat slot lists on [`CompiledSim`]).
#[derive(Debug, Clone)]
struct Instr {
    kind: InstrKind,
    /// First value slot of this node's outputs.
    out_base: u32,
    /// Number of outputs.
    width: u32,
    /// Cycle latency (0 = combinational pass-through).
    lat: u32,
    /// First element of this node's region in the ring-buffer arena
    /// (`lat * width` values).
    ring_base: u32,
}

/// A netlist compiled for repeated cycle evaluation. Compile once per
/// (netlist, configuration) pair, then [`CompiledSim::run`] any number of
/// streams against it; `run` takes `&self` and allocates only the
/// per-run state arrays.
pub struct CompiledSim {
    instrs: Vec<Instr>,
    /// Value slot per `WordInput` node, in node-index order.
    word_in_slots: Vec<u32>,
    bit_in_slots: Vec<u32>,
    /// Node ids backing `word_in_slots` (for `InputShortage` reporting).
    word_in_nodes: Vec<u32>,
    bit_in_nodes: Vec<u32>,
    /// Producer value slot per `WordOutput`/`BitOutput` node.
    word_out_slots: Vec<u32>,
    bit_out_slots: Vec<u32>,
    /// Zero-initialized value array (one slot per node output, typed).
    init_values: Vec<Value>,
    /// Zero-initialized ring arena (delay state starts drained-empty).
    init_ring: Vec<Value>,
    scratch_len: usize,
    /// Sum of all node latencies: extra cycles run past the input streams
    /// so every delayed value reaches the outputs.
    drain: u32,
    /// A configuration error found at compile time, surfaced on the first
    /// run that would actually evaluate a cycle — the reference
    /// interpreter only fails once cycle 0 reaches the offending PE, and
    /// a zero-cycle simulation must stay `Ok`.
    deferred: Option<NetlistError>,
}

impl CompiledSim {
    /// Compiles a netlist against a datapath/ruleset, resolving each PE's
    /// configuration (override or instantiated template) exactly once.
    ///
    /// # Errors
    /// Returns [`NetlistError::Cyclic`] on a cyclic netlist (matching the
    /// reference, which sorts before looking at streams). Configuration
    /// errors are deferred to [`CompiledSim::run`] to match the
    /// reference's evaluate-time reporting.
    pub fn compile(
        netlist: &Netlist,
        dp: &MergedDatapath,
        rules: &RuleSet,
        pe_latency: u32,
        config_overrides: &BTreeMap<u32, DatapathConfig>,
    ) -> Result<CompiledSim, NetlistError> {
        let order = netlist.topo_order()?;
        let n = netlist.nodes.len();

        // flat value layout: one slot per node output port
        let mut val_base = vec![0u32; n];
        let mut init_values: Vec<Value> = Vec::new();
        for i in 0..n as u32 {
            val_base[i as usize] = init_values.len() as u32;
            for t in netlist.output_types(i, rules) {
                init_values.push(Value::zero(t));
            }
        }

        let drain: u32 = (0..n as u32).map(|i| netlist.latency(i, pe_latency)).sum();

        let mut word_in_slots = Vec::new();
        let mut bit_in_slots = Vec::new();
        let mut word_in_nodes = Vec::new();
        let mut bit_in_nodes = Vec::new();
        let mut word_out_slots = Vec::new();
        let mut bit_out_slots = Vec::new();
        for (i, node) in netlist.nodes.iter().enumerate() {
            match node.kind {
                NetKind::WordInput => {
                    word_in_slots.push(val_base[i]);
                    word_in_nodes.push(i as u32);
                }
                NetKind::BitInput => {
                    bit_in_slots.push(val_base[i]);
                    bit_in_nodes.push(i as u32);
                }
                NetKind::WordOutput => {
                    let r = &node.inputs[0];
                    word_out_slots.push(val_base[r.node as usize] + u32::from(r.port));
                }
                NetKind::BitOutput => {
                    let r = &node.inputs[0];
                    bit_out_slots.push(val_base[r.node as usize] + u32::from(r.port));
                }
                _ => {}
            }
        }

        // the datapath topo order is shared by every PE; its failure (a
        // cyclic datapath) surfaces as the first PE's BadConfig, exactly
        // where the reference interpreter reports it
        let dp_order = dp.topo_order();

        let mut instrs: Vec<Instr> = Vec::new();
        let mut init_ring: Vec<Value> = Vec::new();
        let mut deferred: Option<NetlistError> = None;
        for &u in &order {
            let node = &netlist.nodes[u as usize];
            let lat = netlist.latency(u, pe_latency);
            let out_tys = netlist.output_types(u, rules);
            let width = out_tys.len() as u32;
            let ring_base = init_ring.len() as u32;
            if lat > 0 {
                for _ in 0..lat {
                    for t in &out_tys {
                        init_ring.push(Value::zero(*t));
                    }
                }
            }
            let kind = match &node.kind {
                NetKind::WordInput | NetKind::BitInput | NetKind::WordOutput
                | NetKind::BitOutput => continue,
                NetKind::Reg | NetKind::BitReg | NetKind::Fifo(_) => {
                    let r = &node.inputs[0];
                    InstrKind::Delay {
                        src: val_base[r.node as usize] + u32::from(r.port),
                    }
                }
                NetKind::Pe(inst) => {
                    let rule = &rules.rules[inst.rule as usize];
                    let cfg = config_overrides
                        .get(&u)
                        .cloned()
                        .unwrap_or_else(|| rule.instantiate(&inst.payloads));
                    let n_word = rule.config.word_input_map.len();
                    match compile_pe(netlist, dp, &dp_order, u, node, &cfg, n_word, &val_base) {
                        Ok((steps, outs)) => {
                            if outs.len() as u32 != width {
                                // the template promised `width` outputs
                                // but the (decoded) override selects a
                                // different count; the reference would
                                // read out of range — fail cleanly
                                if deferred.is_none() {
                                    deferred = Some(NetlistError::BadConfig {
                                        node: u,
                                        message: "output arity mismatch with decoded configuration"
                                            .to_owned(),
                                    });
                                }
                            }
                            InstrKind::Pe { steps, outs }
                        }
                        Err(e) => {
                            if deferred.is_none() {
                                deferred = Some(e);
                            }
                            // keep a placeholder so slots stay aligned;
                            // run() errors before ever executing it
                            InstrKind::Pe {
                                steps: Vec::new(),
                                outs: Vec::new(),
                            }
                        }
                    }
                }
            };
            instrs.push(Instr {
                kind,
                out_base: val_base[u as usize],
                width,
                lat,
                ring_base,
            });
        }

        Ok(CompiledSim {
            instrs,
            word_in_slots,
            bit_in_slots,
            word_in_nodes,
            bit_in_nodes,
            word_out_slots,
            bit_out_slots,
            init_values,
            init_ring,
            scratch_len: dp.node_count(),
            drain,
            deferred,
        })
    }

    /// Runs the compiled table cycle-accurately over the input streams —
    /// the flat-array equivalent of [`Netlist::simulate_with_reference`]:
    /// same stream binding (node-index order, zero-padded past stream
    /// end), same drain length, same output ordering, same errors.
    ///
    /// # Errors
    /// Fails on missing input streams or (deferred) bad configurations.
    pub fn run(
        &self,
        word_streams: &[Vec<u16>],
        bit_streams: &[Vec<bool>],
    ) -> Result<crate::SimStreams, NetlistError> {
        let n_cycles = word_streams
            .first()
            .map(Vec::len)
            .or_else(|| bit_streams.first().map(Vec::len))
            .unwrap_or(0);
        let total = n_cycles + self.drain as usize;
        if total > 0 {
            // the reference reports the first (by node index) input node
            // whose stream is missing, before any PE evaluates
            if n_cycles > 0 {
                let missing_word = self.word_in_nodes.get(word_streams.len());
                let missing_bit = self.bit_in_nodes.get(bit_streams.len());
                let first = match (missing_word, missing_bit) {
                    (Some(&w), Some(&b)) => Some(w.min(b)),
                    (Some(&w), None) => Some(w),
                    (None, Some(&b)) => Some(b),
                    (None, None) => None,
                };
                if let Some(node) = first {
                    return Err(NetlistError::InputShortage { node });
                }
            }
            if let Some(e) = &self.deferred {
                return Err(e.clone());
            }
        }

        let mut values = self.init_values.clone();
        let mut ring = self.init_ring.clone();
        let mut heads = vec![0u32; self.instrs.len()];
        let mut scratch = vec![Value::Word(0); self.scratch_len];
        let mut comb: Vec<Value> = Vec::with_capacity(8);
        let mut ops: Vec<Value> = Vec::with_capacity(4);
        let mut word_out = vec![Vec::with_capacity(total); self.word_out_slots.len()];
        let mut bit_out = vec![Vec::with_capacity(total); self.bit_out_slots.len()];

        for cycle in 0..total {
            // bind inputs (zero past the end of the streams / the drain)
            for (k, &slot) in self.word_in_slots.iter().enumerate() {
                let v = if cycle < n_cycles {
                    word_streams[k].get(cycle).copied().unwrap_or(0)
                } else {
                    0
                };
                values[slot as usize] = Value::Word(v);
            }
            for (k, &slot) in self.bit_in_slots.iter().enumerate() {
                let v = if cycle < n_cycles {
                    bit_streams[k].get(cycle).copied().unwrap_or(false)
                } else {
                    false
                };
                values[slot as usize] = Value::Bit(v);
            }
            // one topological sweep over the instruction table
            for (ii, instr) in self.instrs.iter().enumerate() {
                comb.clear();
                match &instr.kind {
                    InstrKind::Delay { src } => comb.push(values[*src as usize]),
                    InstrKind::Pe { steps, outs } => {
                        for step in steps {
                            ops.clear();
                            for s in &step.ins {
                                ops.push(resolve(*s, &values, &scratch));
                            }
                            scratch[step.dst as usize] = step.op.eval(&ops);
                        }
                        for s in outs {
                            comb.push(resolve(*s, &values, &scratch));
                        }
                    }
                }
                let base = instr.out_base as usize;
                if instr.lat == 0 {
                    values[base..base + comb.len()].copy_from_slice(&comb);
                } else {
                    // ring buffer: emit the value stored `lat` cycles ago,
                    // store this cycle's in its place
                    let start = instr.ring_base as usize
                        + heads[ii] as usize * instr.width as usize;
                    for (k, v) in comb.iter().enumerate() {
                        values[base + k] = ring[start + k];
                        ring[start + k] = *v;
                    }
                    heads[ii] = (heads[ii] + 1) % instr.lat;
                }
            }
            for (k, &slot) in self.word_out_slots.iter().enumerate() {
                word_out[k].push(values[slot as usize].word());
            }
            for (k, &slot) in self.bit_out_slots.iter().enumerate() {
                bit_out[k].push(values[slot as usize].bit());
            }
        }
        Ok((word_out, bit_out))
    }
}

#[inline]
fn resolve(s: Src, values: &[Value], scratch: &[Value]) -> Value {
    match s {
        Src::Slot(i) => values[i as usize],
        Src::Scratch(j) => scratch[j as usize],
        Src::ZeroWord => Value::Word(0),
        Src::ZeroBit => Value::Bit(false),
    }
}

/// Lowers one PE's configuration to op steps + output gathers. Mirrors
/// `MergedDatapath::evaluate_as_source`: validate, scatter the netlist
/// inputs onto datapath ports through the config's input maps (later map
/// entries overwrite, unmapped ports read zero), evaluate active nodes in
/// datapath topo order, gather `word_out_sel` then `bit_out_sel`.
#[allow(clippy::too_many_arguments)]
fn compile_pe(
    _netlist: &Netlist,
    dp: &MergedDatapath,
    dp_order: &Result<Vec<u32>, apex_merge::DatapathError>,
    u: u32,
    node: &crate::netlist::NetNode,
    cfg: &DatapathConfig,
    n_word: usize,
    val_base: &[u32],
) -> Result<(Vec<Step>, Vec<Src>), NetlistError> {
    let bad = |e: &dyn std::fmt::Display| NetlistError::BadConfig {
        node: u,
        message: e.to_string(),
    };
    dp.validate_config(cfg).map_err(|e| bad(&e))?;
    let order = match dp_order {
        Ok(o) => o,
        Err(e) => return Err(bad(e)),
    };
    if cfg.word_input_map.len() != n_word
        || cfg.bit_input_map.len() != node.inputs.len().saturating_sub(n_word)
    {
        // the reference asserts these lengths; reachable only from
        // hand-corrupted configurations, so fail cleanly instead
        return Err(bad(&"input map length mismatch"));
    }
    // scatter: which netlist slot feeds each datapath port
    let mut port_word = vec![Src::ZeroWord; dp.word_inputs];
    let mut port_bit = vec![Src::ZeroBit; dp.bit_inputs];
    for (r, &port) in node.inputs[..n_word].iter().zip(&cfg.word_input_map) {
        if let Some(p) = port_word.get_mut(port as usize) {
            *p = Src::Slot(val_base[r.node as usize] + u32::from(r.port));
        }
    }
    for (r, &port) in node.inputs[n_word..].iter().zip(&cfg.bit_input_map) {
        if let Some(p) = port_bit.get_mut(port as usize) {
            *p = Src::Slot(val_base[r.node as usize] + u32::from(r.port));
        }
    }
    let src_of = |s: DpSource| -> Src {
        match s {
            DpSource::WordInput(k) => port_word
                .get(k as usize)
                .copied()
                .unwrap_or(Src::ZeroWord),
            DpSource::BitInput(k) => port_bit.get(k as usize).copied().unwrap_or(Src::ZeroBit),
            DpSource::Node(j) => Src::Scratch(j),
        }
    };
    let mut steps = Vec::new();
    for &j in order {
        let Some(nc) = &cfg.node_cfg[j as usize] else {
            continue;
        };
        let dpn = &dp.nodes[j as usize];
        let ins = nc
            .port_sel
            .iter()
            .enumerate()
            .map(|(p, &sel)| src_of(dpn.port_candidates[p][sel as usize]))
            .collect();
        steps.push(Step {
            op: nc.op,
            dst: j,
            ins,
        });
    }
    let outs = cfg
        .word_out_sel
        .iter()
        .chain(&cfg.bit_out_sel)
        .map(|&s| src_of(s))
        .collect();
    Ok((steps, outs))
}
