//! The mapped netlist: a graph of PE instances, I/O, and delay elements.
//!
//! Instruction selection (Section 4.1.2) turns the application's dataflow
//! graph of IR operations into a dataflow graph of configured PEs
//! (Fig. 7). Branch-delay matching later inserts [`NetKind::Reg`] /
//! [`NetKind::Fifo`] nodes (Section 4.3), and the CGRA back-end places and
//! routes the result.

use apex_ir::{Op, Value, ValueType};
use apex_merge::MergedDatapath;
use apex_rewrite::RuleSet;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Simulation output pair: one word stream per `WordOutput` node and one
/// bit stream per `BitOutput` node, in netlist node order.
pub type SimStreams = (Vec<Vec<u16>>, Vec<Vec<bool>>);

/// Reference to an output port of a netlist node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetRef {
    /// Producing node index.
    pub node: u32,
    /// Output port of the producer.
    pub port: u8,
}

/// A configured PE instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeInstance {
    /// Index into the [`RuleSet`] of the rule this instance executes.
    pub rule: u32,
    /// Concrete payloads for the rule's bindings (constants, LUT tables).
    pub payloads: Vec<Op>,
}

/// Kind of a netlist node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetKind {
    /// Application word input (one word output).
    WordInput,
    /// Application bit input.
    BitInput,
    /// A PE executing a rewrite rule.
    Pe(PeInstance),
    /// Word pipeline register (1-cycle delay), placed in switch boxes.
    Reg,
    /// Bit pipeline register.
    BitReg,
    /// Register file acting as a word FIFO of the given depth
    /// (Section 4.3's chain-to-register-file transformation).
    Fifo(u8),
    /// Application word output sink.
    WordOutput,
    /// Application bit output sink.
    BitOutput,
}

/// A netlist node: kind plus input connections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetNode {
    /// What the node is.
    pub kind: NetKind,
    /// Input connections, in port order.
    pub inputs: Vec<NetRef>,
}

/// Errors found while validating or evaluating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node references a nonexistent producer or port.
    DanglingRef {
        /// The offending consumer node.
        node: u32,
    },
    /// Input count does not match the node kind's arity.
    BadArity {
        /// The offending node.
        node: u32,
    },
    /// A value type does not match where it is connected.
    TypeMismatch {
        /// The offending consumer node.
        node: u32,
        /// The mismatching input slot.
        slot: usize,
    },
    /// The netlist contains a combinational cycle.
    Cyclic,
    /// A PE instance references an unknown rule.
    UnknownRule {
        /// The offending node.
        node: u32,
    },
    /// Fewer input values/streams were supplied than the netlist has
    /// input nodes.
    InputShortage {
        /// The input node that received no value.
        node: u32,
    },
    /// A PE instance configuration failed datapath validation.
    BadConfig {
        /// The offending node.
        node: u32,
        /// The datapath's complaint.
        message: String,
    },
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::DanglingRef { node } => write!(f, "node {node}: dangling reference"),
            NetlistError::BadArity { node } => write!(f, "node {node}: wrong input count"),
            NetlistError::TypeMismatch { node, slot } => {
                write!(f, "node {node} input {slot}: type mismatch")
            }
            NetlistError::Cyclic => write!(f, "netlist contains a cycle"),
            NetlistError::UnknownRule { node } => write!(f, "node {node}: unknown rule"),
            NetlistError::InputShortage { node } => {
                write!(f, "input node {node}: no value supplied")
            }
            NetlistError::BadConfig { node, message } => {
                write!(f, "node {node}: bad instance configuration: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A mapped design: netlist + the PE ruleset its instances refer to.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// Application name.
    pub name: String,
    /// All nodes (any order; evaluation computes a topological order).
    pub nodes: Vec<NetNode>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Appends a node, returning its index.
    pub fn push(&mut self, kind: NetKind, inputs: Vec<NetRef>) -> u32 {
        self.nodes.push(NetNode { kind, inputs });
        (self.nodes.len() - 1) as u32
    }

    /// Output types of a node.
    pub fn output_types(&self, node: u32, rules: &RuleSet) -> Vec<ValueType> {
        match &self.nodes[node as usize].kind {
            NetKind::WordInput | NetKind::Reg | NetKind::Fifo(_) => vec![ValueType::Word],
            NetKind::BitInput | NetKind::BitReg => vec![ValueType::Bit],
            NetKind::WordOutput | NetKind::BitOutput => vec![],
            NetKind::Pe(inst) => {
                let rule = &rules.rules[inst.rule as usize];
                let mut tys = vec![ValueType::Word; rule.config.word_out_sel.len()];
                tys.extend(vec![ValueType::Bit; rule.config.bit_out_sel.len()]);
                tys
            }
        }
    }

    /// Input types a node expects.
    pub fn input_types(&self, node: u32, rules: &RuleSet) -> Vec<ValueType> {
        match &self.nodes[node as usize].kind {
            NetKind::WordInput | NetKind::BitInput => vec![],
            NetKind::Reg | NetKind::Fifo(_) | NetKind::WordOutput => vec![ValueType::Word],
            NetKind::BitReg | NetKind::BitOutput => vec![ValueType::Bit],
            NetKind::Pe(inst) => {
                let rule = &rules.rules[inst.rule as usize];
                let mut tys = vec![ValueType::Word; rule.config.word_input_map.len()];
                tys.extend(vec![ValueType::Bit; rule.config.bit_input_map.len()]);
                tys
            }
        }
    }

    /// Cycle latency a node adds.
    pub fn latency(&self, node: u32, pe_latency: u32) -> u32 {
        match &self.nodes[node as usize].kind {
            NetKind::Reg | NetKind::BitReg => 1,
            NetKind::Fifo(d) => u32::from(*d),
            NetKind::Pe(_) => pe_latency,
            _ => 0,
        }
    }

    /// Validates structure and typing against a ruleset.
    ///
    /// # Errors
    /// Returns the first inconsistency found.
    pub fn validate(&self, rules: &RuleSet) -> Result<(), NetlistError> {
        for (i, node) in self.nodes.iter().enumerate() {
            let i = i as u32;
            if let NetKind::Pe(inst) = &node.kind {
                if inst.rule as usize >= rules.rules.len() {
                    return Err(NetlistError::UnknownRule { node: i });
                }
            }
            let want = self.input_types(i, rules);
            if node.inputs.len() != want.len() {
                return Err(NetlistError::BadArity { node: i });
            }
            for (slot, (r, ty)) in node.inputs.iter().zip(&want).enumerate() {
                if r.node as usize >= self.nodes.len() {
                    return Err(NetlistError::DanglingRef { node: i });
                }
                let out_tys = self.output_types(r.node, rules);
                match out_tys.get(r.port as usize) {
                    None => return Err(NetlistError::DanglingRef { node: i }),
                    Some(got) if got != ty => {
                        return Err(NetlistError::TypeMismatch { node: i, slot })
                    }
                    _ => {}
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order over the nodes.
    ///
    /// # Errors
    /// Returns [`NetlistError::Cyclic`] on a combinational cycle.
    pub fn topo_order(&self) -> Result<Vec<u32>, NetlistError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for r in &node.inputs {
                succ[r.node as usize].push(i as u32);
                indeg[i] += 1;
            }
        }
        // min-index Kahn: deterministic, and the identity permutation when
        // the node vector is already topologically sorted (so rebuilt
        // netlists keep their input/output ordering)
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n as u32)
            .filter(|&i| indeg[i as usize] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(u)) = ready.pop() {
            order.push(u);
            for &v in &succ[u as usize] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    ready.push(std::cmp::Reverse(v));
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(NetlistError::Cyclic)
        }
    }

    /// Number of PE instances.
    pub fn pe_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NetKind::Pe(_)))
            .count()
    }

    /// Number of standalone pipeline registers.
    pub fn reg_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NetKind::Reg | NetKind::BitReg))
            .count()
    }

    /// Number of register-file FIFOs.
    pub fn fifo_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NetKind::Fifo(_)))
            .count()
    }

    /// Renders the netlist in Graphviz DOT format (PE instances show
    /// their rule names).
    pub fn to_dot(&self, rules: &RuleSet) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=TB;");
        for (i, node) in self.nodes.iter().enumerate() {
            let (label, shape) = match &node.kind {
                NetKind::WordInput => ("in".to_owned(), "invtriangle"),
                NetKind::BitInput => ("bit_in".to_owned(), "invtriangle"),
                NetKind::WordOutput => ("out".to_owned(), "triangle"),
                NetKind::BitOutput => ("bit_out".to_owned(), "triangle"),
                NetKind::Reg => ("reg".to_owned(), "rect"),
                NetKind::BitReg => ("bit_reg".to_owned(), "rect"),
                NetKind::Fifo(d) => (format!("fifo({d})"), "rect"),
                NetKind::Pe(inst) => (
                    rules.rules[inst.rule as usize].name.clone(),
                    "ellipse",
                ),
            };
            let _ = writeln!(s, "  n{i} [label=\"{label}\", shape={shape}];");
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for (slot, r) in node.inputs.iter().enumerate() {
                let _ = writeln!(s, "  n{} -> n{i} [label=\"{}.{slot}\"];", r.node, r.port);
            }
        }
        s.push_str("}\n");
        s
    }

    /// Evaluates the netlist combinationally (delays act as wires).
    ///
    /// Inputs are bound to `WordInput`/`BitInput` nodes in index order;
    /// returns word-output and bit-output values in index order.
    ///
    /// # Errors
    /// Fails on cyclic netlists, missing input values, and invalid
    /// instance configurations.
    pub fn evaluate(
        &self,
        dp: &MergedDatapath,
        rules: &RuleSet,
        word_inputs: &[u16],
        bit_inputs: &[bool],
    ) -> Result<(Vec<u16>, Vec<bool>), NetlistError> {
        let order = self.topo_order()?;
        let mut values: Vec<Vec<Value>> = vec![Vec::new(); self.nodes.len()];
        let mut wi = word_inputs.iter();
        let mut bi = bit_inputs.iter();
        // inputs bound in node-index order
        for (i, node) in self.nodes.iter().enumerate() {
            match node.kind {
                NetKind::WordInput => {
                    let v = wi.next().ok_or(NetlistError::InputShortage { node: i as u32 })?;
                    values[i] = vec![Value::Word(*v)];
                }
                NetKind::BitInput => {
                    let v = bi.next().ok_or(NetlistError::InputShortage { node: i as u32 })?;
                    values[i] = vec![Value::Bit(*v)];
                }
                _ => {}
            }
        }
        let mut word_out = Vec::new();
        let mut bit_out = Vec::new();
        // process in dependency order
        for &u in &order {
            let node = &self.nodes[u as usize];
            let read = |r: &NetRef, values: &[Vec<Value>]| values[r.node as usize][r.port as usize];
            match &node.kind {
                NetKind::WordInput | NetKind::BitInput => {}
                NetKind::Reg | NetKind::Fifo(_) | NetKind::BitReg => {
                    values[u as usize] = vec![read(&node.inputs[0], &values)];
                }
                NetKind::WordOutput | NetKind::BitOutput => {}
                NetKind::Pe(inst) => {
                    let rule = &rules.rules[inst.rule as usize];
                    let cfg = rule.instantiate(&inst.payloads);
                    let n_word = rule.config.word_input_map.len();
                    let words: Vec<u16> = node.inputs[..n_word]
                        .iter()
                        .map(|r| read(r, &values).word())
                        .collect();
                    let bits: Vec<bool> = node.inputs[n_word..]
                        .iter()
                        .map(|r| read(r, &values).bit())
                        .collect();
                    let (w, b) = dp
                        .evaluate_as_source(&cfg, &words, &bits)
                        .map_err(|e| NetlistError::BadConfig {
                            node: u,
                            message: e.to_string(),
                        })?;
                    let mut out: Vec<Value> = w.into_iter().map(Value::Word).collect();
                    out.extend(b.into_iter().map(Value::Bit));
                    values[u as usize] = out;
                }
            }
        }
        // outputs in node-index order
        for node in &self.nodes {
            match node.kind {
                NetKind::WordOutput => {
                    word_out.push(values[node.inputs[0].node as usize][node.inputs[0].port as usize].word())
                }
                NetKind::BitOutput => {
                    bit_out.push(values[node.inputs[0].node as usize][node.inputs[0].port as usize].bit())
                }
                _ => {}
            }
        }
        Ok((word_out, bit_out))
    }

    /// Cycle-accurate simulation. Each input stream drives one
    /// `WordInput`/`BitInput` node (in node-index order); PEs delay their
    /// outputs by `pe_latency` cycles; registers and FIFOs delay by their
    /// depth. Runs long enough to drain all state and returns the full
    /// output streams.
    ///
    /// # Errors
    /// Fails on invalid netlists or mismatched stream counts.
    pub fn simulate(
        &self,
        dp: &MergedDatapath,
        rules: &RuleSet,
        word_streams: &[Vec<u16>],
        bit_streams: &[Vec<bool>],
        pe_latency: u32,
    ) -> Result<SimStreams, NetlistError> {
        self.simulate_with(dp, rules, word_streams, bit_streams, pe_latency, &std::collections::BTreeMap::new())
    }

    /// [`Netlist::simulate`] with per-instance configuration overrides
    /// (netlist node index → configuration). The CGRA backend uses this to
    /// simulate from *decoded bitstream* configurations, proving the
    /// configuration encoding faithful.
    ///
    /// Runs on the table-compiled engine ([`crate::sim::CompiledSim`]):
    /// the netlist and every PE configuration are lowered once to a flat
    /// instruction table, then cycles execute without per-cycle decode,
    /// validation, or allocation. Output-stream and error behaviour are
    /// pinned to [`Netlist::simulate_with_reference`] by the property
    /// suite.
    ///
    /// # Errors
    /// Fails on invalid netlists or mismatched stream counts.
    pub fn simulate_with(
        &self,
        dp: &MergedDatapath,
        rules: &RuleSet,
        word_streams: &[Vec<u16>],
        bit_streams: &[Vec<bool>],
        pe_latency: u32,
        config_overrides: &std::collections::BTreeMap<u32, apex_merge::DatapathConfig>,
    ) -> Result<SimStreams, NetlistError> {
        crate::sim::CompiledSim::compile(self, dp, rules, pe_latency, config_overrides)?
            .run(word_streams, bit_streams)
    }

    /// The original decode-per-access interpreter, retained verbatim as
    /// the executable specification for [`Netlist::simulate_with`]: every
    /// cycle re-resolves each PE's configuration and re-walks the
    /// datapath. Slow, obviously correct, and replayed against the
    /// compiled engine by the property suite.
    ///
    /// # Errors
    /// Fails on invalid netlists or mismatched stream counts.
    pub fn simulate_with_reference(
        &self,
        dp: &MergedDatapath,
        rules: &RuleSet,
        word_streams: &[Vec<u16>],
        bit_streams: &[Vec<bool>],
        pe_latency: u32,
        config_overrides: &std::collections::BTreeMap<u32, apex_merge::DatapathConfig>,
    ) -> Result<SimStreams, NetlistError> {
        let order = self.topo_order()?;
        let n_cycles = word_streams
            .first()
            .map(Vec::len)
            .or_else(|| bit_streams.first().map(Vec::len))
            .unwrap_or(0);
        let drain: u32 = (0..self.nodes.len() as u32)
            .map(|i| self.latency(i, pe_latency))
            .sum();
        let total = n_cycles + drain as usize;

        let mut queues: Vec<VecDeque<Vec<Value>>> = (0..self.nodes.len() as u32)
            .map(|i| {
                let lat = self.latency(i, pe_latency);
                let zeros: Vec<Value> = self
                    .output_types(i, rules)
                    .iter()
                    .map(|t| Value::zero(*t))
                    .collect();
                (0..lat).map(|_| zeros.clone()).collect()
            })
            .collect();
        let mut values: Vec<Vec<Value>> = (0..self.nodes.len() as u32)
            .map(|i| {
                self.output_types(i, rules)
                    .iter()
                    .map(|t| Value::zero(*t))
                    .collect()
            })
            .collect();

        let n_word_out = self
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NetKind::WordOutput))
            .count();
        let n_bit_out = self
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NetKind::BitOutput))
            .count();
        let mut word_out = vec![Vec::with_capacity(total); n_word_out];
        let mut bit_out = vec![Vec::with_capacity(total); n_bit_out];

        for cycle in 0..total {
            let mut wi = 0usize;
            let mut bi = 0usize;
            for (i, node) in self.nodes.iter().enumerate() {
                match node.kind {
                    NetKind::WordInput => {
                        let v = if cycle < n_cycles {
                            let s = word_streams
                                .get(wi)
                                .ok_or(NetlistError::InputShortage { node: i as u32 })?;
                            s.get(cycle).copied().unwrap_or(0)
                        } else {
                            0
                        };
                        values[i] = vec![Value::Word(v)];
                        wi += 1;
                    }
                    NetKind::BitInput => {
                        let v = if cycle < n_cycles {
                            let s = bit_streams
                                .get(bi)
                                .ok_or(NetlistError::InputShortage { node: i as u32 })?;
                            s.get(cycle).copied().unwrap_or(false)
                        } else {
                            false
                        };
                        values[i] = vec![Value::Bit(v)];
                        bi += 1;
                    }
                    _ => {}
                }
            }
            for &u in &order {
                let node = &self.nodes[u as usize];
                let read =
                    |r: &NetRef, values: &[Vec<Value>]| values[r.node as usize][r.port as usize];
                let comb: Option<Vec<Value>> = match &node.kind {
                    NetKind::WordInput | NetKind::BitInput | NetKind::WordOutput
                    | NetKind::BitOutput => None,
                    NetKind::Reg | NetKind::BitReg | NetKind::Fifo(_) => {
                        Some(vec![read(&node.inputs[0], &values)])
                    }
                    NetKind::Pe(inst) => {
                        let rule = &rules.rules[inst.rule as usize];
                        let cfg = config_overrides
                            .get(&u)
                            .cloned()
                            .unwrap_or_else(|| rule.instantiate(&inst.payloads));
                        let n_word = rule.config.word_input_map.len();
                        let words: Vec<u16> = node.inputs[..n_word]
                            .iter()
                            .map(|r| read(r, &values).word())
                            .collect();
                        let bits: Vec<bool> = node.inputs[n_word..]
                            .iter()
                            .map(|r| read(r, &values).bit())
                            .collect();
                        let (w, b) = dp
                            .evaluate_as_source(&cfg, &words, &bits)
                            .map_err(|e| NetlistError::BadConfig {
                                node: u,
                                message: e.to_string(),
                            })?;
                        let mut out: Vec<Value> = w.into_iter().map(Value::Word).collect();
                        out.extend(b.into_iter().map(Value::Bit));
                        Some(out)
                    }
                };
                if let Some(comb) = comb {
                    let q = &mut queues[u as usize];
                    match q.pop_front() {
                        Some(front) => {
                            values[u as usize] = front;
                            q.push_back(comb);
                        }
                        None => values[u as usize] = comb,
                    }
                }
            }
            let mut wo = 0usize;
            let mut bo = 0usize;
            for node in &self.nodes {
                match node.kind {
                    NetKind::WordOutput => {
                        let r = &node.inputs[0];
                        word_out[wo].push(values[r.node as usize][r.port as usize].word());
                        wo += 1;
                    }
                    NetKind::BitOutput => {
                        let r = &node.inputs[0];
                        bit_out[bo].push(values[r.node as usize][r.port as usize].bit());
                        bo += 1;
                    }
                    _ => {}
                }
            }
        }
        Ok((word_out, bit_out))
    }
}
