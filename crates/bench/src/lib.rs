//! # apex-bench — benchmark harness
//!
//! Two Criterion bench suites:
//!
//! * `paper_results` — regenerates **every table and figure** of the
//!   paper's Section 5 (printed to stdout as the reproduction artifact)
//!   and benchmarks a representative slice of the flow behind each one;
//! * `algorithms` — micro-benchmarks of every algorithmic stage (mining,
//!   MIS, merging, clique, rule synthesis, mapping, pipelining,
//!   placement, routing, bitstream, Verilog emission, simulation).
//!
//! ```bash
//! cargo bench -p apex-bench
//! ```
