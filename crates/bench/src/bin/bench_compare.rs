//! Compares two `APEX_BENCH_JSON` dumps and fails on regressions.
//!
//! ```text
//! bench_compare <baseline.json> <new.json> [--only PREFIX]... [--threshold FRAC]
//! ```
//!
//! Both files hold the flat array the criterion shim emits:
//! `[{"name": ..., "mean_ns": ..., "iters": ...}, ...]`. Because the two
//! dumps may come from machines of different speeds, raw ratios are
//! normalized first: the *median* of `new/old` across every shared entry
//! estimates the machine-speed factor, and each entry is judged against
//! that. An entry whose normalized ratio exceeds `1 + threshold`
//! (default 0.10) is a regression; with `--only`, only entries whose name
//! starts with one of the given prefixes can fail the run (all shared
//! entries still feed the normalization). Exit code 1 on any regression.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One `{"name", "mean_ns", "iters"}` record from the shim's flat dump.
fn parse_entries(text: &str, path: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    // the dump is one object per `{...}` span; no nesting, no escapes
    // beyond `\"` (the shim writes names it controls)
    for obj in text.split('{').skip(1) {
        let Some(obj) = obj.split('}').next() else {
            continue;
        };
        let name = field(obj, "\"name\"").and_then(|v| {
            let v = v.trim();
            v.strip_prefix('"')?.split('"').next().map(str::to_owned)
        });
        let mean = field(obj, "\"mean_ns\"")
            .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok());
        match (name, mean) {
            (Some(n), Some(m)) if m.is_finite() && m > 0.0 => {
                out.insert(n, m);
            }
            _ => eprintln!("bench_compare: skipping malformed entry in {path}"),
        }
    }
    out
}

/// The raw text after `"key":` up to the next comma or end of object.
fn field<'t>(obj: &'t str, key: &str) -> Option<&'t str> {
    let start = obj.find(key)? + key.len();
    let rest = obj[start..].trim_start().strip_prefix(':')?;
    // string values keep their quotes; numeric values end at ',' or end
    Some(rest.split(", \"").next().unwrap_or(rest))
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n == 0 {
        return 1.0;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut only: Vec<String> = Vec::new();
    let mut threshold = 0.10f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--only" => match it.next() {
                Some(p) => only.push(p),
                None => return usage("--only needs a prefix"),
            },
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => return usage("--threshold needs a positive fraction"),
            },
            _ => files.push(a),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return usage("expected exactly two files");
    };
    let (old_text, new_text) = match (
        std::fs::read_to_string(old_path),
        std::fs::read_to_string(new_path),
    ) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) => return usage(&format!("cannot read {old_path}: {e}")),
        (_, Err(e)) => return usage(&format!("cannot read {new_path}: {e}")),
    };
    let old = parse_entries(&old_text, old_path);
    let new = parse_entries(&new_text, new_path);

    let shared: Vec<&String> = old.keys().filter(|k| new.contains_key(*k)).collect();
    if shared.is_empty() {
        return usage("no shared benchmark entries between the two files");
    }
    let scale = median(shared.iter().map(|k| new[*k] / old[*k]).collect());
    println!(
        "bench_compare: {} shared entr{}, machine-speed factor {scale:.3}",
        shared.len(),
        if shared.len() == 1 { "y" } else { "ies" }
    );

    let watched = |name: &str| only.is_empty() || only.iter().any(|p| name.starts_with(p));
    let mut regressed = 0usize;
    for k in &shared {
        let ratio = new[*k] / old[*k] / scale;
        let flag = if !watched(k) {
            "   (unwatched)"
        } else if ratio > 1.0 + threshold {
            regressed += 1;
            "   REGRESSION"
        } else {
            ""
        };
        println!(
            "  {k:<40} {:>12.1} -> {:>12.1} ns   x{ratio:.3}{flag}",
            old[*k], new[*k]
        );
    }
    for k in new.keys().filter(|k| !old.contains_key(*k)) {
        println!("  {k:<40} (new entry, no baseline)");
    }
    if regressed > 0 {
        eprintln!(
            "bench_compare: {regressed} watched entr{} regressed beyond {:.0}% (normalized)",
            if regressed == 1 { "y" } else { "ies" },
            threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_compare: no watched regression beyond {:.0}%", threshold * 100.0);
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("bench_compare: {err}");
    eprintln!(
        "usage: bench_compare <baseline.json> <new.json> [--only PREFIX]... [--threshold FRAC]"
    );
    ExitCode::FAILURE
}
