//! Micro-benchmarks of every algorithmic stage of the APEX flow:
//! subgraph mining, MIS analysis, datapath merging, max-weight clique,
//! rewrite-rule synthesis, instruction selection, pipelining, placement,
//! routing, bitstream generation, and Verilog emission.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithms");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    let gaussian = apex_apps::gaussian();
    let camera = apex_apps::camera_pipeline();
    let tech = apex_tech::TechModel::default();

    // --- stage 1: frequent subgraph mining (GraMi substitute) -------------
    g.bench_function("mine_gaussian", |b| {
        b.iter(|| apex_mining::mine(&gaussian.graph, &apex_mining::MinerConfig::default()))
    });
    g.bench_function("mine_camera", |b| {
        b.iter(|| {
            apex_mining::mine(
                &camera.graph,
                &apex_mining::MinerConfig {
                    max_patterns: 200,
                    ..apex_mining::MinerConfig::default()
                },
            )
        })
    });

    // end-to-end mining sweep over the full 9-app suite (the trajectory
    // headline number: dominated by the embedding search + extension
    // enumeration hot paths)
    let mut suite = apex_apps::analyzed_apps();
    suite.extend(apex_apps::unseen_apps());
    g.bench_function("mine_nine_apps", |b| {
        b.iter(|| {
            for app in &suite {
                apex_mining::mine(&app.graph, &apex_mining::MinerConfig::default())
                    .expect("mining succeeds");
            }
        })
    });

    // --- MIS analysis ------------------------------------------------------
    let mined = apex_mining::mine(&camera.graph, &apex_mining::MinerConfig::default())
        .expect("mining succeeds");
    let biggest = mined
        .subgraphs
        .iter()
        .max_by_key(|m| m.occurrences.len())
        .expect("camera has frequent subgraphs");
    g.bench_function("mis_analysis", |b| {
        b.iter(|| apex_mining::maximal_independent_set(&biggest.occurrences))
    });

    // --- stage 2: datapath merging ------------------------------------------
    let pe1 = apex_pe::baseline_pe_with_ops(
        "bench_pe",
        &apex_core::required_op_kinds(&[&gaussian]),
    );
    let subgraphs: Vec<apex_ir::Graph> = apex_core::select_subgraphs(
        &gaussian,
        &apex_mining::MinerConfig::default(),
        &apex_core::SubgraphSelection::default(),
    )
    .expect("mining succeeds")
    .0
    .iter()
    .map(|m| m.to_datapath(&gaussian.graph, "sg").expect("datapath materializes"))
    .collect();
    g.bench_function("merge_subgraph_into_pe", |b| {
        b.iter(|| {
            apex_merge::merge_graph(
                &pe1.datapath,
                &subgraphs[0],
                &tech,
                &apex_merge::MergeOptions::default(),
            )
        })
    });

    // --- max-weight clique ----------------------------------------------------
    g.bench_function("max_weight_clique_40", |b| {
        let n = 40;
        let mut state = 0x1234_5678u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut compat = vec![vec![false; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rand() % 3 != 0 {
                    compat[i][j] = true;
                    compat[j][i] = true;
                }
            }
        }
        let weights: Vec<f64> = (0..n).map(|_| (rand() % 100) as f64).collect();
        b.iter(|| apex_merge::max_weight_clique(&weights, &compat, 200_000))
    });

    // --- rewrite-rule synthesis (SMT substitute) --------------------------------
    let base = apex_pe::baseline_pe();
    g.bench_function("synthesize_ruleset_baseline", |b| {
        b.iter(|| apex_rewrite::standard_ruleset(&base.datapath, &[], &[&gaussian.graph]))
    });

    // --- stage 3: instruction selection -------------------------------------
    let (rules, _) =
        apex_rewrite::standard_ruleset(&base.datapath, &[], &[&gaussian.graph]).unwrap();
    g.bench_function("map_gaussian_baseline", |b| {
        b.iter(|| apex_map::map_application(&gaussian.graph, &base.datapath, &rules).unwrap())
    });

    // --- pipelining -----------------------------------------------------------
    let design = apex_map::map_application(&gaussian.graph, &base.datapath, &rules).unwrap();
    g.bench_function("branch_delay_matching", |b| {
        b.iter(|| {
            apex_pipeline::pipeline_application(
                &design.netlist,
                &rules,
                2,
                &apex_pipeline::AppPipelineOptions::default(),
            )
        })
    });

    // --- place and route --------------------------------------------------------
    let fabric = apex_cgra::Fabric::new(apex_cgra::FabricConfig::default());
    g.bench_function("place_gaussian", |b| {
        b.iter(|| {
            apex_cgra::place(
                &design.netlist,
                &fabric,
                &apex_cgra::PlaceOptions {
                    moves: 8_000,
                    ..apex_cgra::PlaceOptions::default()
                },
            )
            .unwrap()
        })
    });
    let placement = apex_cgra::place(&design.netlist, &fabric, &apex_cgra::PlaceOptions::default())
        .unwrap();
    g.bench_function("route_gaussian", |b| {
        b.iter(|| {
            apex_cgra::route(
                &design.netlist,
                &rules,
                &fabric,
                &placement,
                &apex_cgra::RouteOptions::default(),
            )
            .unwrap()
        })
    });

    // congested multi-round negotiation: a 16x14 array with only two
    // tracks per direction forces PathFinder through 4 rip-up rounds
    // (probed; seed-sensitive), exercising the incremental re-route path
    // that single-round gaussian routing never reaches
    let tight = apex_cgra::Fabric::new(apex_cgra::FabricConfig {
        width: 16,
        height: 14,
        word_tracks: 2,
        bit_tracks: 2,
        ..apex_cgra::FabricConfig::default()
    });
    let tight_placement = apex_cgra::place(
        &design.netlist,
        &tight,
        &apex_cgra::PlaceOptions { seed: 99, ..apex_cgra::PlaceOptions::default() },
    )
    .unwrap();
    let tight_opts = apex_cgra::RouteOptions {
        max_iterations: 40,
        history_increment: 1.0,
        ..apex_cgra::RouteOptions::default()
    };
    g.bench_function("route_congested_2track", |b| {
        b.iter(|| {
            apex_cgra::route(&design.netlist, &rules, &tight, &tight_placement, &tight_opts)
                .unwrap()
        })
    });

    // --- bitstream + RTL ----------------------------------------------------------
    let routing = apex_cgra::route(
        &design.netlist,
        &rules,
        &fabric,
        &placement,
        &apex_cgra::RouteOptions::default(),
    )
    .unwrap();
    g.bench_function("bitstream_generation", |b| {
        b.iter(|| {
            apex_cgra::generate_bitstream(
                &design.netlist,
                &rules,
                &base.datapath,
                &fabric,
                &placement,
                &routing,
            )
        })
    });
    g.bench_function("emit_verilog_baseline_pe", |b| {
        b.iter(|| apex_pe::emit_verilog(&base))
    });

    // --- fabric simulation (VCS substitute) ---------------------------------------
    let n_in = design
        .netlist
        .nodes
        .iter()
        .filter(|n| matches!(n.kind, apex_map::NetKind::WordInput))
        .count();
    let streams: Vec<Vec<u16>> = (0..n_in).map(|i| vec![i as u16; 8]).collect();
    g.bench_function("simulate_gaussian_8_cycles", |b| {
        b.iter(|| design.netlist.simulate(&base.datapath, &rules, &streams, &[], 1))
    });

    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
