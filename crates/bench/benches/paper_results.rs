//! The paper-results benchmark harness.
//!
//! Running `cargo bench -p apex-bench --bench paper_results` first
//! regenerates **every table and figure** of the paper's Section 5
//! (printed to stdout — this is the reproduction artifact), then
//! benchmarks a representative slice of the flow behind each one so
//! regressions in any stage show up as timing changes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn regenerate_all_tables() {
    eprintln!("\n######## regenerating all paper tables and figures ########");
    for (name, gen) in apex_eval::all_experiments() {
        let t0 = std::time::Instant::now();
        let table = gen().expect("experiment regenerates");
        println!("{table}");
        eprintln!("[{name} regenerated in {:.1?}]", t0.elapsed());
    }
    eprintln!("######## regeneration complete ########\n");
}

fn bench_paper(c: &mut Criterion) {
    // the reproduction itself: print every table/figure once
    regenerate_all_tables();

    let mut g = c.benchmark_group("paper");
    g.sample_size(10).measurement_time(Duration::from_secs(4));

    // Table 1 / Fig. 10: application analysis (mining + MIS + selection)
    g.bench_function("fig10_subgraph_selection_gaussian", |b| {
        let app = apex_eval::app("gaussian").unwrap();
        b.iter(|| {
            apex_core::select_subgraphs(
                app,
                &apex_mining::MinerConfig::default(),
                &apex_core::SubgraphSelection::default(),
            )
        })
    });

    // Fig. 11 / Table 2: post-mapping evaluation of a ladder variant
    g.bench_function("fig11_camera_post_mapping", |b| {
        let camera = apex_eval::app("camera").unwrap();
        let v = &apex_eval::camera_ladder().unwrap()[1];
        b.iter(|| apex_eval::experiments::post_mapping(v, camera).unwrap())
    });

    // Fig. 12/13/14: instruction selection on the domain PE
    g.bench_function("fig14_map_gaussian_on_pe_ip", |b| {
        let app = apex_eval::app("gaussian").unwrap();
        let v = apex_eval::pe_ip().unwrap();
        b.iter(|| {
            apex_map::map_application(&app.graph, &v.spec.datapath, &v.rules).unwrap()
        })
    });

    // Fig. 15 / Table 3: one full place-and-route evaluation
    g.bench_function("fig15_full_pnr_gaussian_baseline", |b| {
        let app = apex_eval::app("gaussian").unwrap();
        let v = apex_eval::baseline().unwrap();
        b.iter(|| apex_eval::run(v, app, false))
    });

    // Fig. 16: the pipelined backend
    g.bench_function("fig16_pipelined_eval_resnet_pe_ml", |b| {
        let app = apex_eval::app("resnet").unwrap();
        let v = apex_eval::pe_ml().unwrap();
        b.iter(|| apex_eval::run(v, app, true))
    });

    // Fig. 17/18: analytic comparators
    g.bench_function("fig17_comparator_models", |b| {
        let app = apex_eval::app("camera").unwrap();
        let tech = apex_eval::tech();
        b.iter(|| {
            (
                apex_eval::asic(app, tech),
                apex_eval::fpga(app, tech),
                apex_eval::simba(app, tech),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_paper);
criterion_main!(benches);
