//! IR checker pass: DAG/SSA discipline, port arity, operand type
//! agreement, dead-node and unreachable-output detection.
//!
//! Subsumes and extends [`apex_ir::Graph::try_validate`]: where
//! `try_validate` stops at the first error, this pass collects every
//! violation, and it additionally performs the liveness checks
//! (`IR-DEAD`, `IR-OUTPUT`) that only make sense as diagnostics.

use crate::Violation;
use apex_ir::{Graph, Op};

/// Verifies a dataflow graph. Never panics, even on wildly corrupt
/// inputs (out-of-range operand ids, wrong arities).
///
/// Rules:
/// * `IR-ARITY` — a node's input count disagrees with its op's arity,
/// * `IR-SSA` — an operand references the node itself or a later node
///   (the sequential-id encoding of a cycle / use-before-def),
/// * `IR-TYPE` — an operand's type disagrees with the port's type,
/// * `IR-DEAD` — a non-input node from which no primary output is
///   reachable (its value is computed but never observed),
/// * `IR-OUTPUT` — a primary output not reachable from any primary
///   input, in a graph that has primary inputs (the output can only
///   ever produce a constant).
pub fn verify_graph(g: &Graph) -> Vec<Violation> {
    let mut out = Vec::new();
    let artifact = format!("graph '{}'", g.name());

    // --- structural: arity, SSA order, operand types -------------------
    for (id, node) in g.iter() {
        let tys = node.op().input_types();
        if node.inputs().len() != tys.len() {
            out.push(Violation::new(
                "IR-ARITY",
                &artifact,
                format!("node {id}"),
                format!(
                    "{:?} takes {} input(s), found {}",
                    node.op(),
                    tys.len(),
                    node.inputs().len()
                ),
            ));
        }
        for (port, &src) in node.inputs().iter().enumerate() {
            if src.index() >= id.index() {
                out.push(Violation::new(
                    "IR-SSA",
                    &artifact,
                    format!("node {id} port {port}"),
                    format!("operand {src} is not defined before {id}"),
                ));
                continue; // no type to check against
            }
            let Some(&ty) = tys.get(port) else { continue };
            let got = g.op(src).output_type();
            if got != ty {
                out.push(Violation::new(
                    "IR-TYPE",
                    &artifact,
                    format!("node {id} port {port}"),
                    format!("expected {ty:?} operand, {src} produces {got:?}"),
                ));
            }
        }
    }
    if !out.is_empty() {
        // liveness is meaningless on structurally broken graphs
        return out;
    }

    // --- liveness: reverse reachability from the primary outputs -------
    let n = g.len();
    let mut live = vec![false; n];
    let mut stack: Vec<_> = g.primary_outputs();
    for &o in &stack {
        live[o.index()] = true;
    }
    while let Some(v) = stack.pop() {
        for &src in g.node(v).inputs() {
            if !live[src.index()] {
                live[src.index()] = true;
                stack.push(src);
            }
        }
    }
    for (id, node) in g.iter() {
        if live[id.index()] {
            continue;
        }
        // unused primary inputs are legal (an interface is not a value)
        if matches!(node.op(), Op::Input | Op::BitInput) {
            continue;
        }
        out.push(Violation::new(
            "IR-DEAD",
            &artifact,
            format!("node {id}"),
            format!("{:?} reaches no primary output", node.op()),
        ));
    }

    // --- unreachable outputs: forward reachability from the inputs -----
    let primary_inputs = g.primary_inputs();
    if !primary_inputs.is_empty() {
        let fan = g.fanouts();
        let mut reach = vec![false; n];
        let mut stack = primary_inputs;
        for &i in &stack {
            reach[i.index()] = true;
        }
        while let Some(v) = stack.pop() {
            for &dst in &fan[v.index()] {
                if !reach[dst.index()] {
                    reach[dst.index()] = true;
                    stack.push(dst);
                }
            }
        }
        for o in g.primary_outputs() {
            if !reach[o.index()] {
                out.push(Violation::new(
                    "IR-OUTPUT",
                    &artifact,
                    format!("node {o}"),
                    "primary output depends on no primary input".to_owned(),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{NodeId, Op};

    #[test]
    fn clean_graph_has_no_violations() {
        let mut g = Graph::new("ok");
        let a = g.input();
        let b = g.input();
        let s = g.add(Op::Add, &[a, b]);
        g.output(s);
        assert!(verify_graph(&g).is_empty());
    }

    #[test]
    fn dead_node_is_flagged() {
        let mut g = Graph::new("dead");
        let a = g.input();
        let b = g.input();
        let s = g.add(Op::Add, &[a, b]);
        g.add(Op::Mul, &[a, b]);
        g.output(s);
        let vs = verify_graph(&g);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "IR-DEAD");
    }

    #[test]
    fn constant_only_output_is_flagged_when_inputs_exist() {
        let mut g = Graph::new("constout");
        let a = g.input();
        let c = g.constant(7);
        g.output(a);
        g.output(c);
        let vs = verify_graph(&g);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "IR-OUTPUT");
    }

    #[test]
    fn const_passthrough_pattern_is_clean() {
        // rewrite rules for standalone constants have no primary inputs;
        // IR-OUTPUT must not fire on them
        let mut g = Graph::new("const");
        let c = g.constant(3);
        g.output(c);
        assert!(verify_graph(&g).is_empty());
    }

    #[test]
    fn forward_reference_is_ssa_violation() {
        let g = Graph::from_raw_parts(
            "fwd",
            vec![
                (Op::Input, vec![]),
                (Op::Add, vec![NodeId(0), NodeId(2)]),
                (Op::Input, vec![]),
                (Op::Output, vec![NodeId(1)]),
            ],
        );
        let vs = verify_graph(&g);
        assert!(vs.iter().any(|v| v.rule == "IR-SSA"), "{vs:?}");
    }

    #[test]
    fn out_of_range_operand_does_not_panic() {
        let g = Graph::from_raw_parts(
            "oob",
            vec![(Op::Input, vec![]), (Op::Output, vec![NodeId(99)])],
        );
        let vs = verify_graph(&g);
        assert!(vs.iter().any(|v| v.rule == "IR-SSA"));
    }

    #[test]
    fn arity_and_type_violations_are_both_reported() {
        let g = Graph::from_raw_parts(
            "bad",
            vec![
                (Op::Input, vec![]),
                (Op::Eq, vec![NodeId(0), NodeId(0)]),
                (Op::Add, vec![NodeId(0)]),                       // arity
                (Op::Mul, vec![NodeId(0), NodeId(1)]),            // type (bit into word port)
                (Op::Output, vec![NodeId(3)]),
            ],
        );
        let vs = verify_graph(&g);
        assert!(vs.iter().any(|v| v.rule == "IR-ARITY"));
        assert!(vs.iter().any(|v| v.rule == "IR-TYPE"));
    }
}
