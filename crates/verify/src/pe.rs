//! PE checker pass: the pipeline stage assignment is well-formed and
//! monotone along every candidate dataflow edge.

use crate::Violation;
use apex_merge::DpSource;
use apex_pe::PeSpec;

/// Verifies a PE specification's pipeline annotation. Specs without a
/// pipeline (purely combinational PEs) are trivially clean.
///
/// Rules:
/// * `PE-PIPE-LEN` — the stage assignment does not cover every datapath
///   node,
/// * `PE-PIPE-RANGE` — a stage index is out of range, or the stage count
///   is zero,
/// * `PE-PIPE-ORDER` — a candidate edge goes backward in time (a node's
///   source is assigned a later stage than the node itself).
pub fn verify_pe(spec: &PeSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(pipe) = &spec.pipeline else {
        return out;
    };
    let artifact = format!("PE '{}'", spec.name);
    let n = spec.datapath.nodes.len();

    if pipe.stage_of_node.len() != n {
        out.push(Violation::new(
            "PE-PIPE-LEN",
            &artifact,
            "pipeline",
            format!(
                "stage assignment covers {} node(s), datapath has {n}",
                pipe.stage_of_node.len()
            ),
        ));
        return out; // per-edge checks would index out of bounds
    }
    if pipe.stages == 0 {
        out.push(Violation::new(
            "PE-PIPE-RANGE",
            &artifact,
            "pipeline",
            "stage count is zero".to_owned(),
        ));
    }
    for (i, &s) in pipe.stage_of_node.iter().enumerate() {
        if s >= pipe.stages {
            out.push(Violation::new(
                "PE-PIPE-RANGE",
                &artifact,
                format!("node n{i}"),
                format!("stage {s} out of range ({} stages)", pipe.stages),
            ));
        }
    }
    for (i, node) in spec.datapath.nodes.iter().enumerate() {
        for (p, cands) in node.port_candidates.iter().enumerate() {
            for &c in cands {
                let DpSource::Node(u) = c else { continue };
                let Some(&su) = pipe.stage_of_node.get(u as usize) else {
                    continue; // MERGE-PORT territory, not a pipeline claim
                };
                if su > pipe.stage_of_node[i] {
                    out.push(Violation::new(
                        "PE-PIPE-ORDER",
                        &artifact,
                        format!("node n{i} port {p}"),
                        format!(
                            "source n{u} in stage {su} feeds a node in earlier stage {}",
                            pipe.stage_of_node[i]
                        ),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::{Graph, Op};
    use apex_merge::MergedDatapath;
    use apex_pe::PePipeline;

    fn spec() -> PeSpec {
        let mut g = Graph::new("mac");
        let (a, b, c) = (g.input(), g.input(), g.input());
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        g.output(s);
        PeSpec {
            name: "mac".into(),
            datapath: MergedDatapath::from_graph(&g),
            legacy_control: false,
            pipeline: Some(PePipeline {
                stage_of_node: vec![0, 1],
                stages: 2,
            }),
        }
    }

    #[test]
    fn monotone_pipeline_is_clean() {
        let vs = verify_pe(&spec());
        assert!(vs.is_empty(), "{}", crate::render(&vs));
    }

    #[test]
    fn unpipelined_spec_is_clean() {
        let mut s = spec();
        s.pipeline = None;
        assert!(verify_pe(&s).is_empty());
    }

    #[test]
    fn backward_edge_is_caught() {
        let mut s = spec();
        s.pipeline = Some(PePipeline {
            stage_of_node: vec![1, 0], // mul after add, but add consumes mul
            stages: 2,
        });
        let vs = verify_pe(&s);
        assert!(vs.iter().any(|v| v.rule == "PE-PIPE-ORDER"), "{}", crate::render(&vs));
    }

    #[test]
    fn short_assignment_is_caught() {
        let mut s = spec();
        s.pipeline = Some(PePipeline {
            stage_of_node: vec![0],
            stages: 1,
        });
        let vs = verify_pe(&s);
        assert!(vs.iter().any(|v| v.rule == "PE-PIPE-LEN"));
    }

    #[test]
    fn out_of_range_stage_is_caught() {
        let mut s = spec();
        s.pipeline = Some(PePipeline {
            stage_of_node: vec![0, 5],
            stages: 2,
        });
        let vs = verify_pe(&s);
        assert!(vs.iter().any(|v| v.rule == "PE-PIPE-RANGE"));
    }
}
