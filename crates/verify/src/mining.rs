//! Mining checker pass: every reported occurrence is a real,
//! label/port-consistent embedding of its pattern in the source
//! application, and the support counts are consistent with the
//! occurrence lists.

use crate::Violation;
use apex_ir::{Graph, NodeId};
use apex_mining::{find_embeddings, maximal_independent_set, GraphIndex, MinedSubgraph};

/// Verifies mined subgraphs against their source application graph.
///
/// Rules:
/// * `MINE-REP` — the representative embedding is malformed (wrong
///   size, label mismatch, or a pattern edge with no matching graph
///   edge at the required port),
/// * `MINE-OCC-SIZE` — an occurrence's node count disagrees with the
///   pattern (or repeats / out-of-range nodes),
/// * `MINE-OCC-LABEL` — an occurrence's op-kind multiset disagrees
///   with the pattern's labels,
/// * `MINE-OCC-EMBED` — no injective, port-consistent embedding of the
///   pattern exists on exactly the occurrence's nodes,
/// * `MINE-OCC-DUP` — the occurrence list repeats a node set (or is not
///   sorted ascending): automorphic embeddings of a symmetric pattern
///   must be collapsed before MIS analysis or the utilization estimate
///   is inflated,
/// * `MINE-SUPPORT` — MNI support below the MIS size (disjoint
///   occurrences guarantee that many distinct images per position),
/// * `MINE-MIS` — the stored MIS size disagrees with the deterministic
///   greedy MIS recomputed from the occurrence list.
pub fn verify_mined(app: &Graph, mined: &[MinedSubgraph]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (k, m) in mined.iter().enumerate() {
        let artifact = format!("subgraph #{k} of app '{}'", app.name());
        let plen = m.pattern.len();
        let labels = m.pattern.labels();

        // --- representative: pattern index -> graph node ----------------
        if m.representative.len() != plen
            || m
                .representative
                .iter()
                .any(|n| n.index() >= app.len())
        {
            out.push(Violation::new(
                "MINE-REP",
                &artifact,
                "representative",
                format!(
                    "representative maps {} node(s), pattern has {plen}",
                    m.representative.len()
                ),
            ));
        } else {
            for (i, &n) in m.representative.iter().enumerate() {
                if app.op(n).kind() != labels[i] {
                    out.push(Violation::new(
                        "MINE-REP",
                        &artifact,
                        format!("representative[{i}]"),
                        format!(
                            "{n} is {:?}, pattern label is {:?}",
                            app.op(n).kind(),
                            labels[i]
                        ),
                    ));
                }
            }
            for (s, d, port) in m.pattern.edges() {
                let src = m.representative[s as usize];
                let dst = m.representative[d as usize];
                let inputs = app.node(dst).inputs();
                let present = match port {
                    Some(p) => inputs.get(p as usize) == Some(&src),
                    None => inputs.contains(&src),
                };
                if !present {
                    out.push(Violation::new(
                        "MINE-REP",
                        &artifact,
                        format!("pattern edge {s}->{d}"),
                        format!("no graph edge {src}->{dst} (port {port:?})"),
                    ));
                }
            }
        }

        // --- occurrences: sorted node sets ------------------------------
        let mut sorted_labels = labels.to_vec();
        sorted_labels.sort();
        for (j, occ) in m.occurrences.iter().enumerate() {
            let loc = format!("occurrence[{j}]");
            let mut distinct = occ.clone();
            distinct.sort();
            distinct.dedup();
            if distinct.len() != plen || occ.iter().any(|n| n.index() >= app.len()) {
                out.push(Violation::new(
                    "MINE-OCC-SIZE",
                    &artifact,
                    loc,
                    format!("{} distinct node(s), pattern has {plen}", distinct.len()),
                ));
                continue;
            }
            let mut occ_labels: Vec<_> = occ.iter().map(|&n| app.op(n).kind()).collect();
            occ_labels.sort();
            if occ_labels != sorted_labels {
                out.push(Violation::new(
                    "MINE-OCC-LABEL",
                    &artifact,
                    loc,
                    format!("labels {occ_labels:?} != pattern {sorted_labels:?}"),
                ));
                continue;
            }
            if !occurrence_embeds(app, &distinct, m) {
                out.push(Violation::new(
                    "MINE-OCC-EMBED",
                    &artifact,
                    loc,
                    "no port-consistent embedding of the pattern on these nodes".to_owned(),
                ));
            }
        }

        // --- occurrence list: strictly ascending, duplicate-free --------
        for w in m.occurrences.windows(2) {
            if w[0] >= w[1] {
                out.push(Violation::new(
                    "MINE-OCC-DUP",
                    &artifact,
                    "occurrences",
                    format!(
                        "occurrence list not strictly ascending at {:?} / {:?} \
                         (automorphic node sets must be collapsed)",
                        w[0], w[1]
                    ),
                ));
                break;
            }
        }

        // --- support counts ---------------------------------------------
        if m.mni_support < m.mis_size {
            out.push(Violation::new(
                "MINE-SUPPORT",
                &artifact,
                "support",
                format!(
                    "MNI support {} below MIS size {} (disjoint occurrences imply \
                     that many distinct images per position)",
                    m.mni_support, m.mis_size
                ),
            ));
        }
        let recomputed = maximal_independent_set(&m.occurrences).len();
        if m.mis_size != recomputed {
            out.push(Violation::new(
                "MINE-MIS",
                &artifact,
                "support",
                format!("stored MIS size {} != recomputed {recomputed}", m.mis_size),
            ));
        }
    }
    out
}

/// Does the pattern embed onto exactly `nodes` (a sorted, deduplicated
/// node set of the right size and label multiset)?
///
/// The subgraph induced by `nodes` is extracted (preserving port order)
/// and the pattern matched inside it: the small graph has exactly
/// `pattern.len()` compute nodes, so any embedding found is a bijection
/// onto the occurrence.
fn occurrence_embeds(app: &Graph, nodes: &[NodeId], m: &MinedSubgraph) -> bool {
    let (sub, _) = app.extract_subgraph(nodes, "occ");
    // extraction rewires external consts/inputs as primary inputs, so the
    // compute region of `sub` is exactly the occurrence
    let index = GraphIndex::new(&sub);
    let es = find_embeddings(&m.pattern, &index, 1);
    !es.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::Op;
    use apex_mining::{mine, MinerConfig};

    fn conv_graph() -> Graph {
        let mut g = Graph::new("conv");
        let mut acc = None;
        for k in 0..4u16 {
            let i = g.input();
            let w = g.constant(10 + k);
            let mul = g.add(Op::Mul, &[i, w]);
            acc = Some(match acc {
                None => mul,
                Some(a) => g.add(Op::Add, &[a, mul]),
            });
        }
        let fin = acc.expect("non-empty");
        g.output(fin);
        g
    }

    fn mined(g: &Graph) -> Vec<MinedSubgraph> {
        mine(
            g,
            &MinerConfig {
                min_support: 2,
                ..MinerConfig::default()
            },
        )
        .expect("mining succeeds")
        .subgraphs
    }

    #[test]
    fn honest_mining_output_is_clean() {
        let g = conv_graph();
        let ms = mined(&g);
        assert!(!ms.is_empty());
        let vs = verify_mined(&g, &ms);
        assert!(vs.is_empty(), "{}", crate::render(&vs));
    }

    #[test]
    fn wrong_label_occurrence_is_caught() {
        let g = conv_graph();
        let mut ms = mined(&g);
        // swap one occurrence node for a node of a different kind
        let victim = ms
            .iter_mut()
            .find(|m| m.pattern.labels().contains(&apex_ir::OpKind::Mul))
            .expect("a mul pattern exists");
        let add_node = g
            .node_ids()
            .find(|&n| g.op(n) == Op::Add)
            .expect("an add exists");
        let occ = &mut victim.occurrences[0];
        let mul_pos = occ
            .iter()
            .position(|&n| g.op(n) == Op::Mul)
            .expect("occurrence holds a mul");
        occ[mul_pos] = add_node;
        occ.sort();
        let vs = verify_mined(&g, &ms);
        assert!(
            vs.iter()
                .any(|v| v.rule == "MINE-OCC-LABEL" || v.rule == "MINE-OCC-SIZE"),
            "{}",
            crate::render(&vs)
        );
    }

    #[test]
    fn duplicated_occurrence_set_is_caught() {
        let g = conv_graph();
        let mut ms = mined(&g);
        // simulate un-collapsed automorphic embeddings: repeat a node set
        let dup = ms[0].occurrences[0].clone();
        ms[0].occurrences.push(dup);
        let vs = verify_mined(&g, &ms);
        assert!(
            vs.iter().any(|v| v.rule == "MINE-OCC-DUP"),
            "{}",
            crate::render(&vs)
        );
    }

    #[test]
    fn inflated_support_is_caught() {
        let g = conv_graph();
        let mut ms = mined(&g);
        ms[0].mis_size += 3;
        let vs = verify_mined(&g, &ms);
        assert!(vs.iter().any(|v| v.rule == "MINE-MIS"), "{}", crate::render(&vs));
    }
}
