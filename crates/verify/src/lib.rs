//! # apex-verify — cross-stage static invariant verifier
//!
//! The LLVM-verifier pattern applied to the APEX pipeline: one checker
//! pass per stage, each returning structured [`Violation`] diagnostics
//! instead of panicking. The passes re-derive every structural claim the
//! downstream flow trusts blindly:
//!
//! | pass | artifact | claims checked |
//! |---|---|---|
//! | [`verify_graph`] | [`apex_ir::Graph`] | DAG/SSA order, port arity, operand types, dead nodes, unreachable outputs |
//! | [`verify_mined`] | [`apex_mining::MinedSubgraph`] | occurrences are real label/port-consistent embeddings; support counts match |
//! | [`verify_datapath`] | [`apex_merge::MergedDatapath`] | mux selects exhaustive/exclusive, no dangling ports, per-source config witness |
//! | [`verify_ruleset`] | [`apex_rewrite::RewriteRule`] | LHS/RHS interface equality, payload bindings, bounded equivalence |
//! | [`verify_pe`] | [`apex_pe::PeSpec`] | pipeline stage assignment well-formed and monotone |
//! | [`verify_netlist`] / [`verify_placement`] / [`verify_routing`] / [`verify_bitstream`] | map/cgra artifacts | tile-type compatibility, connected routes, track capacity, encodable bitstream fields |
//!
//! # Rule catalog
//!
//! Every violation carries a stable rule id (also documented in
//! DESIGN.md §6):
//!
//! * `IR-ARITY`, `IR-SSA`, `IR-TYPE`, `IR-DEAD`, `IR-OUTPUT`
//! * `MINE-REP`, `MINE-OCC-SIZE`, `MINE-OCC-LABEL`, `MINE-OCC-EMBED`,
//!   `MINE-OCC-DUP`, `MINE-SUPPORT`, `MINE-MIS`
//! * `MERGE-STRUCT`, `MERGE-PORT`, `MERGE-MUX`, `MERGE-CONFIG`,
//!   `MERGE-IFACE`, `MERGE-WITNESS`
//! * `RULE-IFACE`, `RULE-PATTERN`, `RULE-CONFIG`, `RULE-BINDING`,
//!   `RULE-EQUIV`
//! * `PE-PIPE-LEN`, `PE-PIPE-RANGE`, `PE-PIPE-ORDER`
//! * `MAP-NETLIST`, `PLACE-LEN`, `PLACE-MISSING`, `PLACE-SPURIOUS`,
//!   `PLACE-CLASS`, `PLACE-CAP`, `ROUTE-COUNT`, `ROUTE-CONN`,
//!   `ROUTE-ENDPOINT`, `ROUTE-PATH`, `ROUTE-CAP`, `BITS-PE`,
//!   `BITS-PAYLOAD`, `BITS-ROUNDTRIP`, `BITS-SB`, `BITS-TRACK`
//!
//! # Examples
//!
//! ```
//! use apex_ir::{Graph, Op};
//!
//! let mut g = Graph::new("t");
//! let a = g.input();
//! let b = g.input();
//! let s = g.add(Op::Add, &[a, b]);
//! g.add(Op::Mul, &[a, b]); // dead: never consumed
//! g.output(s);
//! let violations = apex_verify::verify_graph(&g);
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].rule, "IR-DEAD");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

mod fabric;
mod ir;
mod merge;
mod mining;
mod pe;
mod rules;

pub use fabric::{verify_bitstream, verify_netlist, verify_placement, verify_routing};
pub use ir::verify_graph;
pub use merge::{verify_datapath, verify_datapath_with};
pub use mining::verify_mined;
pub use pe::verify_pe;
pub use rules::verify_ruleset;

/// One invariant violation found by a checker pass.
///
/// Diagnostics are data, not panics: callers decide whether to abort
/// (`debug_assert!` at stage boundaries), report (the `apex verify` CLI),
/// or gate (CI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which artifact the violation is in (e.g. `graph 'gaussian'`).
    pub artifact: String,
    /// Stable rule id (e.g. `IR-DAG`); see the crate-level catalog.
    pub rule: &'static str,
    /// Where inside the artifact (e.g. `node 5 port 1`).
    pub location: String,
    /// What is wrong.
    pub message: String,
}

impl Violation {
    /// Builds a violation.
    pub fn new(
        rule: &'static str,
        artifact: impl Into<String>,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Violation {
            artifact: artifact.into(),
            rule,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} @ {}: {}",
            self.rule, self.artifact, self.location, self.message
        )
    }
}

/// Renders a violation list as a one-line-per-violation report (the
/// format the `apex verify` CLI prints and the golden tests lock down).
pub fn render(violations: &[Violation]) -> String {
    let mut s = String::new();
    for v in violations {
        s.push_str(&v.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_golden_format() {
        let vs = vec![
            Violation::new("IR-SSA", "graph 'g'", "node 3 port 0", "operand n7 not yet defined"),
            Violation::new("ROUTE-CAP", "design 'd'", "link (2,3)->(2,4)", "6 word signals on 5 tracks"),
        ];
        let expect = "[IR-SSA] graph 'g' @ node 3 port 0: operand n7 not yet defined\n\
                      [ROUTE-CAP] design 'd' @ link (2,3)->(2,4): 6 word signals on 5 tracks\n";
        assert_eq!(render(&vs), expect);
    }

    #[test]
    fn empty_report_renders_empty() {
        assert_eq!(render(&[]), "");
    }
}
