//! Rewrite-rule checker pass: pattern/configuration interface equality,
//! payload-binding discipline, and optional bounded equivalence against
//! the IR golden model.

use crate::Violation;
use apex_ir::Op;
use apex_merge::MergedDatapath;
use apex_rewrite::{verify_rule, RewriteRule};

/// Verifies a ruleset against the datapath its rules configure.
///
/// `equiv_trials` is the number of random vectors for the `RULE-EQUIV`
/// bounded-equivalence check on top of the corner battery; 0 skips the
/// (comparatively expensive) equivalence check and runs only the static
/// rules.
///
/// Rules:
/// * `RULE-IFACE` — the pattern's input/output interface disagrees with
///   the configuration's maps and output selects (LHS/RHS port counts),
/// * `RULE-PATTERN` — the pattern graph itself fails the IR pass,
/// * `RULE-CONFIG` — the configuration template fails
///   [`MergedDatapath::validate_config`],
/// * `RULE-BINDING` — a payload binding references a non-payload pattern
///   node, an out-of-range/inactive datapath node, or mismatched payload
///   kinds,
/// * `RULE-EQUIV` — the configured datapath is not observationally
///   equivalent to the pattern on the witness battery.
pub fn verify_ruleset(
    dp: &MergedDatapath,
    rules: &[RewriteRule],
    equiv_trials: usize,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        let artifact = format!("rule #{ri} '{}'", rule.name);
        let mut broken = false;

        // --- pattern well-formedness ------------------------------------
        let pattern_violations = crate::ir::verify_graph(&rule.pattern);
        if !pattern_violations.is_empty() {
            out.push(Violation::new(
                "RULE-PATTERN",
                &artifact,
                "pattern",
                format!(
                    "pattern graph fails the IR pass ({}; first: {})",
                    pattern_violations.len(),
                    pattern_violations[0]
                ),
            ));
            broken = true;
        }

        // --- interface equality: LHS (pattern) vs RHS (config) ----------
        let count = |op: Op| rule.pattern.node_ids().filter(|&i| rule.pattern.op(i) == op).count();
        let iface = [
            (count(Op::Input), rule.config.word_input_map.len(), "word inputs"),
            (count(Op::BitInput), rule.config.bit_input_map.len(), "bit inputs"),
            (count(Op::Output), rule.config.word_out_sel.len(), "word outputs"),
            (count(Op::BitOutput), rule.config.bit_out_sel.len(), "bit outputs"),
        ];
        for (lhs, rhs, what) in iface {
            if lhs != rhs {
                out.push(Violation::new(
                    "RULE-IFACE",
                    &artifact,
                    "interface",
                    format!("pattern has {lhs} {what}, configuration maps {rhs}"),
                ));
                broken = true;
            }
        }

        // --- configuration template -------------------------------------
        if let Err(e) = dp.validate_config(&rule.config) {
            out.push(Violation::new(
                "RULE-CONFIG",
                &artifact,
                "config",
                e.to_string(),
            ));
            broken = true;
        }

        // --- payload bindings -------------------------------------------
        for (bi, &(pn, dpn)) in rule.payload_bindings.iter().enumerate() {
            let loc = format!("binding[{bi}]");
            if pn.index() >= rule.pattern.len() {
                out.push(Violation::new(
                    "RULE-BINDING",
                    &artifact,
                    loc,
                    format!("pattern node {pn} out of range"),
                ));
                broken = true;
                continue;
            }
            let pop = rule.pattern.op(pn);
            if !matches!(pop, Op::Const(_) | Op::BitConst(_) | Op::Lut(_)) {
                out.push(Violation::new(
                    "RULE-BINDING",
                    &artifact,
                    loc,
                    format!("pattern node {pn} is {pop:?}, not a payload op"),
                ));
                broken = true;
                continue;
            }
            match rule.config.node_cfg.get(dpn as usize) {
                None => {
                    out.push(Violation::new(
                        "RULE-BINDING",
                        &artifact,
                        loc,
                        format!("datapath node {dpn} out of range"),
                    ));
                    broken = true;
                }
                Some(None) => {
                    out.push(Violation::new(
                        "RULE-BINDING",
                        &artifact,
                        loc,
                        format!("datapath node {dpn} is inactive in the template"),
                    ));
                    broken = true;
                }
                Some(Some(nc)) => {
                    if std::mem::discriminant(&nc.op) != std::mem::discriminant(&pop) {
                        out.push(Violation::new(
                            "RULE-BINDING",
                            &artifact,
                            loc,
                            format!("payload kind {pop:?} != bound register op {:?}", nc.op),
                        ));
                        broken = true;
                    }
                }
            }
        }

        // --- bounded equivalence ----------------------------------------
        if equiv_trials > 0 && !broken && !verify_rule(dp, rule, equiv_trials) {
            out.push(Violation::new(
                "RULE-EQUIV",
                &artifact,
                "equivalence",
                format!(
                    "configured datapath diverges from the pattern on the \
                     corner+{equiv_trials}-random witness battery"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_ir::Graph;
    use apex_merge::MergedDatapath;

    fn scale() -> (MergedDatapath, Vec<RewriteRule>) {
        let mut g = Graph::new("scale");
        let a = g.input();
        let c = g.constant(7);
        let m = g.add(Op::Mul, &[a, c]);
        g.output(m);
        let dp = MergedDatapath::from_graph(&g);
        let const_dp_node = dp.configs[0]
            .node_map
            .iter()
            .find(|(src, _)| *src == c.0)
            .map(|(_, dpn)| *dpn)
            .expect("const mapped");
        let rule = RewriteRule {
            name: "mul_const".into(),
            pattern: g,
            config: dp.configs[0].clone(),
            payload_bindings: vec![(c, const_dp_node)],
            ops_covered: 2,
        };
        (dp, vec![rule])
    }

    #[test]
    fn honest_rule_is_clean() {
        let (dp, rules) = scale();
        let vs = verify_ruleset(&dp, &rules, 32);
        assert!(vs.is_empty(), "{}", crate::render(&vs));
    }

    #[test]
    fn interface_mismatch_is_caught() {
        let (dp, mut rules) = scale();
        rules[0].config.word_input_map.push(0);
        let vs = verify_ruleset(&dp, &rules, 0);
        assert!(vs.iter().any(|v| v.rule == "RULE-IFACE"), "{}", crate::render(&vs));
    }

    #[test]
    fn lying_pattern_fails_equivalence() {
        let (dp, mut rules) = scale();
        // claim the PE computes a + C instead of a * C
        let mut g = Graph::new("lie");
        let a = g.input();
        let c = g.constant(7);
        let s = g.add(Op::Add, &[a, c]);
        g.output(s);
        let dpn = rules[0].payload_bindings[0].1;
        rules[0].pattern = g;
        rules[0].payload_bindings = vec![(c, dpn)];
        let vs = verify_ruleset(&dp, &rules, 32);
        assert!(vs.iter().any(|v| v.rule == "RULE-EQUIV"), "{}", crate::render(&vs));
    }

    #[test]
    fn binding_to_non_payload_node_is_caught() {
        let (dp, mut rules) = scale();
        let input_node = rules[0]
            .pattern
            .node_ids()
            .find(|&i| rules[0].pattern.op(i) == Op::Input)
            .expect("input exists");
        rules[0].payload_bindings[0].0 = input_node;
        let vs = verify_ruleset(&dp, &rules, 0);
        assert!(vs.iter().any(|v| v.rule == "RULE-BINDING"), "{}", crate::render(&vs));
    }
}
