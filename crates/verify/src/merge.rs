//! Merge checker pass: the merged datapath structurally covers every
//! constituent subgraph, and a concrete select-assignment witness per
//! source reproduces its semantics on corner and random vectors.

use crate::Violation;
use apex_ir::{evaluate as ir_eval, Graph, Op, Value};
use apex_merge::{DpSource, MergedDatapath};

/// Verifies a merged datapath against its constituent source subgraphs
/// with the default witness-trial budget (16 vectors beyond corners).
///
/// `sources[i]` must be the subgraph that `dp.configs[i]` claims to
/// implement; pass `&[]` to run the structural checks only.
pub fn verify_datapath(dp: &MergedDatapath, sources: &[Graph]) -> Vec<Violation> {
    verify_datapath_with(dp, sources, 16)
}

/// Verifies a merged datapath; `trials` controls how many witness
/// evaluation vectors are tried per (source, config) pair in addition to
/// the corner battery (0 skips the semantic witness entirely).
///
/// Rules:
/// * `MERGE-STRUCT` — the candidate-edge union is cyclic, or a node's
///   ops disagree on output type / exceed the port count,
/// * `MERGE-PORT` — a dangling or out-of-range mux candidate (port with
///   no candidates, self-loop, unknown node/input, type mismatch),
/// * `MERGE-MUX` — duplicate candidates on one mux (selection would be
///   ambiguous rather than exclusive),
/// * `MERGE-CONFIG` — a stored configuration fails
///   [`MergedDatapath::validate_config`],
/// * `MERGE-IFACE` — a source subgraph's input/output interface
///   disagrees with its configuration's maps and output selects,
/// * `MERGE-WITNESS` — the configured datapath does not reproduce the
///   source subgraph's outputs on a witness vector.
pub fn verify_datapath_with(
    dp: &MergedDatapath,
    sources: &[Graph],
    trials: usize,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let artifact = format!("datapath '{}'", dp.name);

    // --- structure: DAG, node op sets, mux candidates ------------------
    let mut structural = false;
    if let Err(e) = dp.topo_order() {
        out.push(Violation::new(
            "MERGE-STRUCT",
            &artifact,
            "nodes",
            e.to_string(),
        ));
        structural = true;
    }
    for (i, node) in dp.nodes.iter().enumerate() {
        if node.ops.is_empty() {
            out.push(Violation::new(
                "MERGE-STRUCT",
                &artifact,
                format!("node n{i}"),
                "functional unit with no operations".to_owned(),
            ));
            structural = true;
            continue;
        }
        let ty = node.output_type();
        for op in &node.ops {
            if op.output_type() != ty {
                out.push(Violation::new(
                    "MERGE-STRUCT",
                    &artifact,
                    format!("node n{i}"),
                    format!("{op:?} output type differs from the unit's {ty:?}"),
                ));
                structural = true;
            }
            if op.arity() > node.arity() {
                out.push(Violation::new(
                    "MERGE-STRUCT",
                    &artifact,
                    format!("node n{i}"),
                    format!("{op:?} needs {} port(s), unit has {}", op.arity(), node.arity()),
                ));
                structural = true;
            }
        }
        let max_arity = node.ops.iter().map(|op| op.arity()).max().unwrap_or(0);
        for (p, cands) in node.port_candidates.iter().enumerate() {
            let loc = format!("node n{i} port {p}");
            if cands.is_empty() && p < max_arity {
                out.push(Violation::new(
                    "MERGE-PORT",
                    &artifact,
                    loc.clone(),
                    "used port has no candidate sources (dangling)".to_owned(),
                ));
                structural = true;
            }
            for (leg, &c) in cands.iter().enumerate() {
                let in_range = match c {
                    DpSource::WordInput(k) => (k as usize) < dp.word_inputs,
                    DpSource::BitInput(k) => (k as usize) < dp.bit_inputs,
                    DpSource::Node(u) => (u as usize) < dp.nodes.len() && u as usize != i,
                };
                if !in_range {
                    out.push(Violation::new(
                        "MERGE-PORT",
                        &artifact,
                        format!("{loc} leg {leg}"),
                        format!("candidate {c:?} out of range (or self-loop)"),
                    ));
                    structural = true;
                    continue;
                }
                let src_ty = dp.try_source_type(c);
                for op in &node.ops {
                    if p < op.arity() && src_ty != Some(op.input_types()[p]) {
                        out.push(Violation::new(
                            "MERGE-PORT",
                            &artifact,
                            format!("{loc} leg {leg}"),
                            format!("{c:?} produces {src_ty:?}, {op:?} expects {:?}", op.input_types()[p]),
                        ));
                        structural = true;
                    }
                }
            }
            let mut seen = cands.clone();
            seen.sort();
            let before = seen.len();
            seen.dedup();
            if seen.len() != before {
                out.push(Violation::new(
                    "MERGE-MUX",
                    &artifact,
                    loc,
                    "duplicate mux candidates (selection not exclusive)".to_owned(),
                ));
            }
        }
    }

    // --- configurations -------------------------------------------------
    for (ci, cfg) in dp.configs.iter().enumerate() {
        if let Err(e) = dp.validate_config(cfg) {
            out.push(Violation::new(
                "MERGE-CONFIG",
                &artifact,
                format!("config[{ci}] '{}'", cfg.name),
                e.to_string(),
            ));
        }
        for (i, &port) in cfg.word_input_map.iter().enumerate() {
            if port as usize >= dp.word_inputs {
                out.push(Violation::new(
                    "MERGE-IFACE",
                    &artifact,
                    format!("config[{ci}] word_input_map[{i}]"),
                    format!("PE word port {port} out of range ({} ports)", dp.word_inputs),
                ));
            }
        }
        for (i, &port) in cfg.bit_input_map.iter().enumerate() {
            if port as usize >= dp.bit_inputs {
                out.push(Violation::new(
                    "MERGE-IFACE",
                    &artifact,
                    format!("config[{ci}] bit_input_map[{i}]"),
                    format!("PE bit port {port} out of range ({} ports)", dp.bit_inputs),
                ));
            }
        }
    }

    // --- per-source coverage witness ------------------------------------
    if sources.is_empty() {
        return out;
    }
    if sources.len() != dp.configs.len() {
        out.push(Violation::new(
            "MERGE-WITNESS",
            &artifact,
            "configs",
            format!(
                "{} source subgraph(s) but {} configuration(s)",
                sources.len(),
                dp.configs.len()
            ),
        ));
        return out;
    }
    for (ci, (src, cfg)) in sources.iter().zip(&dp.configs).enumerate() {
        let loc = format!("config[{ci}] '{}'", cfg.name);
        let word_n = src.node_ids().filter(|&i| src.op(i) == Op::Input).count();
        let bit_n = src.node_ids().filter(|&i| src.op(i) == Op::BitInput).count();
        let word_out = src.node_ids().filter(|&i| src.op(i) == Op::Output).count();
        let bit_out = src.node_ids().filter(|&i| src.op(i) == Op::BitOutput).count();
        let iface_ok = word_n == cfg.word_input_map.len()
            && bit_n == cfg.bit_input_map.len()
            && word_out == cfg.word_out_sel.len()
            && bit_out == cfg.bit_out_sel.len();
        if !iface_ok {
            out.push(Violation::new(
                "MERGE-IFACE",
                &artifact,
                loc,
                format!(
                    "source '{}' interface {word_n}W+{bit_n}B in / {word_out}W+{bit_out}B out \
                     != config maps {}W+{}B in / {}W+{}B out",
                    src.name(),
                    cfg.word_input_map.len(),
                    cfg.bit_input_map.len(),
                    cfg.word_out_sel.len(),
                    cfg.bit_out_sel.len()
                ),
            ));
            continue;
        }
        if structural || trials == 0 || dp.validate_config(cfg).is_err() {
            continue; // witness evaluation needs a well-formed datapath
        }
        if let Some(v) = witness(dp, src, ci, word_n, bit_n, trials, &artifact, &loc) {
            out.push(v);
        }
    }
    out
}

/// Runs the corner + random witness battery for one (source, config)
/// pair; returns the first divergence found.
#[allow(clippy::too_many_arguments)]
fn witness(
    dp: &MergedDatapath,
    src: &Graph,
    ci: usize,
    word_n: usize,
    bit_n: usize,
    trials: usize,
    artifact: &str,
    loc: &str,
) -> Option<Violation> {
    const CORNERS: [u16; 6] = [0, 1, 2, 0x7FFF, 0x8000, 0xFFFF];
    let cfg = &dp.configs[ci];
    let mut seed = 0x5EED_0000_0000_0001u64 ^ (ci as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for t in 0..trials.max(CORNERS.len()) {
        let words: Vec<u16> = (0..word_n)
            .map(|k| {
                if t < CORNERS.len() {
                    CORNERS[(t + k) % CORNERS.len()]
                } else {
                    next() as u16
                }
            })
            .collect();
        let bits: Vec<bool> = (0..bit_n).map(|_| next() & 1 == 1).collect();
        let mut wi = words.iter();
        let mut bi = bits.iter();
        let golden_inputs: Vec<Value> = src
            .primary_inputs()
            .iter()
            .map(|&pi| match src.op(pi) {
                Op::Input => Value::Word(wi.next().copied().unwrap_or(0)),
                Op::BitInput => Value::Bit(bi.next().copied().unwrap_or(false)),
                _ => Value::Word(0),
            })
            .collect();
        let golden = ir_eval(src, &golden_inputs);
        let got = match dp.evaluate_as_source(cfg, &words, &bits) {
            Ok(g) => g,
            Err(e) => {
                return Some(Violation::new(
                    "MERGE-WITNESS",
                    artifact,
                    loc.to_owned(),
                    format!("evaluation failed on witness vector {t}: {e}"),
                ));
            }
        };
        let (got_w, got_b) = got;
        let mut gw = got_w.into_iter();
        let mut gb = got_b.into_iter();
        for (po, g) in src.primary_outputs().iter().zip(golden) {
            let ok = match src.op(*po) {
                Op::Output => gw.next() == Some(g.word()),
                Op::BitOutput => gb.next() == Some(g.bit()),
                _ => true,
            };
            if !ok {
                return Some(Violation::new(
                    "MERGE-WITNESS",
                    artifact,
                    loc.to_owned(),
                    format!(
                        "output {po} diverges from source '{}' on witness vector {t} \
                         (words {words:?}, bits {bits:?})",
                        src.name()
                    ),
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_merge::{merge_all, MergeOptions};
    use apex_tech::TechModel;

    fn mac() -> Graph {
        let mut g = Graph::new("mac");
        let (a, b, c) = (g.input(), g.input(), g.input());
        let m = g.add(Op::Mul, &[a, b]);
        let s = g.add(Op::Add, &[m, c]);
        g.output(s);
        g
    }

    fn addsub() -> Graph {
        let mut g = Graph::new("addsub");
        let (a, b, c) = (g.input(), g.input(), g.input());
        let s = g.add(Op::Add, &[a, b]);
        let d = g.add(Op::Sub, &[s, c]);
        g.output(d);
        g
    }

    fn merged() -> (MergedDatapath, Vec<Graph>) {
        let sources = vec![mac(), addsub()];
        let (dp, _) = merge_all(&sources, &TechModel::default(), &MergeOptions::default())
            .expect("merge succeeds");
        (dp, sources)
    }

    #[test]
    fn honest_merge_is_clean() {
        let (dp, sources) = merged();
        let vs = verify_datapath(&dp, &sources);
        assert!(vs.is_empty(), "{}", crate::render(&vs));
    }

    #[test]
    fn swapped_input_map_fails_witness() {
        let (mut dp, sources) = merged();
        // addsub is order-sensitive: permuting its input map changes a-b
        let cfg = &mut dp.configs[1];
        cfg.word_input_map.swap(0, 2);
        let vs = verify_datapath(&dp, &sources);
        assert!(
            vs.iter().any(|v| v.rule == "MERGE-WITNESS"),
            "{}",
            crate::render(&vs)
        );
    }

    #[test]
    fn duplicate_mux_leg_is_caught() {
        let (mut dp, sources) = merged();
        let dup = dp.nodes[0].port_candidates[0][0];
        dp.nodes[0].port_candidates[0].push(dup);
        let vs = verify_datapath(&dp, &sources);
        assert!(vs.iter().any(|v| v.rule == "MERGE-MUX"), "{}", crate::render(&vs));
    }

    #[test]
    fn dangling_port_is_caught() {
        let (mut dp, _) = merged();
        dp.nodes[0].port_candidates[0].clear();
        let vs = verify_datapath(&dp, &[]);
        assert!(vs.iter().any(|v| v.rule == "MERGE-PORT"), "{}", crate::render(&vs));
    }

    #[test]
    fn config_source_count_mismatch_is_caught() {
        let (dp, mut sources) = merged();
        sources.pop();
        let vs = verify_datapath(&dp, &sources);
        assert!(
            vs.iter().any(|v| v.rule == "MERGE-WITNESS"),
            "{}",
            crate::render(&vs)
        );
    }
}
